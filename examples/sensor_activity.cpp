// Wearable-sensor activity recognition — the IoT scenario that motivates
// HDC in the paper's introduction (tiny storage, microsecond inference on
// resource-limited devices).
//
// The example trains LeHDC on a PAMAP-like activity-monitoring workload,
// prints a per-activity confusion report, saves the deployed model (just
// K packed binary hypervectors), reloads it as a stand-alone classifier,
// and measures single-query inference latency — demonstrating the paper's
// zero-inference-overhead claim end to end.
//
//   $ ./examples/sensor_activity [--dim 2000] [--epochs 20]
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "data/profiles.hpp"
#include "eval/metrics.hpp"
#include "hdc/batch_scorer.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hdc/model_io.hpp"
#include "hdc/search.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"

namespace {
const char* kActivityNames[] = {"walking", "cycling", "sitting", "climbing",
                                "rope-jumping"};
}

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags(
      "sensor_activity",
      "Activity recognition on a PAMAP-like wearable-sensor workload.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.05, "fraction of full sample counts");
  flags.add_int("epochs", 20, "LeHDC training epochs");
  flags.add_int("seed", 1, "master seed");
  flags.add_string("model", "activity_model.lhdc",
                   "path for the exported model ('' disables)");
  flags.parse(argc, argv);

  // 1. Data: 5 activities from 75 inertial/heart-rate features.
  const auto profile = data::scaled(
      data::profile(data::BenchmarkId::kPamap), flags.get_double("scale"));
  const data::TrainTestSplit split = generate_synthetic(profile.config);
  std::printf("activity dataset: %s / test %s\n",
              split.train.summary().c_str(), split.test.summary().c_str());

  // 2. Train LeHDC through the pipeline API.
  core::PipelineConfig config;
  config.dim = static_cast<std::size_t>(flags.get_int("dim"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.strategy = core::Strategy::kLeHdc;
  config.lehdc.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  core::Pipeline pipeline(config);
  const core::FitReport report = pipeline.fit(split.train, &split.test);
  std::printf("LeHDC: train %.2f%%  test %.2f%%  (encode %.2fs, "
              "train %.2fs)\n\n",
              report.train_accuracy * 100.0, report.test_accuracy * 100.0,
              report.timings.encode_seconds, report.timings.train_seconds);

  // 3. Per-activity diagnostics.
  const auto& encoder = pipeline.encoder();
  const hdc::EncodedDataset encoded_test =
      hdc::encode_dataset(encoder, split.test);
  const eval::ConfusionMatrix confusion =
      eval::evaluate_confusion(pipeline.model(), encoded_test);
  std::puts("per-activity recall / precision:");
  for (std::size_t k = 0; k < split.test.class_count(); ++k) {
    std::printf("  %-12s recall %5.1f%%  precision %5.1f%%\n",
                kActivityNames[k],
                confusion.recall(static_cast<int>(k)) * 100.0,
                confusion.precision(static_cast<int>(k)) * 100.0);
  }
  std::printf("balanced accuracy: %.2f%%\n\n",
              confusion.macro_recall() * 100.0);

  // 4. Deploy: the model is only K binary hypervectors.
  const auto* binary = pipeline.model().as_binary();
  std::printf("deployed model: %zu classes x %zu bits = %.1f KiB\n",
              binary->class_count(), binary->dim(),
              static_cast<double>(binary->class_count() * binary->dim()) /
                  8192.0);
  if (const auto& model_path = flags.get_string("model");
      !model_path.empty()) {
    hdc::save_classifier(*binary, model_path);
    const hdc::BinaryClassifier reloaded =
        hdc::load_classifier(model_path);
    std::printf("model round-tripped through %s: reloaded accuracy "
                "%.2f%%\n",
                model_path.c_str(),
                reloaded.accuracy(encoded_test) * 100.0);
  }

  // 5. Margin-based rejection: low-margin windows (near the
  //    classification border, Sec. 3.2 of the paper) can be escalated
  //    instead of acted on.
  std::size_t rejected = 0;
  std::size_t rejected_wrong = 0;
  std::size_t accepted_wrong = 0;
  const double margin_floor = 0.01;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    const auto ranked =
        hdc::rank_classes(*binary, encoder.encode(split.test.sample(i)));
    const bool wrong = ranked.label() != split.test.label(i);
    if (ranked.margin < margin_floor) {
      ++rejected;
      rejected_wrong += wrong ? 1 : 0;
    } else {
      accepted_wrong += wrong ? 1 : 0;
    }
  }
  std::printf("\nmargin-based rejection (margin < %.2f): %zu/%zu windows "
              "escalated, catching %zu of %zu total errors\n",
              margin_floor, rejected, split.test.size(), rejected_wrong,
              rejected_wrong + accepted_wrong);

  // 6. Measure single-query latency on the reloaded model (the similarity
  //    search a deployed device runs per sensor window).
  const hv::BitVector query = encoder.encode(split.test.sample(0));
  const int repeats = 20000;
  volatile int sink = 0;
  const util::Stopwatch timer;
  for (int i = 0; i < repeats; ++i) {
    sink = binary->predict(query);
  }
  (void)sink;
  std::printf("inference latency: %.2f us per query (similarity search "
              "only)\n",
              timer.elapsed_seconds() * 1e6 / repeats);

  // 7. Batched serving: score the whole window set in one call through the
  //    reloaded model's batch path (what a gateway aggregating many
  //    devices would run).
  const hdc::BatchScorer scorer(*binary);
  std::vector<int> batched(encoded_test.size());
  const util::Stopwatch batch_timer;
  scorer.predict_batch(encoded_test.hypervectors(), batched);
  std::printf("batched inference: %zu windows in %.2f ms (%.2f us per "
              "query)\n",
              batched.size(), batch_timer.elapsed_seconds() * 1e3,
              batch_timer.elapsed_seconds() * 1e6 /
                  static_cast<double>(batched.size()));
  return 0;
}
