// Quickstart: train a LeHDC classifier on a small synthetic dataset and
// compare it against the baseline binary HDC — the 60-second tour of the
// public API.
//
//   $ ./examples/quickstart [--dim 2000] [--train 2000] [--epochs 20]
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags("quickstart",
                         "Train LeHDC vs baseline HDC on synthetic data.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_int("train", 2000, "training samples");
  flags.add_int("test", 500, "test samples");
  flags.add_int("epochs", 20, "LeHDC training epochs");
  flags.add_int("seed", 1, "master seed");
  flags.parse(argc, argv);

  // 1. Get data: a 4-class synthetic sensor-like dataset (swap in your own
  //    data::Dataset, or load real files with data::load_csv / load_idx).
  data::SyntheticConfig synth;
  synth.feature_count = 128;
  synth.class_count = 6;
  synth.train_count = static_cast<std::size_t>(flags.get_int("train"));
  synth.test_count = static_cast<std::size_t>(flags.get_int("test"));
  synth.prototypes_per_class = 6;   // multi-modal classes...
  synth.shared_atoms = 8;           // ...with heavy inter-class overlap:
  synth.class_separation = 0.05;    // the regime where averaged class
  synth.intra_class_spread = 1.2;   // hypervectors (Eq. 2) fall short and
  synth.noise_stddev = 0.75;         // learned ones (LeHDC) shine.
  synth.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const data::TrainTestSplit split = data::generate_synthetic(synth);
  std::printf("train: %s\ntest:  %s\n", split.train.summary().c_str(),
              split.test.summary().c_str());

  // 2. Configure the pipeline: encoding is shared; only the training
  //    strategy differs.
  core::PipelineConfig config;
  config.dim = static_cast<std::size_t>(flags.get_int("dim"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.lehdc.epochs = static_cast<std::size_t>(flags.get_int("epochs"));

  // 3. Baseline binary HDC (Eq. 2 averaging).
  config.strategy = core::Strategy::kBaseline;
  core::Pipeline baseline(config);
  const core::FitReport base_report = baseline.fit(split.train, &split.test);
  std::printf("\nBaseline HDC : train %.2f%%  test %.2f%%  (%.2fs)\n",
              base_report.train_accuracy * 100.0,
              base_report.test_accuracy * 100.0,
              base_report.timings.train_seconds);

  // 4. LeHDC: same encoder, BNN-trained class hypervectors.
  config.strategy = core::Strategy::kLeHdc;
  core::Pipeline lehdc(config);
  const core::FitReport le_report = lehdc.fit(split.train, &split.test);
  std::printf("LeHDC        : train %.2f%%  test %.2f%%  (%.2fs)\n",
              le_report.train_accuracy * 100.0,
              le_report.test_accuracy * 100.0,
              le_report.timings.train_seconds);

  // 5. Classify a single raw sample through the trained pipeline.
  const int predicted = lehdc.predict(split.test.sample(0));
  std::printf("\nsample 0: predicted class %d, true class %d\n", predicted,
              split.test.label(0));

  // 6. Or classify the whole dataset in one batched call — encoding and
  //    scoring run fused across the thread pool, bit-identical to the
  //    per-sample loop above.
  const std::vector<int> labels = lehdc.predict_batch(split.test);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    agree += labels[i] == split.test.label(i) ? 1 : 0;
  }
  std::printf("batched pass over %zu test samples: %.2f%% correct\n",
              labels.size(),
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(labels.size()));

  std::printf("accuracy improvement: %+.2f points\n",
              (le_report.test_accuracy - base_report.test_accuracy) * 100.0);
  return 0;
}
