// Strategy playground: sweep every difficulty knob of the synthetic
// generator and watch how the four Table 1 strategies respond — the tool
// used to calibrate the benchmark profiles, kept as an example because it
// doubles as a quick what-if console for custom workload shapes.
//
//   $ ./examples/strategy_playground --classes 10 --features 200 //         --sep 0.3 --noise 0.8 --protos 4
#include <cstdio>

#include "data/synthetic.hpp"
#include "eval/experiment.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;
  util::FlagParser flags("strategy_playground",
                         "sweep synthetic difficulty knobs across strategies");
  flags.add_int("features", 784, "input feature count N");
  flags.add_int("classes", 10, "class count K");
  flags.add_int("train", 3000, "training samples");
  flags.add_int("test", 600, "test samples");
  flags.add_int("protos", 4, "prototype sub-clusters per class");
  flags.add_int("atoms", 6, "shared dictionary atoms (class overlap)");
  flags.add_double("sep", 1.0, "class separation strength");
  flags.add_double("spread", 0.5, "intra-class prototype spread");
  flags.add_double("noise", 0.4, "per-sample Gaussian noise");
  flags.add_int("smooth", 5, "feature smoothing window");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_int("levels", 32, "value quantization levels");
  flags.add_int("epochs", 15, "LeHDC epochs");
  flags.add_int("iters", 25, "retraining iterations");
  flags.add_int("mm", 8, "multi-model hypervectors per class");
  flags.add_double("flip", 0.01, "multi-model flip probability");
  flags.add_int("mm-epochs", 15, "multi-model epochs");
  flags.add_int("trials", 1, "trials for mean ± std");
  flags.add_int("seed", 7, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig s;
  s.feature_count = flags.get_int("features");
  s.class_count = flags.get_int("classes");
  s.train_count = flags.get_int("train");
  s.test_count = flags.get_int("test");
  s.prototypes_per_class = flags.get_int("protos");
  s.shared_atoms = flags.get_int("atoms");
  s.class_separation = flags.get_double("sep");
  s.intra_class_spread = flags.get_double("spread");
  s.noise_stddev = flags.get_double("noise");
  s.smoothing_window = flags.get_int("smooth");
  s.seed = 99;
  const auto split = data::generate_synthetic(s);

  std::vector<core::PipelineConfig> configs;
  for (auto strat :
       {core::Strategy::kBaseline, core::Strategy::kMultiModel,
        core::Strategy::kRetraining, core::Strategy::kLeHdc}) {
    core::PipelineConfig c;
    c.dim = flags.get_int("dim");
    c.levels = flags.get_int("levels");
    c.seed = flags.get_int("seed");
    c.strategy = strat;
    c.lehdc.epochs = flags.get_int("epochs");
    c.retrain.iterations = flags.get_int("iters");
    c.multimodel.models_per_class = flags.get_int("mm");
    c.multimodel.flip_probability = flags.get_double("flip");
    c.multimodel.epochs = flags.get_int("mm-epochs");
    configs.push_back(c);
  }
  const auto outcomes = eval::compare_strategies_shared_encoding(
      split, configs, flags.get_int("trials"));
  for (const auto& o : outcomes) {
    std::printf("%-12s test %s  train %s\n", o.strategy.c_str(),
                o.test_accuracy.to_string().c_str(),
                o.train_accuracy.to_string().c_str());
  }
  return 0;
}
