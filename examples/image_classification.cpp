// Image classification across all training strategies — the Fashion-MNIST
// style comparison at the heart of the paper's Table 1, as library code.
//
// Runs every implemented strategy (the paper's four plus the Sec. 3
// variants) on an identically-encoded image-like workload and prints the
// accuracy ladder, demonstrating that the gains come from training alone
// (the encoder and the inference path are shared).
//
//   $ ./examples/image_classification [--dim 2000] [--scale 0.05]
#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "data/profiles.hpp"
#include "eval/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags(
      "image_classification",
      "Compare every training strategy on a Fashion-MNIST-like workload.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.05, "fraction of full sample counts");
  flags.add_string("dataset", "fashion-mnist", "benchmark profile name");
  flags.add_int("trials", 1, "trials for mean ± std");
  flags.add_int("seed", 5, "master seed");
  flags.parse(argc, argv);

  const auto profile =
      data::scaled(data::profile_by_name(flags.get_string("dataset")),
                   flags.get_double("scale"));
  const data::TrainTestSplit split = generate_synthetic(profile.config);
  std::printf("%s-like workload: train %s / test %s\n\n",
              profile.name.c_str(), split.train.summary().c_str(),
              split.test.summary().c_str());

  // One config per strategy, sharing dim/levels/seed so the encoding —
  // and therefore the comparison — is identical across rows.
  const std::vector<core::Strategy> strategies{
      core::Strategy::kBaseline,        core::Strategy::kMultiModel,
      core::Strategy::kRetraining,      core::Strategy::kEnhancedRetraining,
      core::Strategy::kAdaptHd,         core::Strategy::kNonBinary,
      core::Strategy::kLeHdc,
  };
  std::vector<core::PipelineConfig> configs;
  for (const auto strategy : strategies) {
    core::PipelineConfig cfg;
    cfg.dim = static_cast<std::size_t>(flags.get_int("dim"));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.strategy = strategy;
    cfg.lehdc.epochs = 30;
    cfg.lehdc.weight_decay = 0.03f;
    cfg.lehdc.dropout_rate = 0.3f;
    cfg.retrain.iterations = 30;
    cfg.adapt.iterations = 30;
    cfg.multimodel.models_per_class = 8;
    cfg.nonbinary.retrain_epochs = 30;
    configs.push_back(cfg);
  }

  const auto outcomes = eval::compare_strategies_shared_encoding(
      split, configs, static_cast<std::size_t>(flags.get_int("trials")));

  util::TextTable table({"Strategy", "Test accuracy (%)",
                         "Train accuracy (%)", "Train time (s)"});
  double baseline_mean = 0.0;
  for (const auto& outcome : outcomes) {
    if (outcome.strategy == "Baseline") {
      baseline_mean = outcome.test_accuracy.mean;
    }
    table.add_row({outcome.strategy, outcome.test_accuracy.to_string(),
                   outcome.train_accuracy.to_string(),
                   util::TextTable::cell(outcome.mean_train_seconds, 2)});
  }
  table.print(std::cout);

  for (const auto& outcome : outcomes) {
    if (outcome.strategy == "LeHDC") {
      std::printf("\nLeHDC improvement over the baseline: %+.2f points\n",
                  outcome.test_accuracy.mean - baseline_mean);
    }
  }
  std::puts("(non-binary rows use cosine inference and 32-bit storage; all "
            "binary rows share the exact same inference path)");
  return 0;
}
