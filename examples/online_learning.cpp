// On-device incremental learning: samples stream in one at a time and the
// classifier improves in place — no stored dataset, no offline pass.
//
// Compares the streaming centroid rule (Eq. 2, one sample at a time)
// against the mistake-driven perceptron rule (the streaming form of the
// retraining update), reporting accuracy checkpoints along the stream and
// the number of updates each rule actually performed (updates cost energy
// on an IoT device; skipping correct samples is the perceptron's
// advantage).
//
//   $ ./examples/online_learning [--dim 2000] [--checkpoints 8]
#include <cstdio>

#include "core/online.hpp"
#include "data/profiles.hpp"
#include "hdc/encoder.hpp"
#include "hdc/encoded_dataset.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags(
      "online_learning",
      "Streaming HDC learning: centroid vs perceptron update rules.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.05, "fraction of full sample counts");
  flags.add_string("dataset", "ucihar", "benchmark profile");
  flags.add_int("checkpoints", 8, "accuracy checkpoints along the stream");
  flags.add_int("seed", 3, "master seed");
  flags.parse(argc, argv);

  const auto profile =
      data::scaled(data::profile_by_name(flags.get_string("dataset")),
                   flags.get_double("scale"));
  const data::TrainTestSplit split = generate_synthetic(profile.config);
  std::printf("stream: %s (%s)\n", split.train.summary().c_str(),
              profile.name.c_str());

  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = static_cast<std::size_t>(flags.get_int("dim"));
  encoder_cfg.feature_count = split.train.feature_count();
  encoder_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const hdc::RecordEncoder encoder(encoder_cfg);
  const auto stream = hdc::encode_dataset(encoder, split.train);
  const auto held_out = hdc::encode_dataset(encoder, split.test);

  core::OnlineConfig base;
  base.dim = encoder_cfg.dim;
  base.class_count = split.train.class_count();
  base.seed = encoder_cfg.seed;

  core::OnlineConfig centroid_cfg = base;
  centroid_cfg.mode = core::OnlineMode::kCentroid;
  core::OnlineHdcLearner centroid(centroid_cfg);

  core::OnlineConfig perceptron_cfg = base;
  perceptron_cfg.mode = core::OnlineMode::kPerceptron;
  core::OnlineHdcLearner perceptron(perceptron_cfg);

  const auto checkpoints =
      static_cast<std::size_t>(flags.get_int("checkpoints"));
  const std::size_t stride =
      std::max<std::size_t>(1, stream.size() / checkpoints);

  std::puts("\n  samples | centroid acc | perceptron acc | "
            "centroid upd | perceptron upd");
  for (std::size_t i = 0; i < stream.size(); ++i) {
    centroid.observe(stream.hypervector(i), stream.label(i));
    perceptron.observe(stream.hypervector(i), stream.label(i));
    if ((i + 1) % stride == 0 || i + 1 == stream.size()) {
      std::printf("  %7zu | %11.2f%% | %13.2f%% | %12zu | %14zu\n", i + 1,
                  centroid.accuracy(held_out) * 100.0,
                  perceptron.accuracy(held_out) * 100.0,
                  centroid.updates(), perceptron.updates());
    }
  }

  std::printf("\nfinal: centroid %.2f%% with %zu updates; perceptron "
              "%.2f%% with %zu updates (%.0f%% fewer writes)\n",
              centroid.accuracy(held_out) * 100.0, centroid.updates(),
              perceptron.accuracy(held_out) * 100.0, perceptron.updates(),
              100.0 * (1.0 - static_cast<double>(perceptron.updates()) /
                                 static_cast<double>(centroid.updates())));

  // The deployed artifact is a plain binary classifier either way.
  const hdc::BinaryClassifier snapshot = perceptron.snapshot();
  std::printf("snapshot model: %zu x %zu bits, held-out accuracy %.2f%%\n",
              snapshot.class_count(), snapshot.dim(),
              snapshot.accuracy(held_out) * 100.0);
  return 0;
}
