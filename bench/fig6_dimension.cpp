// Fig. 6 harness: inference accuracy vs hypervector dimension D on the
// Fashion-MNIST and ISOLET profiles for all four training strategies.
//
// The paper's observations to reproduce: LeHDC dominates at every D; its
// accuracy at D = 2,000 matches retraining at D = 10,000; multi-model can
// fall below the baseline (ISOLET).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "data/profiles.hpp"
#include "eval/experiment.hpp"
#include "eval/presets.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace lehdc;

std::vector<std::size_t> parse_dims(const std::string& text) {
  std::vector<std::size_t> dims;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) {
      dims.push_back(static_cast<std::size_t>(std::stoul(token)));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return dims;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(
      "fig6_dimension",
      "Regenerates Fig. 6: accuracy vs hypervector dimension on the "
      "Fashion-MNIST and ISOLET profiles for all four strategies.");
  flags.add_string("dims", "500,1000,2000,4000",
                   "comma-separated dimensions to sweep");
  flags.add_double("scale", 0.05, "fraction of paper-scale sample counts");
  flags.add_int("trials", 1, "independent trials per point");
  flags.add_int("seed", 7, "master seed");
  flags.add_string("datasets", "fashion-mnist,isolet",
                   "comma-separated benchmark profiles");
  flags.add_string("csv", "fig6_dimension.csv", "output CSV ('' disables)");
  flags.add_flag("full",
                 "paper scale: dims 500..10000, full sample counts");
  flags.parse(argc, argv);

  const bool full = flags.get_flag("full");
  const std::vector<std::size_t> dims =
      full ? std::vector<std::size_t>{500, 1000, 2000, 4000, 6000, 8000,
                                      10000}
           : parse_dims(flags.get_string("dims"));
  const double sample_scale = full ? 1.0 : flags.get_double("scale");
  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::vector<std::string> dataset_names;
  {
    const std::string text = flags.get_string("datasets");
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t comma = text.find(',', start);
      dataset_names.push_back(text.substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start));
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
  }

  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"dataset", "dim", "strategy", "accuracy_mean",
                      "accuracy_std"});

  for (const auto& name : dataset_names) {
    const auto profile =
        data::scaled(data::profile_by_name(name), sample_scale);
    util::log_info("generating " + profile.name + " (" +
                   std::to_string(profile.config.train_count) +
                   " train samples)");
    const data::TrainTestSplit split = generate_synthetic(profile.config);

    const auto strategies = eval::table1_strategies();
    util::TextTable table([&] {
      std::vector<std::string> header{"D"};
      for (const auto s : strategies) {
        header.push_back(core::strategy_name(s));
      }
      return header;
    }());

    for (const std::size_t dim : dims) {
      std::vector<core::PipelineConfig> configs;
      for (const auto strategy : strategies) {
        core::PipelineConfig cfg =
            eval::table1_config(profile.id, strategy, dim, seed);
        if (!full) {
          cfg.lehdc.epochs = 20;
          cfg.lehdc.learning_rate =
              std::clamp(cfg.lehdc.learning_rate, 0.005f, 0.02f);
          cfg.lehdc.batch_size = std::min<std::size_t>(
              cfg.lehdc.batch_size,
              std::max<std::size_t>(16, profile.config.train_count / 12));
          cfg.retrain.iterations = 25;
          cfg.multimodel.models_per_class = 8;
          cfg.multimodel.epochs = 10;
        }
        configs.push_back(cfg);
      }
      const auto outcomes =
          eval::compare_strategies_shared_encoding(split, configs, trials);

      std::vector<std::string> row{std::to_string(dim)};
      for (const auto& outcome : outcomes) {
        row.push_back(outcome.test_accuracy.to_string());
        csv_rows.push_back({profile.name, std::to_string(dim),
                            outcome.strategy,
                            std::to_string(outcome.test_accuracy.mean),
                            std::to_string(outcome.test_accuracy.stddev)});
      }
      table.add_row(std::move(row));
      util::log_info("  D=" + std::to_string(dim) + " done");
    }

    std::printf("\nFig. 6: accuracy (%%) vs dimension on %s\n",
                profile.name.c_str());
    table.print(std::cout);
  }

  if (const auto& csv_path = flags.get_string("csv"); !csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  return 0;
}
