// Fig. 3 harness: basic [4] vs enhanced retraining (Sec. 3.3 case study) on
// the Fashion-MNIST profile — train/test accuracy per retraining iteration.
//
// The paper's observations to reproduce: the enhanced strategy starts and
// converges at a higher accuracy, and the basic strategy oscillates after
// its initial convergence while the enhanced one stays stable.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "data/profiles.hpp"
#include "eval/report.hpp"
#include "hdc/encoded_dataset.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "train/retrain.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags(
      "fig3_retraining",
      "Regenerates Fig. 3: iteration trajectories of basic vs enhanced "
      "retraining on the Fashion-MNIST profile.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.05, "fraction of paper-scale sample counts");
  flags.add_int("iterations", 50, "retraining iterations to record");
  flags.add_int("seed", 7, "master seed");
  flags.add_string("dataset", "fashion-mnist", "benchmark profile");
  flags.add_string("csv", "fig3_retraining.csv", "output CSV ('' disables)");
  flags.add_string("metrics-out", "",
                   "also write a lehdc.metrics.v1 snapshot here");
  flags.add_int("stride", 2, "print every n-th iteration");
  flags.add_flag("full", "paper scale (D=10000, all samples)");
  flags.parse(argc, argv);

  const bool full = flags.get_flag("full");
  const std::size_t dim =
      full ? 10000 : static_cast<std::size_t>(flags.get_int("dim"));
  const double sample_scale = full ? 1.0 : flags.get_double("scale");

  const auto profile =
      data::scaled(data::profile_by_name(flags.get_string("dataset")),
                   sample_scale);
  util::log_info("generating " + profile.name + ": " +
                 std::to_string(profile.config.train_count) + " train / " +
                 std::to_string(profile.config.test_count) + " test");
  const data::TrainTestSplit split = generate_synthetic(profile.config);

  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = dim;
  encoder_cfg.feature_count = split.train.feature_count();
  encoder_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const hdc::RecordEncoder encoder(encoder_cfg);
  const auto encoded_train = hdc::encode_dataset(encoder, split.train);
  const auto encoded_test = hdc::encode_dataset(encoder, split.test);

  train::RetrainConfig retrain_cfg;
  retrain_cfg.iterations = static_cast<std::size_t>(
      flags.get_int("iterations"));
  retrain_cfg.stop_when_converged = false;  // record the full trajectory

  train::TrainOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.test = &encoded_test;
  options.epoch_observer = train::record_trajectory();

  util::log_info("running basic retraining...");
  const train::RetrainingTrainer basic(retrain_cfg);
  const auto basic_result = basic.train(encoded_train, options);

  util::log_info("running enhanced retraining...");
  const train::EnhancedRetrainingTrainer enhanced(retrain_cfg);
  const auto enhanced_result = enhanced.train(encoded_train, options);

  const std::vector<eval::Series> series{
      {"basic", basic_result.trajectory},
      {"enhanced", enhanced_result.trajectory},
  };
  std::printf("Fig. 3: retraining trajectories on %s (D=%zu)\n",
              profile.name.c_str(), dim);
  eval::print_series(std::cout, series,
                     static_cast<std::size_t>(flags.get_int("stride")));

  // Quantify the paper's two claims.
  const auto tail_stability = [](const std::vector<train::EpochPoint>& t) {
    // Standard deviation of the last half of the test-accuracy series:
    // the paper's oscillation observation.
    std::vector<double> tail;
    for (std::size_t i = t.size() / 2; i < t.size(); ++i) {
      tail.push_back(t[i].test_accuracy * 100.0);
    }
    return util::summarize(tail);
  };
  const auto basic_tail = tail_stability(basic_result.trajectory);
  const auto enhanced_tail = tail_stability(enhanced_result.trajectory);
  std::printf("\nconverged test accuracy (last half of iterations):\n");
  std::printf("  basic:    %s  (oscillation std %.2f)\n",
              basic_tail.to_string().c_str(), basic_tail.stddev);
  std::printf("  enhanced: %s  (oscillation std %.2f)\n",
              enhanced_tail.to_string().c_str(), enhanced_tail.stddev);
  std::printf("  first-iteration test accuracy: basic %.2f%%, "
              "enhanced %.2f%%\n",
              basic_result.trajectory.front().test_accuracy * 100.0,
              enhanced_result.trajectory.front().test_accuracy * 100.0);

  if (const auto& csv = flags.get_string("csv"); !csv.empty()) {
    eval::write_series_csv(csv, series);
    std::printf("series written to %s\n", csv.c_str());
  }

  if (const auto& metrics_out = flags.get_string("metrics-out");
      !metrics_out.empty()) {
    obs::set_enabled(true);
    auto& registry = obs::Registry::global();
    const auto emit = [&](const std::string& variant,
                          const util::Summary& tail,
                          const train::TrainResult& result) {
      registry.gauge("bench.fig3." + variant + ".tail_mean").set(tail.mean);
      registry.gauge("bench.fig3." + variant + ".tail_stddev")
          .set(tail.stddev);
      registry.gauge("bench.fig3." + variant + ".first_test_accuracy")
          .set(result.trajectory.front().test_accuracy);
      registry.gauge("bench.fig3." + variant + ".final_test_accuracy")
          .set(result.trajectory.back().test_accuracy);
    };
    emit("basic", basic_tail, basic_result);
    emit("enhanced", enhanced_tail, enhanced_result);

    obs::Json context = obs::Json::object();
    context.set("bench", "fig3_retraining");
    context.set("dataset", profile.name);
    context.set("dim", dim);
    context.set("iterations", retrain_cfg.iterations);
    obs::write_metrics_json(metrics_out, registry, std::move(context));
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
