// Chaos-scenario matrix for the multi-tenant serving stack (PR 6).
//
// Runs every named scenario from src/chaos/scenarios.hpp through a real
// InferenceServer in virtual time and publishes one BENCH_chaos.json:
//
//   1. the full scenario matrix — every invariant must hold (nonzero exit
//      on any violation);
//   2. a determinism check — each scenario is run twice and the two
//      structured reports must be byte-identical (FakeClock-driven runs
//      have no legitimate source of divergence);
//   3. a served accuracy-vs-BER sweep *through the server*: for each BER
//      the ber_live_injection scenario serves traffic against live
//      corrupted models, and the served accuracy must track that same
//      corrupted model's offline predict_batch accuracy within tolerance —
//      the serving infrastructure may not add an accuracy cliff on top of
//      the fault model measured by bench/fig_ber_robustness.
//
// --reports-dir additionally writes each scenario's lehdc.metrics.v1
// report as its own JSON file (CI uploads these as artifacts).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/scenarios.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/flags.hpp"

namespace {

using namespace lehdc;

/// The reduced matrix CI's chaos-smoke job runs under TSan.
const std::vector<std::string> kSmokeScenarios = {
    "steady_multi_tenant",
    "bursty_overload",
    "ber_live_injection",
    "hot_reload_under_fire",
    "online_drift_recovery",
};

std::vector<double> parse_bers(const std::string& spec) {
  std::vector<double> bers;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string token =
        spec.substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    if (!token.empty()) {
      bers.push_back(std::stod(token));
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  if (bers.empty()) {
    throw std::runtime_error("--bers parsed to an empty list");
  }
  return bers;
}

void write_json_file(const std::string& path, const obs::Json& document) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  out << document.dump(2) << '\n';
  if (!out) {
    throw std::runtime_error("write failed: " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags("chaos_matrix",
                         "Deterministic chaos scenarios against the "
                         "multi-tenant server; emits BENCH_chaos.json.");
  flags.add_double("scale", 1.0, "traffic horizon multiplier");
  flags.add_flag("smoke", "run the reduced CI matrix only");
  flags.add_flag("skip-determinism",
                 "skip the second (determinism-check) run of each scenario");
  flags.add_string("bers", "0.0,0.05,0.2,0.4,0.45",
                   "bit-error rates for the served accuracy sweep");
  flags.add_double("ber-tolerance", 0.0,
                   "served-vs-offline accuracy tolerance per BER point "
                   "(0 = the scenario's default cliff tolerance)");
  flags.add_string("out", "BENCH_chaos.json", "JSON output path");
  flags.add_string("reports-dir", "",
                   "write each scenario's metrics report here too");
  flags.parse(argc, argv);

  const double scale = flags.get_double("scale");
  const std::string& reports_dir = flags.get_string("reports-dir");
  if (!reports_dir.empty()) {
    std::filesystem::create_directories(reports_dir);
  }
  const bool check_determinism = !flags.get_flag("skip-determinism");
  bool failed = false;

  obs::Json scenarios_json = obs::Json::array();
  std::size_t total_violations = 0;

  // ---------------------------------------------------- scenario matrix --
  for (const chaos::NamedScenario& named : chaos::scenario_matrix()) {
    if (flags.get_flag("smoke")) {
      bool in_smoke = false;
      for (const std::string& name : kSmokeScenarios) {
        in_smoke = in_smoke || name == named.name;
      }
      if (!in_smoke) {
        continue;
      }
    }
    const chaos::ScenarioConfig config = named.configure(scale);
    const chaos::ScenarioResult result =
        chaos::run_scenario(config, named.invariants);

    bool deterministic = true;
    if (check_determinism) {
      const chaos::ScenarioResult rerun =
          chaos::run_scenario(config, named.invariants);
      deterministic = result.report.dump(2) == rerun.report.dump(2);
    }

    std::printf(
        "%-24s submitted=%-6zu served=%-6zu rejected=%-6zu peak=%-4zu "
        "acc=%.3f/%.3f %s%s\n",
        named.name.c_str(), result.submitted, result.served, result.rejected,
        result.peak_queue_depth, result.served_accuracy,
        result.offline_accuracy,
        result.violations.empty() ? "ok" : "VIOLATIONS",
        deterministic ? "" : " NONDETERMINISTIC");
    for (const std::string& violation : result.violations) {
      std::fprintf(stderr, "  %s: %s\n", named.name.c_str(),
                   violation.c_str());
    }
    if (const std::string error =
            obs::validate_metrics_json(result.report);
        !error.empty()) {
      std::fprintf(stderr, "  %s: report failed schema validation: %s\n",
                   named.name.c_str(), error.c_str());
      failed = true;
    }
    total_violations += result.violations.size();
    failed = failed || !result.violations.empty() || !deterministic;

    obs::Json entry = obs::Json::object();
    entry.set("name", named.name);
    entry.set("submitted", result.submitted);
    entry.set("served", result.served);
    entry.set("rejected", result.rejected);
    entry.set("peak_queue_depth", result.peak_queue_depth);
    entry.set("served_accuracy", result.served_accuracy);
    entry.set("offline_accuracy", result.offline_accuracy);
    entry.set("deterministic", deterministic);
    entry.set("violations", result.violations.size());
    obs::Json reasons = obs::Json::object();
    for (const auto& [reason, count] : result.reject_reasons) {
      reasons.set(reason, count);
    }
    entry.set("reject_reasons", std::move(reasons));
    if (config.drift_at_us > 0) {
      // The drift-recovery curve: per-tenant served accuracy over time
      // buckets, plus the pre/post summary the kDriftRecovery invariant
      // judges — the online tenant recovers while the frozen one decays.
      obs::Json drift = obs::Json::array();
      for (const chaos::TenantOutcome& outcome : result.tenants) {
        obs::Json tenant = obs::Json::object();
        tenant.set("tenant", outcome.id);
        tenant.set("pre_drift_accuracy", outcome.pre_drift_accuracy);
        tenant.set("post_drift_accuracy", outcome.post_drift_accuracy);
        tenant.set("flips", outcome.flips);
        tenant.set("feedback_accepted", outcome.feedback_accepted);
        obs::Json curve = obs::Json::array();
        for (const double point : outcome.accuracy_curve) {
          curve.push_back(obs::Json(point));
        }
        tenant.set("accuracy_curve", std::move(curve));
        drift.push_back(std::move(tenant));
      }
      entry.set("drift_at_us", config.drift_at_us);
      entry.set("drift", std::move(drift));
    }
    scenarios_json.push_back(std::move(entry));

    if (!reports_dir.empty()) {
      write_json_file(reports_dir + "/chaos_" + named.name + ".json",
                      result.report);
    }
  }

  // ------------------------------------------- served accuracy-vs-BER --
  // The ber_live_injection scenario at each swept BER: accuracy through
  // the live server vs the same corrupted generation's offline accuracy.
  obs::Json ber_json = obs::Json::array();
  const chaos::NamedScenario& ber_scenario =
      chaos::scenario_by_name("ber_live_injection");
  for (const double ber : parse_bers(flags.get_string("bers"))) {
    chaos::ScenarioConfig config = ber_scenario.configure(scale);
    config.name = "ber_live_injection";
    config.model_ber = ber;
    if (const double tolerance = flags.get_double("ber-tolerance");
        tolerance > 0.0) {
      config.accuracy_cliff_tolerance = tolerance;
    }
    const chaos::ScenarioResult result =
        chaos::run_scenario(config, ber_scenario.invariants);
    const double gap = result.offline_accuracy - result.served_accuracy;
    std::printf("ber=%-8.4f served=%.3f offline=%.3f gap=%+.3f %s\n", ber,
                result.served_accuracy, result.offline_accuracy, gap,
                result.violations.empty() ? "ok" : "VIOLATIONS");
    for (const std::string& violation : result.violations) {
      std::fprintf(stderr, "  ber=%.4f: %s\n", ber, violation.c_str());
    }
    total_violations += result.violations.size();
    failed = failed || !result.violations.empty();

    obs::Json point = obs::Json::object();
    point.set("ber", ber);
    point.set("served_accuracy", result.served_accuracy);
    point.set("offline_accuracy", result.offline_accuracy);
    point.set("served", result.served);
    ber_json.push_back(std::move(point));
  }

  obs::Json root = obs::Json::object();
  root.set("schema", "lehdc.chaos.v1");
  root.set("scale", scale);
  root.set("smoke", flags.get_flag("smoke"));
  root.set("total_violations", total_violations);
  root.set("scenarios", std::move(scenarios_json));
  root.set("ber_sweep", std::move(ber_json));
  const std::string& out_path = flags.get_string("out");
  write_json_file(out_path, root);
  std::printf("wrote %s\n", out_path.c_str());
  if (failed) {
    std::fprintf(stderr, "chaos matrix FAILED (%zu violations)\n",
                 total_violations);
  }
  return failed ? 1 : 0;
}
