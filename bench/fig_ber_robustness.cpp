// BER robustness harness: accuracy vs memory bit-error rate for Baseline
// bundling, Retraining and LeHDC on one benchmark profile.
//
// The claim under test (motivated by the paper's zero-overhead deployment
// story plus the in-memory HDC hardware literature): LeHDC's accuracy
// gain is carried by ordinary binary class hypervectors, so it should
// degrade as gracefully under stored-bit faults as baseline HDC does —
// the gain is not a brittle fit that evaporates at realistic fault rates.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/lehdc_trainer.hpp"
#include "data/profiles.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hdc/encoder.hpp"
#include "robustness/ber_sweep.hpp"
#include "train/baseline.hpp"
#include "train/retrain.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags(
      "fig_ber_robustness",
      "Accuracy-vs-bit-error-rate sweep comparing training strategies "
      "under stored-model (and optionally query) bit faults.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.05, "fraction of paper-scale sample counts");
  flags.add_int("epochs", 30, "LeHDC epochs / retraining iterations");
  flags.add_int("trials", 5, "independent corruption trials per BER");
  flags.add_int("seed", 7, "master seed");
  flags.add_string("dataset", "fashion-mnist", "benchmark profile");
  flags.add_string("bers", "0,1e-4,1e-3,1e-2,5e-2",
                   "comma-separated bit-error rates");
  flags.add_flag("queries", "also corrupt the encoded queries");
  flags.add_string("csv", "fig_ber_robustness.csv",
                   "output CSV ('' disables)");
  flags.add_flag("full", "paper scale (D=10000, all samples)");
  flags.parse(argc, argv);

  const bool full = flags.get_flag("full");
  const std::size_t dim =
      full ? 10000 : static_cast<std::size_t>(flags.get_int("dim"));
  const double sample_scale = full ? 1.0 : flags.get_double("scale");

  const auto profile =
      data::scaled(data::profile_by_name(flags.get_string("dataset")),
                   sample_scale);
  util::log_info("generating " + profile.name + ": " +
                 std::to_string(profile.config.train_count) + " train / " +
                 std::to_string(profile.config.test_count) + " test");
  const data::TrainTestSplit split = generate_synthetic(profile.config);

  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = dim;
  encoder_cfg.feature_count = split.train.feature_count();
  encoder_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const hdc::RecordEncoder encoder(encoder_cfg);
  const auto encoded_train = hdc::encode_dataset(encoder, split.train);
  const auto encoded_test = hdc::encode_dataset(encoder, split.test);

  // Parse the sweep configuration up front so a bad flag fails before any
  // training time is spent.
  robustness::BerSweepConfig sweep_cfg;
  sweep_cfg.bers.clear();
  {
    const std::string& text = flags.get_string("bers");
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t comma = text.find(',', start);
      const std::string token = text.substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start);
      if (!token.empty()) {
        double ber = 0.0;
        try {
          std::size_t consumed = 0;
          ber = std::stod(token, &consumed);
          if (consumed != token.size()) {
            throw std::invalid_argument(token);
          }
        } catch (const std::exception&) {
          std::fprintf(stderr, "error: --bers entry '%s' is not a number\n",
                       token.c_str());
          return 1;
        }
        if (ber < 0.0) {
          std::fprintf(stderr, "error: --bers entry %s is negative\n",
                       token.c_str());
          return 1;
        }
        sweep_cfg.bers.push_back(ber);
      }
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
  }
  if (sweep_cfg.bers.empty()) {
    std::fprintf(stderr, "error: --bers lists no bit-error rates\n");
    return 1;
  }
  sweep_cfg.trials = static_cast<std::size_t>(flags.get_int("trials"));
  sweep_cfg.corrupt_queries = flags.get_flag("queries");
  sweep_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  train::TrainOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  train::RetrainConfig retrain_cfg;
  retrain_cfg.iterations = static_cast<std::size_t>(flags.get_int("epochs"));
  core::LeHdcConfig lehdc_cfg;
  lehdc_cfg.epochs = static_cast<std::size_t>(flags.get_int("epochs"));

  struct Entry {
    std::string name;
    hdc::BinaryClassifier classifier;
  };
  std::vector<Entry> entries;
  const auto add_entry = [&](const std::string& name,
                             const train::Trainer& trainer) {
    util::log_info("training " + name + "...");
    const auto result = trainer.train(encoded_train, options);
    const auto* binary = result.model->as_binary();
    if (binary == nullptr) {
      util::log_info("skipping " + name + " (no binary classifier)");
      return;
    }
    entries.push_back(Entry{name, *binary});
  };
  add_entry("Baseline", train::BaselineTrainer());
  add_entry("Retraining", train::RetrainingTrainer(retrain_cfg));
  add_entry("LeHDC", core::LeHdcTrainer(lehdc_cfg));

  std::vector<robustness::SweepSeries> series;
  for (const auto& entry : entries) {
    series.push_back(robustness::SweepSeries{
        entry.name, robustness::ber_sweep(entry.classifier, encoded_test,
                                          sweep_cfg)});
  }

  std::printf("\naccuracy vs stored-bit error rate on %s (D=%zu, %zu "
              "trials%s)\n",
              profile.name.c_str(), dim, sweep_cfg.trials,
              sweep_cfg.corrupt_queries ? ", queries also corrupted" : "");
  std::printf("%10s", "BER");
  for (const auto& s : series) {
    std::printf("  %18s", s.name.c_str());
  }
  std::printf("\n");
  for (std::size_t r = 0; r < sweep_cfg.bers.size(); ++r) {
    std::printf("%10.0e", sweep_cfg.bers[r]);
    for (const auto& s : series) {
      std::printf("  %11.2f%% ± %4.2f", s.points[r].mean_accuracy * 100.0,
                  s.points[r].stddev * 100.0);
    }
    std::printf("\n");
  }
  for (const auto& s : series) {
    const double clean = s.points.front().mean_accuracy;
    const double worst = s.points.back().mean_accuracy;
    std::printf("%s: clean %.2f%%, at BER %.0e retains %.2f%% "
                "(drop %.2f points)\n",
                s.name.c_str(), clean * 100.0, sweep_cfg.bers.back(),
                worst * 100.0, (clean - worst) * 100.0);
  }

  if (const auto& csv = flags.get_string("csv"); !csv.empty()) {
    robustness::write_sweep_csv(csv, series);
    std::printf("sweep written to %s\n", csv.c_str());
  }
  return 0;
}
