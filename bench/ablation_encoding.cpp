// Encoding ablations (Sec. 2 of the paper fixes record-based encoding with
// one quantizer setting; this bench sweeps the front end while holding the
// training strategies fixed):
//   * record-based vs N-gram vs random-projection encoders;
//   * quantization level count Q for the record encoder.
// LeHDC is encoder-agnostic (Sec. 4), so its advantage should persist
// across front ends.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/lehdc_trainer.hpp"
#include "data/profiles.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hdc/projection_encoder.hpp"
#include "train/baseline.hpp"
#include "train/retrain.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace lehdc;

struct Row {
  std::string encoder;
  double baseline;
  double retraining;
  double lehdc;
};

Row run_encoders(const std::string& name, const hdc::Encoder& encoder,
                 const data::TrainTestSplit& split, std::uint64_t seed) {
  const auto train_set = hdc::encode_dataset(encoder, split.train);
  const auto test_set = hdc::encode_dataset(encoder, split.test);

  train::TrainOptions options;
  options.seed = seed;

  const train::BaselineTrainer baseline;
  train::RetrainConfig retrain_cfg;
  retrain_cfg.iterations = 25;
  const train::RetrainingTrainer retraining(retrain_cfg);
  core::LeHdcConfig lehdc_cfg;
  lehdc_cfg.epochs = 25;
  lehdc_cfg.weight_decay = 0.03f;
  lehdc_cfg.dropout_rate = 0.3f;
  const core::LeHdcTrainer lehdc(lehdc_cfg);

  Row row;
  row.encoder = name;
  row.baseline =
      baseline.train(train_set, options).model->accuracy(test_set) * 100.0;
  row.retraining =
      retraining.train(train_set, options).model->accuracy(test_set) * 100.0;
  row.lehdc =
      lehdc.train(train_set, options).model->accuracy(test_set) * 100.0;
  util::log_info(name + " done");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(
      "ablation_encoding",
      "Encoder front-end ablation: record / N-gram / projection encoders "
      "and quantization-level sweep, three training strategies each.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.04, "fraction of paper-scale sample counts");
  flags.add_string("dataset", "fashion-mnist", "benchmark profile");
  flags.add_int("seed", 7, "master seed");
  flags.parse(argc, argv);

  const auto dim = static_cast<std::size_t>(flags.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto profile =
      data::scaled(data::profile_by_name(flags.get_string("dataset")),
                   flags.get_double("scale"));
  util::log_info("generating " + profile.name);
  const data::TrainTestSplit split = generate_synthetic(profile.config);
  const auto [lo, hi] = split.train.value_range();

  std::vector<Row> rows;

  // Quantization sweep for the record encoder.
  for (const std::size_t levels : {4u, 16u, 32u, 64u}) {
    hdc::RecordEncoderConfig cfg;
    cfg.dim = dim;
    cfg.feature_count = split.train.feature_count();
    cfg.levels = levels;
    cfg.range_lo = lo;
    cfg.range_hi = hi;
    cfg.seed = seed;
    const hdc::RecordEncoder encoder(cfg);
    rows.push_back(run_encoders(
        "record Q=" + std::to_string(levels), encoder, split, seed));
  }

  // N-gram encoder.
  {
    hdc::NgramEncoderConfig cfg;
    cfg.dim = dim;
    cfg.feature_count = split.train.feature_count();
    cfg.levels = 32;
    cfg.ngram = 3;
    cfg.range_lo = lo;
    cfg.range_hi = hi;
    cfg.seed = seed;
    const hdc::NgramEncoder encoder(cfg);
    rows.push_back(run_encoders("ngram n=3", encoder, split, seed));
  }

  // Random projection encoder.
  {
    hdc::ProjectionEncoderConfig cfg;
    cfg.dim = dim;
    cfg.feature_count = split.train.feature_count();
    cfg.seed = seed;
    const hdc::ProjectionEncoder encoder(cfg);
    rows.push_back(run_encoders("projection", encoder, split, seed));
  }

  std::printf("\nEncoding ablation on %s (D=%zu):\n", profile.name.c_str(),
              dim);
  util::TextTable table(
      {"Encoder", "Baseline %", "Retraining %", "LeHDC %"});
  for (const auto& row : rows) {
    table.add_row({row.encoder, util::TextTable::cell(row.baseline),
                   util::TextTable::cell(row.retraining),
                   util::TextTable::cell(row.lehdc)});
  }
  table.print(std::cout);
  std::puts("(LeHDC's gain over the baseline persists across front ends — "
            "it never touches encoding)");
  return 0;
}
