// Ablation bench for LeHDC's design choices (motivated in Sec. 4 but not
// plotted by the paper):
//   * Adam vs SGD+momentum (the paper adopts Adam citing [15]);
//   * STE latent clipping on/off;
//   * binary forward (the BNN of Fig. 4) vs float forward (a perceptron
//     binarized only at export);
//   * batch-size sensitivity;
//   * AdaptHD's adaptive learning rate vs basic retraining (Sec. 3.2(2));
//   * non-binary HDC (footnote 1) as a reference point.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/deep_lehdc.hpp"
#include "core/lehdc_trainer.hpp"
#include "hdc/ternary.hpp"
#include "train/baseline.hpp"
#include "train/class_matrix.hpp"
#include "data/profiles.hpp"
#include "eval/presets.hpp"
#include "hdc/encoded_dataset.hpp"
#include "train/adapt.hpp"
#include "train/nonbinary.hpp"
#include "train/retrain.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags(
      "ablation_training",
      "LeHDC design-choice ablations on the Fashion-MNIST profile.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.05, "fraction of paper-scale sample counts");
  flags.add_int("epochs", 20, "LeHDC epochs per variant");
  flags.add_int("seed", 7, "master seed");
  flags.add_string("dataset", "fashion-mnist", "benchmark profile");
  flags.parse(argc, argv);

  const auto profile =
      data::scaled(data::profile_by_name(flags.get_string("dataset")),
                   flags.get_double("scale"));
  util::log_info("generating " + profile.name);
  const data::TrainTestSplit split = generate_synthetic(profile.config);

  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = static_cast<std::size_t>(flags.get_int("dim"));
  encoder_cfg.feature_count = split.train.feature_count();
  encoder_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const hdc::RecordEncoder encoder(encoder_cfg);
  const auto encoded_train = hdc::encode_dataset(encoder, split.train);
  const auto encoded_test = hdc::encode_dataset(encoder, split.test);

  train::TrainOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  util::TextTable table({"Variant", "train %", "test %", "seconds"});
  const auto run = [&](const std::string& name,
                       const train::Trainer& trainer) {
    const auto result = trainer.train(encoded_train, options);
    table.add_row(
        {name,
         util::TextTable::cell(result.model->accuracy(encoded_train) * 100.0),
         util::TextTable::cell(result.model->accuracy(encoded_test) * 100.0),
         util::TextTable::cell(result.train_seconds, 2)});
    util::log_info(name + " done");
  };

  core::LeHdcConfig base;
  base.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  base.learning_rate = 0.01f;
  base.weight_decay = 0.03f;
  base.dropout_rate = 0.3f;
  base.batch_size = 64;

  run("LeHDC (Adam, clip, binary fwd)", core::LeHdcTrainer(base));

  {
    core::LeHdcConfig cfg = base;
    cfg.use_adam = false;
    run("LeHDC w/ SGD+momentum", core::LeHdcTrainer(cfg));
  }
  {
    core::LeHdcConfig cfg = base;
    cfg.latent_clip = 0.0f;
    run("LeHDC w/o STE clip", core::LeHdcTrainer(cfg));
  }
  {
    core::LeHdcConfig cfg = base;
    cfg.binary_forward = false;
    run("LeHDC float forward", core::LeHdcTrainer(cfg));
  }
  {
    core::LeHdcConfig cfg = base;
    cfg.decay_mode = nn::WeightDecayMode::kDecoupled;
    run("LeHDC decoupled WD (AdamW)", core::LeHdcTrainer(cfg));
  }
  {
    core::LeHdcConfig cfg = base;
    cfg.init = core::LeHdcConfig::Init::kRandom;
    run("LeHDC random init", core::LeHdcTrainer(cfg));
  }
  {
    // Softened softmax (logit temperature ~1/sqrt(D)) with matching lighter
    // decay: trades the saturated-softmax perceptron-like updates for soft
    // multi-class ones. At this epoch budget the saturated form converges
    // faster; DeepLeHDC *requires* the scaling (see core/deep_lehdc.hpp).
    core::LeHdcConfig cfg = base;
    cfg.init = core::LeHdcConfig::Init::kRandom;
    cfg.logit_scale = 0.02f;  // ~1/sqrt(D) at D = 2000
    cfg.weight_decay = 0.003f;
    run("LeHDC random init + logit temp", core::LeHdcTrainer(cfg));
  }
  for (const std::size_t batch : {16, 256}) {
    core::LeHdcConfig cfg = base;
    cfg.batch_size = batch;
    run("LeHDC batch " + std::to_string(batch), core::LeHdcTrainer(cfg));
  }

  train::RetrainConfig retrain_cfg;
  retrain_cfg.iterations = 25;
  run("Retraining (fixed alpha)", train::RetrainingTrainer(retrain_cfg));
  run("EnhancedRetraining", train::EnhancedRetrainingTrainer(retrain_cfg));

  train::AdaptConfig adapt_cfg;
  adapt_cfg.iterations = 25;
  adapt_cfg.mode = train::AdaptMode::kDataDependent;
  run("AdaptHD (data-dependent)", train::AdaptHdTrainer(adapt_cfg));
  adapt_cfg.mode = train::AdaptMode::kIterationDependent;
  run("AdaptHD (iteration-dependent)", train::AdaptHdTrainer(adapt_cfg));

  train::NonBinaryConfig nonbinary_cfg;
  nonbinary_cfg.retrain_epochs = 25;
  run("Non-binary HDC (footnote 1)", train::NonBinaryTrainer(nonbinary_cfg));

  // QuantHD-style ternary quantization of the retrained class vectors:
  // 2 bits/component, dead-zoned weak components.
  {
    const auto c_nb =
        train::to_class_matrix(train::accumulate_classes(encoded_train));
    const auto ternary =
        hdc::TernaryClassifier::from_class_matrix(c_nb, 0.3f);
    table.add_row(
        {"Ternary baseline (QuantHD-style)",
         util::TextTable::cell(ternary.accuracy(encoded_train) * 100.0),
         util::TextTable::cell(ternary.accuracy(encoded_test) * 100.0),
         util::TextTable::cell(0.0, 2)});
    std::printf("ternary sparsity: %.1f%%%% of components zeroed\n",
                ternary.sparsity() * 100.0);
  }

  // Two-layer BNN extension (the paper's future-work direction): more
  // accuracy headroom, but no longer a zero-overhead HDC drop-in.
  {
    core::DeepLeHdcConfig deep_cfg;
    deep_cfg.hidden = 256;
    deep_cfg.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
    run("DeepLeHDC (2-layer, H=256)", core::DeepLeHdcTrainer(deep_cfg));
  }

  std::printf("\nAblations on %s (D=%zu):\n", profile.name.c_str(),
              encoder_cfg.dim);
  table.print(std::cout);
  return 0;
}
