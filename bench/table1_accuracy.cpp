// Table 1 harness: inference accuracy (mean ± std) of Baseline /
// Multi-Model [8] / Retraining [4] / LeHDC on the six benchmark profiles,
// plus the paper's "Avg Increment" column, and the Table 2 hyper-parameter
// listing the runs use.
//
// Defaults are scaled for a single-core laptop run (D = 2,000, ~5% of the
// paper's sample counts, shortened epochs); pass --full to run at paper
// scale (D = 10,000, full sample counts — hours of compute).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "data/profiles.hpp"
#include "eval/experiment.hpp"
#include "eval/presets.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace lehdc;

/// Lowercases and maps anything outside [a-z0-9] to '_' so dataset and
/// strategy labels fit the metric-name charset.
std::string metric_slug(std::string_view label) {
  std::string slug;
  slug.reserve(label.size());
  for (const char c : label) {
    if (c >= 'A' && c <= 'Z') {
      slug.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      slug.push_back(c);
    } else {
      slug.push_back('_');
    }
  }
  return slug;
}

struct Scale {
  std::size_t dim;
  double sample_scale;
  double epoch_scale;       // multiplies LeHDC epochs & retraining iters
  std::size_t mm_models;    // multi-model ensemble size
  std::size_t trials;
};

core::PipelineConfig scaled_config(data::BenchmarkId id,
                                   core::Strategy strategy,
                                   const Scale& scale, std::uint64_t seed,
                                   std::size_t train_count) {
  core::PipelineConfig cfg =
      eval::table1_config(id, strategy, scale.dim, seed);
  const auto scale_epochs = [&](std::size_t epochs) {
    const auto scaled_epochs = static_cast<std::size_t>(
        static_cast<double>(epochs) * scale.epoch_scale);
    return std::max<std::size_t>(5, scaled_epochs);
  };
  cfg.lehdc.epochs = scale_epochs(cfg.lehdc.epochs);
  cfg.retrain.iterations = scale_epochs(cfg.retrain.iterations);
  cfg.multimodel.models_per_class = scale.mm_models;
  cfg.multimodel.epochs = scale_epochs(cfg.multimodel.epochs);
  if (scale.sample_scale < 1.0) {
    // Table 2's batch sizes and learning rates were tuned for the paper's
    // full sample counts (60k samples, 100–200 epochs). At a fraction of
    // the data the same settings leave too few optimizer steps (large
    // batches) or oscillate (LR 0.1 on dozens of steps), so the fast mode
    // rescales them; --full keeps the paper's exact values.
    if (cfg.lehdc.batch_size > 64) {
      cfg.lehdc.batch_size = std::clamp<std::size_t>(
          static_cast<std::size_t>(static_cast<double>(cfg.lehdc.batch_size) *
                                   scale.sample_scale * 4.0),
          32, 256);
    }
    cfg.lehdc.learning_rate =
        std::clamp(cfg.lehdc.learning_rate, 0.005f, 0.02f);
    cfg.lehdc.epochs = std::max<std::size_t>(cfg.lehdc.epochs, 15);
    // Keep at least ~12 optimizer steps per epoch on small scaled corpora.
    cfg.lehdc.batch_size = std::min<std::size_t>(
        cfg.lehdc.batch_size, std::max<std::size_t>(16, train_count / 12));
  }
  return cfg;
}

void print_table2(const Scale& scale) {
  util::TextTable table({"Dataset", "WD", "LR", "B", "DR", "Epochs (paper)",
                         "Epochs (this run)"});
  for (const auto id : data::all_benchmarks()) {
    const auto profile = data::profile(id);
    const auto cfg = eval::lehdc_preset(id);
    const auto run_epochs = std::max<std::size_t>(
        5, static_cast<std::size_t>(static_cast<double>(cfg.epochs) *
                                    scale.epoch_scale));
    table.add_row({profile.name, util::TextTable::cell(cfg.weight_decay),
                   util::TextTable::cell(cfg.learning_rate, 3),
                   std::to_string(cfg.batch_size),
                   util::TextTable::cell(cfg.dropout_rate, 1),
                   std::to_string(cfg.epochs), std::to_string(run_epochs)});
  }
  std::puts("Table 2: LeHDC hyper-parameters");
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(
      "table1_accuracy",
      "Regenerates Table 1: accuracy of the four training strategies on "
      "the six benchmark profiles.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.05, "fraction of paper-scale sample counts");
  flags.add_double("epoch-scale", 0.15,
                   "fraction of paper-scale epochs/iterations");
  flags.add_int("mm-models", 8, "multi-model hypervectors per class");
  flags.add_int("trials", 3, "independent trials for mean ± std");
  flags.add_int("seed", 7, "master seed");
  flags.add_string("only", "", "run a single benchmark (by name)");
  flags.add_string("csv", "", "also write rows to this CSV file");
  flags.add_string("metrics-out", "",
                   "also write a lehdc.metrics.v1 snapshot here");
  flags.add_flag("full", "paper scale: D=10000, all samples, all epochs, "
                         "64 models/class (very slow)");
  flags.parse(argc, argv);

  Scale scale;
  if (flags.get_flag("full")) {
    scale = {10000, 1.0, 1.0, 64, static_cast<std::size_t>(
                                      flags.get_int("trials"))};
  } else {
    scale = {static_cast<std::size_t>(flags.get_int("dim")),
             flags.get_double("scale"), flags.get_double("epoch-scale"),
             static_cast<std::size_t>(flags.get_int("mm-models")),
             static_cast<std::size_t>(flags.get_int("trials"))};
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  print_table2(scale);
  std::printf("\nRun config: D=%zu, sample scale %.3g, epoch scale %.3g, "
              "%zu models/class, %zu trials\n\n",
              scale.dim, scale.sample_scale, scale.epoch_scale,
              scale.mm_models, scale.trials);

  const auto strategies = eval::table1_strategies();
  std::vector<std::string> header{"Strategy"};
  std::vector<data::BenchmarkProfile> profiles;
  for (const auto id : data::all_benchmarks()) {
    auto profile = data::scaled(data::profile(id), scale.sample_scale);
    if (const auto& only = flags.get_string("only"); !only.empty()) {
      if (data::profile_by_name(only).id != id) {
        continue;
      }
    }
    header.push_back(profile.name);
    profiles.push_back(std::move(profile));
  }
  header.emplace_back("Avg Increment");

  // accuracy[strategy][dataset]
  std::vector<std::vector<util::Summary>> accuracy(
      strategies.size(), std::vector<util::Summary>(profiles.size()));

  const util::Stopwatch total_timer;
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    util::log_info("generating " + profiles[d].name + " (" +
                   std::to_string(profiles[d].config.train_count) +
                   " train samples)");
    const data::TrainTestSplit split =
        data::generate_synthetic(profiles[d].config);

    std::vector<core::PipelineConfig> configs;
    configs.reserve(strategies.size());
    for (const auto strategy : strategies) {
      configs.push_back(scaled_config(profiles[d].id, strategy, scale,
                                      seed,
                                      profiles[d].config.train_count));
    }
    const auto outcomes =
        eval::compare_strategies_shared_encoding(split, configs,
                                                 scale.trials);
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      accuracy[s][d] = outcomes[s].test_accuracy;
      util::log_info("  " + outcomes[s].strategy + ": " +
                     outcomes[s].test_accuracy.to_string());
    }
  }

  util::TextTable table(header);
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    std::vector<std::string> row{core::strategy_name(strategies[s])};
    double increment_sum = 0.0;
    for (std::size_t d = 0; d < profiles.size(); ++d) {
      row.push_back(accuracy[s][d].to_string());
      increment_sum += accuracy[s][d].mean - accuracy[0][d].mean;
    }
    if (s == 0) {
      row.emplace_back("--");
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.2f",
                    increment_sum / static_cast<double>(profiles.size()));
      row.emplace_back(buf);
    }
    csv_rows.push_back(row);
    table.add_row(std::move(row));
  }

  std::puts("\nTable 1: inference accuracy (%) — mean ±std over trials");
  table.print(std::cout);
  std::printf("total wall time: %.1fs\n", total_timer.elapsed_seconds());

  if (const auto& csv_path = flags.get_string("csv"); !csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.write_row(header);
    for (const auto& row : csv_rows) {
      csv.write_row(row);
    }
    std::printf("rows written to %s\n", csv_path.c_str());
  }

  if (const auto& metrics_out = flags.get_string("metrics-out");
      !metrics_out.empty()) {
    obs::set_enabled(true);
    auto& registry = obs::Registry::global();
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      const std::string strategy_slug =
          metric_slug(core::strategy_name(strategies[s]));
      for (std::size_t d = 0; d < profiles.size(); ++d) {
        const std::string stem = "bench.table1." +
                                 metric_slug(profiles[d].name) + "." +
                                 strategy_slug;
        registry.gauge(stem + "_mean").set(accuracy[s][d].mean);
        registry.gauge(stem + "_stddev").set(accuracy[s][d].stddev);
      }
    }
    obs::Json context = obs::Json::object();
    context.set("bench", "table1_accuracy");
    context.set("dim", scale.dim);
    context.set("sample_scale", scale.sample_scale);
    context.set("trials", scale.trials);
    obs::write_metrics_json(metrics_out, registry, std::move(context));
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
