// Sec. 5.1 resource harness: storage and per-query similarity-search cost
// of each strategy, plus a measured inference-latency comparison proving
// the paper's zero-overhead claim — LeHDC's deployed model is structurally
// identical to the baseline's, so its measured latency matches to noise.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "data/profiles.hpp"
#include "eval/hardware_model.hpp"
#include "eval/resource.hpp"
#include "hdc/encoded_dataset.hpp"
#include "train/baseline.hpp"
#include "train/multimodel.hpp"
#include "core/lehdc_trainer.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace lehdc;

double measure_accuracy_pass_ms(const train::Model& model,
                                const hdc::EncodedDataset& dataset,
                                int repeats) {
  // Warm-up.
  (void)model.accuracy(dataset);
  const util::Stopwatch timer;
  for (int r = 0; r < repeats; ++r) {
    (void)model.accuracy(dataset);
  }
  return timer.elapsed_millis() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(
      "resource_model",
      "Sec. 5.1 resource comparison: storage, per-query op counts and "
      "measured inference latency per strategy.");
  flags.add_int("dim", 10000, "hypervector dimension D (analytic table)");
  flags.add_int("classes", 10, "classes K");
  flags.add_int("features", 784, "input features N");
  flags.add_int("mm-models", 64, "multi-model hypervectors per class");
  flags.add_int("measure-dim", 2000, "D for the measured-latency section");
  flags.add_int("measure-mm", 8, "models/class for measured latency");
  flags.add_int("repeats", 20, "timing repeats");
  flags.parse(argc, argv);

  eval::ResourceParams params;
  params.dim = static_cast<std::size_t>(flags.get_int("dim"));
  params.classes = static_cast<std::size_t>(flags.get_int("classes"));
  params.features = static_cast<std::size_t>(flags.get_int("features"));
  params.models_per_class =
      static_cast<std::size_t>(flags.get_int("mm-models"));

  std::puts("Analytic model (Sec. 5.1): per-strategy storage and per-query "
            "similarity-search work");
  util::TextTable table({"Strategy", "Model KiB", "Encoder KiB",
                         "word ops/query", "vs Baseline"});
  const auto baseline =
      eval::estimate_resources(core::Strategy::kBaseline, params);
  for (const auto strategy :
       {core::Strategy::kBaseline, core::Strategy::kRetraining,
        core::Strategy::kLeHdc, core::Strategy::kMultiModel,
        core::Strategy::kNonBinary}) {
    const auto estimate = eval::estimate_resources(strategy, params);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_cast<double>(estimate.inference_word_ops) /
                      static_cast<double>(baseline.inference_word_ops));
    table.add_row({estimate.strategy,
                   util::TextTable::cell(
                       static_cast<double>(estimate.model_bits) / 8192.0, 1),
                   util::TextTable::cell(
                       static_cast<double>(estimate.encoder_bits) / 8192.0,
                       1),
                   std::to_string(estimate.inference_word_ops), ratio});
  }
  table.print(std::cout);

  // First-order accelerator model (Sec. 5.1's "inference in microseconds"
  // on FPGA / in-memory hardware).
  eval::HardwareConfig hardware;
  std::printf("\nAccelerator model (%.0f MHz, %zu XOR+popcount lanes, "
              "%.1f pJ/word-op):\n",
              hardware.clock_mhz, hardware.lanes,
              hardware.energy_per_word_op_pj);
  util::TextTable hw_table({"Strategy", "cycles/query", "latency us",
                            "energy nJ", "model KiB"});
  for (const auto strategy :
       {core::Strategy::kBaseline, core::Strategy::kLeHdc,
        core::Strategy::kMultiModel}) {
    const auto hw = eval::estimate_hardware(strategy, params, hardware);
    hw_table.add_row({hw.strategy, std::to_string(hw.cycles_per_query),
                      util::TextTable::cell(hw.latency_us, 2),
                      util::TextTable::cell(hw.energy_nj, 1),
                      util::TextTable::cell(hw.model_kib, 1)});
  }
  hw_table.print(std::cout);

  // Measured latency: train small models and time full accuracy passes.
  std::puts("\nMeasured inference latency (same encoded queries, trained "
            "models):");
  auto profile = data::scaled(data::profile(data::BenchmarkId::kMnist), 0.02);
  const data::TrainTestSplit split = generate_synthetic(profile.config);
  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = static_cast<std::size_t>(flags.get_int("measure-dim"));
  encoder_cfg.feature_count = split.train.feature_count();
  encoder_cfg.seed = 1;
  const hdc::RecordEncoder encoder(encoder_cfg);
  const auto encoded_train = hdc::encode_dataset(encoder, split.train);
  const auto encoded_test = hdc::encode_dataset(encoder, split.test);
  const int repeats = static_cast<int>(flags.get_int("repeats"));

  train::TrainOptions options;
  options.seed = 1;

  util::TextTable measured({"Strategy", "ms / full test pass",
                            "us / query"});
  const auto add_measured = [&](const char* name,
                                const train::Model& model) {
    const double ms = measure_accuracy_pass_ms(model, encoded_test, repeats);
    measured.add_row({name, util::TextTable::cell(ms, 3),
                      util::TextTable::cell(
                          ms * 1000.0 /
                              static_cast<double>(encoded_test.size()),
                          2)});
  };

  const train::BaselineTrainer baseline_trainer;
  const auto baseline_result = baseline_trainer.train(encoded_train, options);
  add_measured("Baseline", *baseline_result.model);

  core::LeHdcConfig lehdc_cfg;
  lehdc_cfg.epochs = 5;
  const core::LeHdcTrainer lehdc_trainer(lehdc_cfg);
  const auto lehdc_result = lehdc_trainer.train(encoded_train, options);
  add_measured("LeHDC", *lehdc_result.model);

  train::MultiModelConfig mm_cfg;
  mm_cfg.models_per_class =
      static_cast<std::size_t>(flags.get_int("measure-mm"));
  mm_cfg.epochs = 3;
  const train::MultiModelTrainer mm_trainer(mm_cfg);
  const auto mm_result = mm_trainer.train(encoded_train, options);
  char mm_name[64];
  std::snprintf(mm_name, sizeof(mm_name), "Multi-Model (M=%zu)",
                mm_cfg.models_per_class);
  add_measured(mm_name, *mm_result.model);

  measured.print(std::cout);
  std::puts("\nLeHDC matches the baseline row (same model shape: K binary "
            "hypervectors); the ensemble scales with M.");
  return 0;
}
