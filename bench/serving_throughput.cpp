// Serving throughput vs the direct batch path (PR 4), plus the socket
// front-end under open-loop load (PR 7).
//
// Four measurements on one fitted pipeline:
//   direct       — Pipeline::predict_batch over a full query dataset, no
//                  server in the way: the upper bound the server is judged
//                  against (the DESIGN.md budget is ≥85% of this at
//                  saturation).
//   saturated    — closed-loop load through InferenceServer: a window of
//                  in-flight futures keeps the bounded queue full so the
//                  micro-batcher flushes on size, not time.
//   overload     — the same load against a deliberately tiny queue
//                  (2x oversubmission): demonstrates bounded-queue
//                  shedding — peak depth must stay ≤ capacity, the excess
//                  must come back as typed queue_full rejections, and
//                  every accepted request must still be answered.
//   open-loop TCP — `--conns` concurrent TCP connections against the
//                  epoll front-end (src/serve/transport/), arrivals on a
//                  fixed pre-generated schedule (chaos::arrival_times) so
//                  latency runs from each request's *scheduled* instant —
//                  no coordinated omission. Reports exact p50/p99/p99.9
//                  and bytes-per-connection.
// Emits BENCH_serving.json (a lehdc.metrics.v1 snapshot) for trajectory
// tracking; exits nonzero if an overload or open-loop invariant breaks.
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/arrival.hpp"
#include "core/pipeline.hpp"
#include "data/spec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport/event_loop.hpp"
#include "serve/transport/socket.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lehdc;

/// Runs fn (which answers `batch` queries) until min_seconds of wall time
/// accumulate and returns the aggregate queries/sec.
template <typename Fn>
double measure_qps(std::size_t batch, double min_seconds, Fn&& fn) {
  fn();  // warm-up: pools, scratch, first-touch pages
  const util::Stopwatch timer;
  std::size_t runs = 0;
  do {
    fn();
    ++runs;
  } while (timer.elapsed_seconds() < min_seconds);
  return static_cast<double>(runs * batch) / timer.elapsed_seconds();
}

/// Exact percentile (nearest-rank) over an already-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Raises RLIMIT_NOFILE far enough for `fds` descriptors (best effort;
/// the bench fails loudly at connect() if the cap still binds).
void raise_fd_limit(std::size_t fds) {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) {
    return;
  }
  const rlim_t want = fds + 128;
  if (limit.rlim_cur < want) {
    limit.rlim_cur = std::min<rlim_t>(want, limit.rlim_max);
    (void)setrlimit(RLIMIT_NOFILE, &limit);
  }
}

/// One open-loop client connection: pending request bytes out, a frame
/// decoder over response bytes in.
struct OpenLoopClient {
  int fd = -1;
  std::string outbuf;
  serve::FrameDecoder decoder = serve::make_response_decoder("client");
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

struct OpenLoopResult {
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t rejected = 0;
  double elapsed_seconds = 0.0;
  std::vector<double> latency_ms;  // sorted ascending
  double bytes_read_per_conn = 0.0;
  double bytes_written_per_conn = 0.0;
  std::uint64_t accepted = 0;
  std::size_t peak_queue_depth = 0;
  std::size_t queue_capacity = 0;
  bool failed = false;
};

/// Drives `conns` TCP connections against an EventLoop server (running
/// on its own thread) with a pre-generated open-loop schedule. Requests
/// are stamped with their scheduled instant, so queueing delay the load
/// generator itself experiences counts against the server — the honest
/// open-loop convention.
OpenLoopResult run_open_loop(serve::ModelRegistry& registry,
                             const data::Dataset& queries, std::size_t conns,
                             double rate_per_sec, double seconds,
                             std::uint64_t seed,
                             chaos::ArrivalProcess process =
                                 chaos::ArrivalProcess::kUniform,
                             double burst_factor = 8.0,
                             std::uint64_t burst_period_us = 200'000) {
  OpenLoopResult result;
  raise_fd_limit(conns);

  serve::ServerConfig server_config;
  server_config.batcher.max_batch = 256;
  server_config.batcher.max_wait_us = 200;
  server_config.batcher.queue_capacity = 4096;
  result.queue_capacity = server_config.batcher.queue_capacity;
  serve::InferenceServer server(registry, server_config);
  serve::transport::EventLoopConfig loop_config;
  loop_config.max_connections = conns + 16;
  serve::transport::EventLoop loop(server, loop_config);
  const int listener = serve::transport::listen_tcp("127.0.0.1", 0, 1024);
  const std::uint16_t port = serve::transport::local_port(listener);
  loop.add_listener(listener);

  std::atomic<bool> stop{false};
  std::thread loop_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      loop.poll_once(2);
    }
  });

  chaos::ArrivalConfig arrivals;
  arrivals.process = process;
  arrivals.rate_per_sec = rate_per_sec;
  arrivals.horizon_us = static_cast<std::uint64_t>(seconds * 1e6);
  arrivals.burst_factor = burst_factor;
  arrivals.period_us = burst_period_us;
  arrivals.seed = seed;
  const std::vector<std::uint64_t> schedule = chaos::arrival_times(arrivals);
  result.sent = schedule.size();

  std::vector<OpenLoopClient> clients(conns);
  for (OpenLoopClient& client : clients) {
    client.fd = serve::transport::connect_tcp("127.0.0.1", port, true);
  }

  std::vector<double> latencies;
  latencies.reserve(schedule.size());
  std::size_t next_arrival = 0;
  std::size_t completed = 0;
  char buf[64 * 1024];
  const util::Stopwatch timer;
  const double deadline_seconds = seconds + 30.0;

  while (completed < schedule.size()) {
    const double now_us = timer.elapsed_seconds() * 1e6;
    if (timer.elapsed_seconds() > deadline_seconds) {
      std::fprintf(stderr,
                   "FAIL: open-loop stalled at %zu/%zu responses\n",
                   completed, schedule.size());
      result.failed = true;
      break;
    }
    while (next_arrival < schedule.size() &&
           static_cast<double>(schedule[next_arrival]) <= now_us) {
      serve::WireRequest request;
      request.id = next_arrival + 1;
      request.version = 2;
      const auto features = queries.sample(next_arrival % queries.size());
      request.features.assign(features.begin(), features.end());
      clients[next_arrival % conns].outbuf +=
          serve::encode_request(request);
      ++next_arrival;
    }
    for (OpenLoopClient& client : clients) {
      while (!client.outbuf.empty()) {
        const ssize_t n = ::send(client.fd, client.outbuf.data(),
                                 client.outbuf.size(), MSG_NOSIGNAL);
        if (n > 0) {
          client.bytes_written += static_cast<std::uint64_t>(n);
          client.outbuf.erase(0, static_cast<std::size_t>(n));
          continue;
        }
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        std::fprintf(stderr, "FAIL: client send: %s\n", strerror(errno));
        result.failed = true;
        break;
      }
      while (true) {
        const ssize_t n = ::recv(client.fd, buf, sizeof(buf), 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) {
            continue;
          }
          break;
        }
        client.bytes_read += static_cast<std::uint64_t>(n);
        client.decoder.feed({buf, static_cast<std::size_t>(n)});
        serve::FrameDecoder::Frame frame;
        while (client.decoder.next(&frame)) {
          const serve::Response response = serve::decode_response_payload(
              frame.payload, frame.version, "open-loop client");
          const double done_us = timer.elapsed_seconds() * 1e6;
          const double start_us =
              static_cast<double>(schedule[response.id - 1]);
          latencies.push_back((done_us - start_us) / 1000.0);
          if (response.ok()) {
            ++result.ok;
          } else {
            ++result.rejected;
          }
          ++completed;
        }
      }
      if (result.failed) {
        break;
      }
    }
  }
  result.elapsed_seconds = timer.elapsed_seconds();

  for (OpenLoopClient& client : clients) {
    ::close(client.fd);
    result.bytes_read_per_conn += static_cast<double>(client.bytes_read);
    result.bytes_written_per_conn +=
        static_cast<double>(client.bytes_written);
  }
  result.bytes_read_per_conn /= static_cast<double>(conns);
  result.bytes_written_per_conn /= static_cast<double>(conns);

  stop.store(true, std::memory_order_relaxed);
  loop_thread.join();
  result.accepted = loop.accepted_total();
  result.peak_queue_depth = server.peak_queue_depth();
  server.shutdown();

  std::sort(latencies.begin(), latencies.end());
  result.latency_ms = std::move(latencies);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags("serving_throughput",
                         "Micro-batching server throughput vs the direct "
                         "batch path; emits BENCH_serving.json.");
  flags.add_string("data", "synth:pamap", "training data spec");
  flags.add_double("scale", 0.05, "synthetic profile sample scale");
  flags.add_int("dim", 10000, "hypervector dimension D");
  flags.add_int("epochs", 5, "LeHDC training epochs (accuracy is not the "
                "point here)");
  flags.add_int("batch", 1024, "queries per closed-loop window");
  flags.add_int("threads", 0,
                "global pool workers (0 = LEHDC_THREADS, then hardware)");
  flags.add_int("seed", 1, "pipeline + data seed");
  flags.add_double("min-seconds", 0.3, "minimum wall time per measurement");
  flags.add_int("conns", 512,
                "open-loop TCP connections (0 skips the socket phase)");
  flags.add_double("open-rate", 5000.0,
                   "open-loop arrival rate, requests/second");
  flags.add_double("open-seconds", 1.0, "open-loop schedule horizon");
  flags.add_double("burst-factor", 8.0,
                   "bursty open-loop phase: square-wave peak multiplier "
                   "over --open-rate (0 skips the burst phase)");
  flags.add_int("burst-period-us", 200000,
                "bursty open-loop phase: square-wave period");
  flags.add_string("out", "BENCH_serving.json", "JSON output path");
  flags.parse(argc, argv);

  if (const auto threads = flags.get_int("threads"); threads > 0) {
    util::ThreadPool::configure_global(static_cast<std::size_t>(threads));
  }
  const auto batch = static_cast<std::size_t>(flags.get_int("batch"));
  const double min_seconds = flags.get_double("min-seconds");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const auto split = data::load_spec(flags.get_string("data"),
                                     flags.get_double("scale"), 0.2, seed);
  core::PipelineConfig config;
  config.dim = static_cast<std::size_t>(flags.get_int("dim"));
  config.seed = seed;
  config.lehdc.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  core::Pipeline pipeline(config);
  pipeline.fit(split.train, &split.test);

  // The query stream: test samples tiled up to one full window.
  data::Dataset queries(split.test.feature_count(), split.test.class_count());
  for (std::size_t q = 0; q < batch; ++q) {
    queries.add_sample(split.test.sample(q % split.test.size()), 0);
  }

  // 1. Direct upper bound: the fused encode+score batch path, no queueing.
  const double direct_qps = measure_qps(batch, min_seconds, [&] {
    (void)pipeline.predict_batch(queries);
  });

  // 2. Saturated closed loop through the server. max_batch matches the
  // window so a full window can flush as one batch; the wait deadline is
  // irrelevant once the queue is deep.
  serve::ModelRegistry registry;
  registry.add("default", std::move(pipeline));
  serve::ServerConfig server_config;
  server_config.batcher.max_batch = batch;
  server_config.batcher.max_wait_us = 200;
  server_config.batcher.queue_capacity = 4 * batch;
  double server_qps = 0.0;
  {
    serve::InferenceServer server(registry, server_config);
    server_qps = measure_qps(batch, min_seconds, [&] {
      std::vector<std::future<serve::Response>> inflight;
      inflight.reserve(batch);
      for (std::size_t q = 0; q < batch; ++q) {
        const auto features = queries.sample(q);
        inflight.push_back(
            server.submit({features.begin(), features.end()}));
      }
      for (auto& future : inflight) {
        if (!future.get().ok()) {
          throw std::runtime_error("saturation run rejected a request");
        }
      }
    });
    server.shutdown();
  }
  const double ratio = direct_qps > 0.0 ? server_qps / direct_qps : 0.0;

  // 3. Overload: 2x oversubmission against a queue sized for half the
  // burst. The bounded queue must shed the excess as typed rejections and
  // never grow past its capacity.
  serve::ServerConfig overload_config = server_config;
  overload_config.batcher.queue_capacity = batch;
  overload_config.batcher.max_batch = 64;
  std::size_t overload_ok = 0;
  std::size_t overload_shed = 0;
  std::size_t peak_depth = 0;
  {
    serve::InferenceServer server(registry, overload_config);
    std::vector<std::future<serve::Response>> inflight;
    inflight.reserve(2 * batch);
    for (std::size_t q = 0; q < 2 * batch; ++q) {
      const auto features = queries.sample(q % batch);
      inflight.push_back(server.submit({features.begin(), features.end()}));
    }
    for (auto& future : inflight) {
      const serve::Response response = future.get();
      if (response.ok()) {
        ++overload_ok;
      } else if (response.error == serve::Reject::kQueueFull) {
        ++overload_shed;
      } else {
        std::fprintf(stderr, "unexpected rejection: %s\n",
                     serve::reject_name(response.error));
        return 1;
      }
    }
    peak_depth = server.peak_queue_depth();
    server.shutdown();
  }

  // 4. Open-loop TCP through the epoll front-end. Metrics go live here so
  // the serve.conn.* counters/histograms from the event loop land in the
  // snapshot alongside the bench gauges.
  obs::set_enabled(true);
  const auto conns = static_cast<std::size_t>(flags.get_int("conns"));
  OpenLoopResult open;
  if (conns > 0) {
    open = run_open_loop(registry, queries, conns,
                         flags.get_double("open-rate"),
                         flags.get_double("open-seconds"), seed);
  }

  // 5. Open-loop TCP again under bursty arrivals: the same base rate, but
  // delivered as a square wave that alternates quiet valleys with
  // burst-factor× peaks (chaos::ArrivalProcess::kBursty, the same
  // generator the chaos scenarios use). Tail latency under burst is the
  // honest serving number — a uniform schedule never exercises the
  // micro-batcher's queue-then-flush transient.
  const double burst_factor = flags.get_double("burst-factor");
  OpenLoopResult burst;
  const bool run_burst = conns > 0 && burst_factor > 0.0;
  if (run_burst) {
    burst = run_open_loop(
        registry, queries, conns, flags.get_double("open-rate"),
        flags.get_double("open-seconds"), seed + 1,
        chaos::ArrivalProcess::kBursty, burst_factor,
        static_cast<std::uint64_t>(flags.get_int("burst-period-us")));
  }

  std::printf("direct batch-%zu:      %.0f qps\n", batch, direct_qps);
  std::printf("server saturated:     %.0f qps (%.1f%% of direct)\n",
              server_qps, ratio * 100.0);
  std::printf("overload 2x burst:    ok=%zu shed=%zu peak_depth=%zu "
              "(capacity %zu)\n",
              overload_ok, overload_shed, peak_depth,
              overload_config.batcher.queue_capacity);
  if (conns > 0) {
    std::printf(
        "open-loop tcp:        %zu conns, %zu reqs in %.2fs "
        "(ok=%zu rejected=%zu)\n",
        conns, open.sent, open.elapsed_seconds, open.ok, open.rejected);
    std::printf(
        "  latency p50=%.2fms p99=%.2fms p99.9=%.2fms; "
        "%.0f B read / %.0f B written per conn; peak depth %zu\n",
        percentile(open.latency_ms, 0.50), percentile(open.latency_ms, 0.99),
        percentile(open.latency_ms, 0.999), open.bytes_read_per_conn,
        open.bytes_written_per_conn, open.peak_queue_depth);
  }
  if (run_burst) {
    std::printf(
        "open-loop tcp burst:  %.0fx peaks every %dus, %zu reqs in %.2fs "
        "(ok=%zu rejected=%zu)\n",
        burst_factor, flags.get_int("burst-period-us"), burst.sent,
        burst.elapsed_seconds, burst.ok, burst.rejected);
    std::printf(
        "  latency p50=%.2fms p99=%.2fms p99.9=%.2fms; peak depth %zu\n",
        percentile(burst.latency_ms, 0.50),
        percentile(burst.latency_ms, 0.99),
        percentile(burst.latency_ms, 0.999), burst.peak_queue_depth);
  }

  bool failed = false;
  if (peak_depth > overload_config.batcher.queue_capacity) {
    std::fprintf(stderr, "FAIL: queue grew past its capacity\n");
    failed = true;
  }
  if (overload_shed == 0) {
    std::fprintf(stderr, "FAIL: 2x overload shed nothing\n");
    failed = true;
  }
  if (overload_ok + overload_shed != 2 * batch) {
    std::fprintf(stderr, "FAIL: responses lost under overload\n");
    failed = true;
  }
  if (conns > 0) {
    if (open.failed || open.ok + open.rejected != open.sent) {
      std::fprintf(stderr, "FAIL: open-loop responses lost\n");
      failed = true;
    }
    if (open.accepted < conns) {
      std::fprintf(stderr,
                   "FAIL: only %llu of %zu connections accepted\n",
                   static_cast<unsigned long long>(open.accepted), conns);
      failed = true;
    }
    if (open.peak_queue_depth > open.queue_capacity) {
      std::fprintf(stderr, "FAIL: open-loop queue depth unbounded\n");
      failed = true;
    }
  }
  if (run_burst) {
    if (burst.failed || burst.ok + burst.rejected != burst.sent) {
      std::fprintf(stderr, "FAIL: burst open-loop responses lost\n");
      failed = true;
    }
    if (burst.peak_queue_depth > burst.queue_capacity) {
      std::fprintf(stderr, "FAIL: burst queue depth unbounded\n");
      failed = true;
    }
  }

  auto& registry_obs = obs::Registry::global();
  registry_obs.gauge("bench.serving.direct_qps").set(direct_qps);
  registry_obs.gauge("bench.serving.server_qps").set(server_qps);
  registry_obs.gauge("bench.serving.saturation_ratio").set(ratio);
  registry_obs.gauge("bench.serving.overload_ok")
      .set(static_cast<double>(overload_ok));
  registry_obs.gauge("bench.serving.overload_shed")
      .set(static_cast<double>(overload_shed));
  registry_obs.gauge("bench.serving.overload_peak_depth")
      .set(static_cast<double>(peak_depth));
  if (conns > 0) {
    const double elapsed =
        open.elapsed_seconds > 0.0 ? open.elapsed_seconds : 1.0;
    registry_obs.gauge("bench.serving.tcp.connections")
        .set(static_cast<double>(conns));
    registry_obs.gauge("bench.serving.tcp.requests")
        .set(static_cast<double>(open.sent));
    registry_obs.gauge("bench.serving.tcp.qps")
        .set(static_cast<double>(open.ok + open.rejected) / elapsed);
    registry_obs.gauge("bench.serving.tcp.rejected")
        .set(static_cast<double>(open.rejected));
    registry_obs.gauge("bench.serving.tcp.p50_ms")
        .set(percentile(open.latency_ms, 0.50));
    registry_obs.gauge("bench.serving.tcp.p99_ms")
        .set(percentile(open.latency_ms, 0.99));
    registry_obs.gauge("bench.serving.tcp.p999_ms")
        .set(percentile(open.latency_ms, 0.999));
    registry_obs.gauge("bench.serving.tcp.bytes_read_per_conn")
        .set(open.bytes_read_per_conn);
    registry_obs.gauge("bench.serving.tcp.bytes_written_per_conn")
        .set(open.bytes_written_per_conn);
    registry_obs.gauge("bench.serving.tcp.peak_queue_depth")
        .set(static_cast<double>(open.peak_queue_depth));
  }
  if (run_burst) {
    const double elapsed =
        burst.elapsed_seconds > 0.0 ? burst.elapsed_seconds : 1.0;
    registry_obs.gauge("bench.serving.tcp.burst.factor").set(burst_factor);
    registry_obs.gauge("bench.serving.tcp.burst.period_us")
        .set(static_cast<double>(flags.get_int("burst-period-us")));
    registry_obs.gauge("bench.serving.tcp.burst.requests")
        .set(static_cast<double>(burst.sent));
    registry_obs.gauge("bench.serving.tcp.burst.qps")
        .set(static_cast<double>(burst.ok + burst.rejected) / elapsed);
    registry_obs.gauge("bench.serving.tcp.burst.rejected")
        .set(static_cast<double>(burst.rejected));
    registry_obs.gauge("bench.serving.tcp.burst.p50_ms")
        .set(percentile(burst.latency_ms, 0.50));
    registry_obs.gauge("bench.serving.tcp.burst.p99_ms")
        .set(percentile(burst.latency_ms, 0.99));
    registry_obs.gauge("bench.serving.tcp.burst.p999_ms")
        .set(percentile(burst.latency_ms, 0.999));
    registry_obs.gauge("bench.serving.tcp.burst.peak_queue_depth")
        .set(static_cast<double>(burst.peak_queue_depth));
  }

  obs::Json context = obs::Json::object();
  context.set("bench", "serving_throughput");
  context.set("batch", batch);
  context.set("dim", config.dim);
  context.set("queue_capacity", overload_config.batcher.queue_capacity);
  context.set("open_loop_conns", conns);
  context.set("pool_workers", util::ThreadPool::global().worker_count());

  const std::string& out_path = flags.get_string("out");
  obs::write_metrics_json(out_path, registry_obs, std::move(context));
  std::printf("wrote %s\n", out_path.c_str());
  return failed ? 1 : 0;
}
