// Serving throughput vs the direct batch path (PR 4).
//
// Three measurements on one fitted pipeline:
//   direct       — Pipeline::predict_batch over a full query dataset, no
//                  server in the way: the upper bound the server is judged
//                  against (the DESIGN.md budget is ≥85% of this at
//                  saturation).
//   saturated    — closed-loop load through InferenceServer: a window of
//                  in-flight futures keeps the bounded queue full so the
//                  micro-batcher flushes on size, not time.
//   overload     — the same load against a deliberately tiny queue
//                  (2x oversubmission): demonstrates bounded-queue
//                  shedding — peak depth must stay ≤ capacity, the excess
//                  must come back as typed queue_full rejections, and
//                  every accepted request must still be answered.
// Emits BENCH_serving.json (a lehdc.metrics.v1 snapshot) for trajectory
// tracking; exits nonzero if an overload invariant breaks.
#include <cstdio>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/spec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/server.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lehdc;

/// Runs fn (which answers `batch` queries) until min_seconds of wall time
/// accumulate and returns the aggregate queries/sec.
template <typename Fn>
double measure_qps(std::size_t batch, double min_seconds, Fn&& fn) {
  fn();  // warm-up: pools, scratch, first-touch pages
  const util::Stopwatch timer;
  std::size_t runs = 0;
  do {
    fn();
    ++runs;
  } while (timer.elapsed_seconds() < min_seconds);
  return static_cast<double>(runs * batch) / timer.elapsed_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags("serving_throughput",
                         "Micro-batching server throughput vs the direct "
                         "batch path; emits BENCH_serving.json.");
  flags.add_string("data", "synth:pamap", "training data spec");
  flags.add_double("scale", 0.05, "synthetic profile sample scale");
  flags.add_int("dim", 10000, "hypervector dimension D");
  flags.add_int("epochs", 5, "LeHDC training epochs (accuracy is not the "
                "point here)");
  flags.add_int("batch", 1024, "queries per closed-loop window");
  flags.add_int("threads", 0,
                "global pool workers (0 = LEHDC_THREADS, then hardware)");
  flags.add_int("seed", 1, "pipeline + data seed");
  flags.add_double("min-seconds", 0.3, "minimum wall time per measurement");
  flags.add_string("out", "BENCH_serving.json", "JSON output path");
  flags.parse(argc, argv);

  if (const auto threads = flags.get_int("threads"); threads > 0) {
    util::ThreadPool::configure_global(static_cast<std::size_t>(threads));
  }
  const auto batch = static_cast<std::size_t>(flags.get_int("batch"));
  const double min_seconds = flags.get_double("min-seconds");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const auto split = data::load_spec(flags.get_string("data"),
                                     flags.get_double("scale"), 0.2, seed);
  core::PipelineConfig config;
  config.dim = static_cast<std::size_t>(flags.get_int("dim"));
  config.seed = seed;
  config.lehdc.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  core::Pipeline pipeline(config);
  pipeline.fit(split.train, &split.test);

  // The query stream: test samples tiled up to one full window.
  data::Dataset queries(split.test.feature_count(), split.test.class_count());
  for (std::size_t q = 0; q < batch; ++q) {
    queries.add_sample(split.test.sample(q % split.test.size()), 0);
  }

  // 1. Direct upper bound: the fused encode+score batch path, no queueing.
  const double direct_qps = measure_qps(batch, min_seconds, [&] {
    (void)pipeline.predict_batch(queries);
  });

  // 2. Saturated closed loop through the server. max_batch matches the
  // window so a full window can flush as one batch; the wait deadline is
  // irrelevant once the queue is deep.
  serve::ModelRegistry registry;
  registry.add("default", std::move(pipeline));
  serve::ServerConfig server_config;
  server_config.batcher.max_batch = batch;
  server_config.batcher.max_wait_us = 200;
  server_config.batcher.queue_capacity = 4 * batch;
  double server_qps = 0.0;
  {
    serve::InferenceServer server(registry, server_config);
    server_qps = measure_qps(batch, min_seconds, [&] {
      std::vector<std::future<serve::Response>> inflight;
      inflight.reserve(batch);
      for (std::size_t q = 0; q < batch; ++q) {
        const auto features = queries.sample(q);
        inflight.push_back(
            server.submit({features.begin(), features.end()}));
      }
      for (auto& future : inflight) {
        if (!future.get().ok()) {
          throw std::runtime_error("saturation run rejected a request");
        }
      }
    });
    server.shutdown();
  }
  const double ratio = direct_qps > 0.0 ? server_qps / direct_qps : 0.0;

  // 3. Overload: 2x oversubmission against a queue sized for half the
  // burst. The bounded queue must shed the excess as typed rejections and
  // never grow past its capacity.
  serve::ServerConfig overload_config = server_config;
  overload_config.batcher.queue_capacity = batch;
  overload_config.batcher.max_batch = 64;
  std::size_t overload_ok = 0;
  std::size_t overload_shed = 0;
  std::size_t peak_depth = 0;
  {
    serve::InferenceServer server(registry, overload_config);
    std::vector<std::future<serve::Response>> inflight;
    inflight.reserve(2 * batch);
    for (std::size_t q = 0; q < 2 * batch; ++q) {
      const auto features = queries.sample(q % batch);
      inflight.push_back(server.submit({features.begin(), features.end()}));
    }
    for (auto& future : inflight) {
      const serve::Response response = future.get();
      if (response.ok()) {
        ++overload_ok;
      } else if (response.error == serve::Reject::kQueueFull) {
        ++overload_shed;
      } else {
        std::fprintf(stderr, "unexpected rejection: %s\n",
                     serve::reject_name(response.error));
        return 1;
      }
    }
    peak_depth = server.peak_queue_depth();
    server.shutdown();
  }

  std::printf("direct batch-%zu:      %.0f qps\n", batch, direct_qps);
  std::printf("server saturated:     %.0f qps (%.1f%% of direct)\n",
              server_qps, ratio * 100.0);
  std::printf("overload 2x burst:    ok=%zu shed=%zu peak_depth=%zu "
              "(capacity %zu)\n",
              overload_ok, overload_shed, peak_depth,
              overload_config.batcher.queue_capacity);

  bool failed = false;
  if (peak_depth > overload_config.batcher.queue_capacity) {
    std::fprintf(stderr, "FAIL: queue grew past its capacity\n");
    failed = true;
  }
  if (overload_shed == 0) {
    std::fprintf(stderr, "FAIL: 2x overload shed nothing\n");
    failed = true;
  }
  if (overload_ok + overload_shed != 2 * batch) {
    std::fprintf(stderr, "FAIL: responses lost under overload\n");
    failed = true;
  }

  obs::set_enabled(true);
  auto& registry_obs = obs::Registry::global();
  registry_obs.gauge("bench.serving.direct_qps").set(direct_qps);
  registry_obs.gauge("bench.serving.server_qps").set(server_qps);
  registry_obs.gauge("bench.serving.saturation_ratio").set(ratio);
  registry_obs.gauge("bench.serving.overload_ok")
      .set(static_cast<double>(overload_ok));
  registry_obs.gauge("bench.serving.overload_shed")
      .set(static_cast<double>(overload_shed));
  registry_obs.gauge("bench.serving.overload_peak_depth")
      .set(static_cast<double>(peak_depth));

  obs::Json context = obs::Json::object();
  context.set("bench", "serving_throughput");
  context.set("batch", batch);
  context.set("dim", config.dim);
  context.set("queue_capacity", overload_config.batcher.queue_capacity);
  context.set("pool_workers", util::ThreadPool::global().worker_count());

  const std::string& out_path = flags.get_string("out");
  obs::write_metrics_json(out_path, registry_obs, std::move(context));
  std::printf("wrote %s\n", out_path.c_str());
  return failed ? 1 : 0;
}
