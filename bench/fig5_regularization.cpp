// Fig. 5 harness: LeHDC train/test accuracy per epoch on the CIFAR-10
// profile under the four regularization settings — {neither, weight decay
// only, dropout only, both}.
//
// The paper's observations to reproduce: adding weight decay + dropout gives
// the highest *test* accuracy while *lowering* training accuracy (the
// over-fitting gap closes).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/lehdc_trainer.hpp"
#include "data/profiles.hpp"
#include "eval/presets.hpp"
#include "eval/report.hpp"
#include "hdc/encoded_dataset.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace lehdc;

  util::FlagParser flags(
      "fig5_regularization",
      "Regenerates Fig. 5: LeHDC training/testing accuracy along epochs on "
      "CIFAR-10 with/without weight decay and dropout.");
  flags.add_int("dim", 2000, "hypervector dimension D");
  flags.add_double("scale", 0.04, "fraction of paper-scale sample counts");
  flags.add_int("epochs", 40, "training epochs to record");
  flags.add_int("seed", 7, "master seed");
  flags.add_string("dataset", "cifar-10", "benchmark profile");
  flags.add_string("csv", "fig5_regularization.csv",
                   "output CSV ('' disables)");
  flags.add_int("stride", 2, "print every n-th epoch");
  flags.add_double("wd", 0.003,
                   "weight decay for the wd variants; the Table 2 value "
                   "(0.03) is tuned for paper scale — at the scaled-down "
                   "default run a lighter decay matches the paper's "
                   "qualitative effect (0 keeps the preset)");
  flags.add_double("dropout", 0.0, "override dropout rate (0 keeps preset)");
  flags.add_flag("full", "paper scale (D=10000, all samples, 200 epochs)");
  flags.parse(argc, argv);

  const bool full = flags.get_flag("full");
  const std::size_t dim =
      full ? 10000 : static_cast<std::size_t>(flags.get_int("dim"));
  const double sample_scale = full ? 1.0 : flags.get_double("scale");

  const auto profile =
      data::scaled(data::profile_by_name(flags.get_string("dataset")),
                   sample_scale);
  util::log_info("generating " + profile.name + ": " +
                 std::to_string(profile.config.train_count) + " train / " +
                 std::to_string(profile.config.test_count) + " test");
  const data::TrainTestSplit split = generate_synthetic(profile.config);

  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = dim;
  encoder_cfg.feature_count = split.train.feature_count();
  encoder_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const hdc::RecordEncoder encoder(encoder_cfg);
  const auto encoded_train = hdc::encode_dataset(encoder, split.train);
  const auto encoded_test = hdc::encode_dataset(encoder, split.test);

  core::LeHdcConfig base = eval::lehdc_preset(profile.id);
  if (!full) {
    base.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
    base.batch_size = 64;
    base.learning_rate = 0.01f;
  }
  // Random initialization isolates the regularizers' effect (the Eq. 2
  // warm start is itself a strong implicit regularizer that masks them).
  base.init = core::LeHdcConfig::Init::kRandom;
  if (!full && flags.get_double("wd") > 0.0) {
    base.weight_decay = static_cast<float>(flags.get_double("wd"));
  }
  if (flags.get_double("dropout") > 0.0) {
    base.dropout_rate = static_cast<float>(flags.get_double("dropout"));
  }

  struct Variant {
    const char* name;
    bool weight_decay;
    bool dropout;
  };
  const std::vector<Variant> variants{
      {"none", false, false},
      {"wd", true, false},
      {"dropout", false, true},
      {"wd+dropout", true, true},
  };

  std::vector<eval::Series> series;
  std::printf("Fig. 5: LeHDC regularization ablation on %s (D=%zu, "
              "%zu epochs)\n\n",
              profile.name.c_str(), dim, base.epochs);
  for (const auto& variant : variants) {
    core::LeHdcConfig cfg = base;
    if (!variant.weight_decay) {
      cfg.weight_decay = 0.0f;
    }
    if (!variant.dropout) {
      cfg.dropout_rate = 0.0f;
    }
    util::log_info(std::string("training variant: ") + variant.name);
    const core::LeHdcTrainer trainer(cfg);
    train::TrainOptions options;
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    options.test = &encoded_test;
    options.epoch_observer = train::record_trajectory();
    auto result = trainer.train(encoded_train, options);
    series.push_back({variant.name, std::move(result.trajectory)});
  }

  eval::print_series(std::cout, series,
                     static_cast<std::size_t>(flags.get_int("stride")));

  std::printf("\nfinal epoch summary:\n");
  for (const auto& s : series) {
    const auto& last = s.points.back();
    std::printf("  %-11s train %.2f%%  test %.2f%%  (gap %+.2f)\n",
                s.name.c_str(), last.train_accuracy * 100.0,
                last.test_accuracy * 100.0,
                (last.train_accuracy - last.test_accuracy) * 100.0);
  }

  if (const auto& csv = flags.get_string("csv"); !csv.empty()) {
    eval::write_series_csv(csv, series);
    std::printf("series written to %s\n", csv.c_str());
  }
  return 0;
}
