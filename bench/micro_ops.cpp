// Micro benchmarks (google-benchmark) for the primitive operations every
// experiment rests on: binding (XOR), Hamming similarity (popcount),
// bit-sliced vs naive majority bundling, record encoding, single-query
// inference, and one LeHDC optimizer step.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/lehdc_trainer.hpp"
#include "hdc/batch_scorer.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hdc/encoder.hpp"
#include "hv/bitslice.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace lehdc;

void BM_BindXor(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  hv::BitVector a = hv::BitVector::random(dim, rng);
  const hv::BitVector b = hv::BitVector::random(dim, rng);
  for (auto _ : state) {
    a.bind_inplace(b);
    benchmark::DoNotOptimize(a.words().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(dim));
}
BENCHMARK(BM_BindXor)->Arg(2000)->Arg(10000);

void BM_HammingPopcount(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const hv::BitVector a = hv::BitVector::random(dim, rng);
  const hv::BitVector b = hv::BitVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv::BitVector::hamming(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(dim));
}
BENCHMARK(BM_HammingPopcount)->Arg(2000)->Arg(10000);

void BM_BundleBitSliced(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const std::size_t count = 784;
  util::Rng rng(1);
  std::vector<hv::BitVector> hvs;
  for (std::size_t i = 0; i < count; ++i) {
    hvs.push_back(hv::BitVector::random(dim, rng));
  }
  const hv::BitVector tie_break = hv::BitVector::random(dim, rng);
  for (auto _ : state) {
    hv::BitSliceAccumulator acc(dim);
    for (const auto& hv : hvs) {
      acc.add(hv);
    }
    benchmark::DoNotOptimize(acc.majority(tie_break));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(dim * count));
}
BENCHMARK(BM_BundleBitSliced)->Arg(2000)->Arg(10000);

void BM_BundleNaiveCounters(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const std::size_t count = 784;
  util::Rng rng(1);
  std::vector<hv::BitVector> hvs;
  for (std::size_t i = 0; i < count; ++i) {
    hvs.push_back(hv::BitVector::random(dim, rng));
  }
  const hv::BitVector tie_break = hv::BitVector::random(dim, rng);
  for (auto _ : state) {
    hv::IntVector acc(dim);
    for (const auto& hv : hvs) {
      acc.add(hv);
    }
    benchmark::DoNotOptimize(acc.sign(tie_break));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(dim * count));
}
BENCHMARK(BM_BundleNaiveCounters)->Arg(2000)->Arg(10000);

void BM_RecordEncode(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::RecordEncoderConfig cfg;
  cfg.dim = dim;
  cfg.feature_count = 784;
  cfg.seed = 1;
  const hdc::RecordEncoder encoder(cfg);
  util::Rng rng(2);
  std::vector<float> sample(cfg.feature_count);
  for (auto& v : sample) {
    v = rng.next_float();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(sample));
  }
}
BENCHMARK(BM_RecordEncode)->Arg(2000)->Arg(10000);

void BM_InferencePerSampleLoop(benchmark::State& state) {
  // The seed inference path: per-query argmin over scalar hamming
  // (classifier.predict now routes through the batched kernels, so the old
  // loop is spelled out). The batch-1024 contrast with BM_InferenceBatch
  // below is the PR 2 speedup.
  const std::size_t dim = 10000;
  const std::size_t classes = 10;
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<hv::BitVector> class_hvs;
  for (std::size_t k = 0; k < classes; ++k) {
    class_hvs.push_back(hv::BitVector::random(dim, rng));
  }
  const hdc::BinaryClassifier classifier(std::move(class_hvs));
  std::vector<hv::BitVector> queries;
  for (std::size_t q = 0; q < batch; ++q) {
    queries.push_back(hv::BitVector::random(dim, rng));
  }
  std::vector<int> out(batch);
  for (auto _ : state) {
    for (std::size_t q = 0; q < batch; ++q) {
      int best = 0;
      std::size_t best_distance =
          hv::BitVector::hamming(queries[q], classifier.class_hypervector(0));
      for (std::size_t k = 1; k < classes; ++k) {
        const std::size_t distance = hv::BitVector::hamming(
            queries[q], classifier.class_hypervector(k));
        if (distance < best_distance) {
          best_distance = distance;
          best = static_cast<int>(k);
        }
      }
      out[q] = best;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}
BENCHMARK(BM_InferencePerSampleLoop)->Arg(1)->Arg(64)->Arg(1024);

void BM_InferenceBatch(benchmark::State& state) {
  // Batched scoring through BatchScorer on a single-thread pool: the
  // speedup over BM_InferencePerSampleLoop is pure kernel + scratch reuse.
  const std::size_t dim = 10000;
  const std::size_t classes = 10;
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<hv::BitVector> class_hvs;
  for (std::size_t k = 0; k < classes; ++k) {
    class_hvs.push_back(hv::BitVector::random(dim, rng));
  }
  const hdc::BinaryClassifier classifier(std::move(class_hvs));
  std::vector<hv::BitVector> queries;
  for (std::size_t q = 0; q < batch; ++q) {
    queries.push_back(hv::BitVector::random(dim, rng));
  }
  util::ThreadPool single(1);
  const hdc::BatchScorer scorer(classifier, &single);
  std::vector<int> out(batch);
  for (auto _ : state) {
    scorer.predict_batch(queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}
BENCHMARK(BM_InferenceBatch)->Arg(1)->Arg(64)->Arg(1024);

void BM_InferenceQuery(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const std::size_t classes = 10;
  util::Rng rng(1);
  std::vector<hv::BitVector> class_hvs;
  for (std::size_t k = 0; k < classes; ++k) {
    class_hvs.push_back(hv::BitVector::random(dim, rng));
  }
  const hdc::BinaryClassifier classifier(std::move(class_hvs));
  const hv::BitVector query = hv::BitVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.predict(query));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(dim * classes));
}
BENCHMARK(BM_InferenceQuery)->Arg(2000)->Arg(10000);

void BM_SoftmaxXentBackward(benchmark::State& state) {
  const std::size_t batch = 64;
  const std::size_t classes = 10;
  util::Rng rng(1);
  nn::Matrix logits(batch, classes);
  logits.fill_gaussian(rng, 2.0f);
  nn::Matrix grad(batch, classes);
  std::vector<int> labels(batch);
  for (auto& label : labels) {
    label = static_cast<int>(rng.next_below(classes));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::softmax_xent_backward(logits, labels, grad));
  }
}
BENCHMARK(BM_SoftmaxXentBackward);

void BM_LeHdcEpoch(benchmark::State& state) {
  // One full LeHDC training epoch on a small encoded dataset: the cost unit
  // the Table 2 epoch counts multiply.
  const auto dim = static_cast<std::size_t>(state.range(0));
  const std::size_t samples = 256;
  const std::size_t classes = 10;
  util::Rng rng(1);
  hdc::EncodedDataset dataset(dim, classes);
  for (std::size_t i = 0; i < samples; ++i) {
    dataset.add(hv::BitVector::random(dim, rng),
                static_cast<int>(i % classes));
  }
  core::LeHdcConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 64;
  const core::LeHdcTrainer trainer(cfg);
  train::TrainOptions options;
  options.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(dataset, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(samples * dim * classes));
}
BENCHMARK(BM_LeHdcEpoch)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
