// Batched-inference throughput baseline (PR 2).
//
// Measures queries/sec for the associative-memory lookup at batch sizes
// 1 / 64 / 1024 (D = 10,000, K = 10 by default) in three modes:
//   per_sample        — the seed path: per-query argmin over scalar
//                       BitVector::hamming (classifier.predict now routes
//                       through the batched kernels, so the seed loop is
//                       reconstructed explicitly to keep the baseline honest)
//   batch_1_thread    — BatchScorer on a single-thread pool (kernel win)
//   batch_all_threads — BatchScorer on the global pool (kernel + threads)
// and writes the machine-readable trajectory point BENCH_inference.json
// (a lehdc.metrics.v1 snapshot) so future PRs can track serving throughput
// against this baseline. Also measures the observability overhead: the
// batch_all_threads/1024 workload re-runs with metrics collection enabled,
// and the slowdown must stay within the ≤2% budget (DESIGN.md §5d).
//
// The encode-path phase (PR 8) measures raw-sample prediction end to end —
// encode + score — on both item-memory paths (materialized streaming vs
// rematerialized regeneration, DESIGN.md §5i), reports samples/sec and
// item-memory bytes/sample for each, and asserts the two paths predict
// bit-identically ("encode parity: ok"; a mismatch exits non-zero, and CI
// greps for the parity line).
#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "hdc/batch_scorer.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/query_batch.hpp"
#include "hv/batch_score.hpp"
#include "hv/bitvector.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lehdc;

struct Measurement {
  std::string mode;
  std::size_t batch = 0;
  double queries_per_second = 0.0;
};

/// Runs fn (which scores `batch` queries) until min_seconds of wall time
/// accumulate and returns the aggregate queries/sec.
template <typename Fn>
double measure_qps(std::size_t batch, double min_seconds, Fn&& fn) {
  // Warm-up pass so lazily created pools/scratch don't bill the first run.
  fn();
  const util::Stopwatch timer;
  std::size_t runs = 0;
  do {
    fn();
    ++runs;
  } while (timer.elapsed_seconds() < min_seconds);
  return static_cast<double>(runs * batch) / timer.elapsed_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags("inference_throughput",
                         "Batched vs per-sample inference throughput; emits "
                         "BENCH_inference.json.");
  flags.add_int("dim", 10000, "hypervector dimension D");
  flags.add_int("classes", 10, "number of classes K");
  flags.add_int("features", 784, "raw feature count N for the encode phase");
  flags.add_int("threads", 0,
                "global pool workers (0 = LEHDC_THREADS, then hardware)");
  flags.add_int("seed", 1, "rng seed");
  flags.add_double("min-seconds", 0.3, "minimum wall time per measurement");
  flags.add_string("out", "BENCH_inference.json", "JSON output path");
  flags.parse(argc, argv);

  if (const auto threads = flags.get_int("threads"); threads > 0) {
    util::ThreadPool::configure_global(static_cast<std::size_t>(threads));
  }
  const auto dim = static_cast<std::size_t>(flags.get_int("dim"));
  const auto classes = static_cast<std::size_t>(flags.get_int("classes"));
  const double min_seconds = flags.get_double("min-seconds");

  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<hv::BitVector> class_hvs;
  for (std::size_t k = 0; k < classes; ++k) {
    class_hvs.push_back(hv::BitVector::random(dim, rng));
  }
  const hdc::BinaryClassifier classifier(std::move(class_hvs));

  // The seed per-sample predict: scan classes with the scalar word-wise
  // popcount distance, keep the argmin (ties to the lowest class id).
  const auto seed_predict = [&](const hv::BitVector& query) {
    int best = 0;
    std::size_t best_distance =
        hv::BitVector::hamming(query, classifier.class_hypervector(0));
    for (std::size_t k = 1; k < classifier.class_count(); ++k) {
      const std::size_t distance =
          hv::BitVector::hamming(query, classifier.class_hypervector(k));
      if (distance < best_distance) {
        best_distance = distance;
        best = static_cast<int>(k);
      }
    }
    return best;
  };

  const std::vector<std::size_t> batches = {1, 64, 1024};
  std::vector<hv::BitVector> queries;
  for (std::size_t q = 0; q < batches.back(); ++q) {
    queries.push_back(hv::BitVector::random(dim, rng));
  }

  util::ThreadPool single(1);
  const hdc::BatchScorer scorer_1t(classifier, &single);
  const hdc::BatchScorer scorer_nt(classifier);
  std::vector<int> out(batches.back());

  std::vector<Measurement> results;
  for (const std::size_t batch : batches) {
    const auto query_span =
        std::span<const hv::BitVector>(queries).first(batch);
    const auto out_span = std::span<int>(out).first(batch);
    results.push_back(
        {"per_sample", batch, measure_qps(batch, min_seconds, [&] {
           for (std::size_t q = 0; q < batch; ++q) {
             out[q] = seed_predict(queries[q]);
           }
         })});
    results.push_back(
        {"batch_1_thread", batch, measure_qps(batch, min_seconds, [&] {
           scorer_1t.predict_batch(query_span, out_span);
         })});
    results.push_back(
        {"batch_all_threads", batch, measure_qps(batch, min_seconds, [&] {
           scorer_nt.predict_batch(query_span, out_span);
         })});
  }

  double per_sample_1024 = 0.0;
  double batch_1t_1024 = 0.0;
  util::TextTable table({"Mode", "Batch", "Queries/sec"});
  for (const auto& m : results) {
    char qps[32];
    std::snprintf(qps, sizeof qps, "%.0f", m.queries_per_second);
    table.add_row({m.mode, std::to_string(m.batch), qps});
    if (m.batch == 1024 && m.mode == "per_sample") {
      per_sample_1024 = m.queries_per_second;
    }
    if (m.batch == 1024 && m.mode == "batch_1_thread") {
      batch_1t_1024 = m.queries_per_second;
    }
  }
  table.print(std::cout);
  const double speedup =
      per_sample_1024 > 0.0 ? batch_1t_1024 / per_sample_1024 : 0.0;
  std::printf("\nkernel: %s\n", hv::score_kernel_name());
  std::printf("single-thread batch-1024 speedup vs per-sample: %.2fx\n",
              speedup);

  // Observability overhead: the same multi-threaded batch-1024 workload,
  // metrics off then on, back to back. The on-path pays one relaxed load
  // per record site plus a couple of clock reads per scored chunk; the
  // budget is ≤2% (DESIGN.md §5d).
  const auto full_span = std::span<const hv::BitVector>(queries);
  const auto full_out = std::span<int>(out);
  const auto overhead_workload = [&] {
    scorer_nt.predict_batch(full_span, full_out);
  };
  const double qps_metrics_off =
      measure_qps(batches.back(), min_seconds, overhead_workload);
  obs::set_enabled(true);
  const double qps_metrics_on =
      measure_qps(batches.back(), min_seconds, overhead_workload);
  const double overhead_percent =
      qps_metrics_off > 0.0
          ? (1.0 - qps_metrics_on / qps_metrics_off) * 100.0
          : 0.0;
  std::printf("metrics-enabled overhead at batch 1024: %.2f%% "
              "(%.0f -> %.0f qps)\n",
              overhead_percent, qps_metrics_off, qps_metrics_on);

  // Encode-path phase: raw samples through the unified predict_queries
  // surface, once per item-memory path. Same samples, same classifier —
  // only the item-memory traffic differs, so the predictions must match
  // bit for bit (the parity gate CI enforces).
  const auto features = static_cast<std::size_t>(flags.get_int("features"));
  hdc::RecordEncoderConfig encoder_config;
  encoder_config.dim = dim;
  encoder_config.feature_count = features;
  encoder_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const hdc::RecordEncoder encoder(encoder_config);
  data::Dataset raw(features, classes);
  {
    std::vector<float> row(features);
    for (std::size_t i = 0; i < batches.back(); ++i) {
      for (float& v : row) {
        v = rng.next_float();
      }
      raw.add_sample(row, static_cast<int>(i % classes));
    }
  }
  struct EncodePathResult {
    const char* mode;
    hdc::EncodePath path;
    double samples_per_second = 0.0;
    double bytes_per_sample = 0.0;
    std::vector<int> predictions;
  };
  EncodePathResult encode_results[] = {
      {"materialized", hdc::EncodePath::kMaterialized},
      {"rematerialized", hdc::EncodePath::kRematerialized},
  };
  for (auto& r : encode_results) {
    const hdc::QueryBatch batch(raw, encoder, r.path);
    r.predictions.assign(raw.size(), -1);
    hdc::PredictStats stats;
    scorer_nt.predict_queries(batch, r.predictions, &stats);
    r.bytes_per_sample = static_cast<double>(stats.encode_bytes) /
                         static_cast<double>(stats.samples);
    r.samples_per_second = measure_qps(raw.size(), min_seconds, [&] {
      scorer_nt.predict_queries(batch, r.predictions);
    });
  }
  util::TextTable encode_table({"Encode path", "Samples/sec", "Bytes/sample"});
  for (const auto& r : encode_results) {
    char sps[32];
    char bps[32];
    std::snprintf(sps, sizeof sps, "%.0f", r.samples_per_second);
    std::snprintf(bps, sizeof bps, "%.0f", r.bytes_per_sample);
    encode_table.add_row({r.mode, sps, bps});
  }
  std::printf("\n");
  encode_table.print(std::cout);
  if (encode_results[0].predictions != encode_results[1].predictions) {
    std::fprintf(stderr,
                 "encode parity: MISMATCH (materialized and rematerialized "
                 "paths disagree)\n");
    return 1;
  }
  std::printf("encode parity: ok\n");

  // Re-emit every number through the registry so the snapshot is the one
  // schema CI validates (collection is already enabled at this point).
  auto& registry = obs::Registry::global();
  for (const auto& r : encode_results) {
    registry
        .gauge(std::string("bench.inference.encode.") + r.mode +
               "_samples_per_sec")
        .set(r.samples_per_second);
    registry
        .gauge(std::string("bench.inference.encode.") + r.mode +
               "_bytes_per_sample")
        .set(r.bytes_per_sample);
  }
  for (const auto& m : results) {
    registry
        .gauge("bench.inference." + m.mode + ".b" + std::to_string(m.batch) +
               "_qps")
        .set(m.queries_per_second);
  }
  registry.gauge("bench.inference.speedup_b1024_single_thread").set(speedup);
  registry.gauge("bench.inference.metrics_overhead_percent")
      .set(overhead_percent);
  registry.gauge("bench.inference.metrics_off_b1024_qps")
      .set(qps_metrics_off);
  registry.gauge("bench.inference.metrics_on_b1024_qps").set(qps_metrics_on);

  obs::Json context = obs::Json::object();
  context.set("bench", "inference_throughput");
  context.set("dim", dim);
  context.set("classes", classes);
  context.set("kernel", hv::score_kernel_name());
  context.set("pool_workers", util::ThreadPool::global().worker_count());

  const std::string& out_path = flags.get_string("out");
  obs::write_metrics_json(out_path, registry, std::move(context));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
