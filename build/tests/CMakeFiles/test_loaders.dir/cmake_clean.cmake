file(REMOVE_RECURSE
  "CMakeFiles/test_loaders.dir/test_loaders.cpp.o"
  "CMakeFiles/test_loaders.dir/test_loaders.cpp.o.d"
  "test_loaders"
  "test_loaders.pdb"
  "test_loaders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
