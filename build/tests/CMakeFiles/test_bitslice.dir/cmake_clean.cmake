file(REMOVE_RECURSE
  "CMakeFiles/test_bitslice.dir/test_bitslice.cpp.o"
  "CMakeFiles/test_bitslice.dir/test_bitslice.cpp.o.d"
  "test_bitslice"
  "test_bitslice.pdb"
  "test_bitslice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
