# Empty compiler generated dependencies file for test_bitslice.
# This may be replaced when dependencies are built.
