# Empty compiler generated dependencies file for test_ternary_deep.
# This may be replaced when dependencies are built.
