file(REMOVE_RECURSE
  "CMakeFiles/test_ternary_deep.dir/test_ternary_deep.cpp.o"
  "CMakeFiles/test_ternary_deep.dir/test_ternary_deep.cpp.o.d"
  "test_ternary_deep"
  "test_ternary_deep.pdb"
  "test_ternary_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ternary_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
