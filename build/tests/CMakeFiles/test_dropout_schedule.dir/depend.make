# Empty dependencies file for test_dropout_schedule.
# This may be replaced when dependencies are built.
