file(REMOVE_RECURSE
  "CMakeFiles/test_dropout_schedule.dir/test_dropout_schedule.cpp.o"
  "CMakeFiles/test_dropout_schedule.dir/test_dropout_schedule.cpp.o.d"
  "test_dropout_schedule"
  "test_dropout_schedule.pdb"
  "test_dropout_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dropout_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
