file(REMOVE_RECURSE
  "CMakeFiles/test_item_memory.dir/test_item_memory.cpp.o"
  "CMakeFiles/test_item_memory.dir/test_item_memory.cpp.o.d"
  "test_item_memory"
  "test_item_memory.pdb"
  "test_item_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_item_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
