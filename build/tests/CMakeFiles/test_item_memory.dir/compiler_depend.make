# Empty compiler generated dependencies file for test_item_memory.
# This may be replaced when dependencies are built.
