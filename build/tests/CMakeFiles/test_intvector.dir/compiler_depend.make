# Empty compiler generated dependencies file for test_intvector.
# This may be replaced when dependencies are built.
