file(REMOVE_RECURSE
  "CMakeFiles/test_intvector.dir/test_intvector.cpp.o"
  "CMakeFiles/test_intvector.dir/test_intvector.cpp.o.d"
  "test_intvector"
  "test_intvector.pdb"
  "test_intvector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
