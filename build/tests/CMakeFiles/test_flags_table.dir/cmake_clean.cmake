file(REMOVE_RECURSE
  "CMakeFiles/test_flags_table.dir/test_flags_table.cpp.o"
  "CMakeFiles/test_flags_table.dir/test_flags_table.cpp.o.d"
  "test_flags_table"
  "test_flags_table.pdb"
  "test_flags_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flags_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
