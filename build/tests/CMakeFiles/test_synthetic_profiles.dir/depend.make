# Empty dependencies file for test_synthetic_profiles.
# This may be replaced when dependencies are built.
