file(REMOVE_RECURSE
  "CMakeFiles/test_synthetic_profiles.dir/test_synthetic_profiles.cpp.o"
  "CMakeFiles/test_synthetic_profiles.dir/test_synthetic_profiles.cpp.o.d"
  "test_synthetic_profiles"
  "test_synthetic_profiles.pdb"
  "test_synthetic_profiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthetic_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
