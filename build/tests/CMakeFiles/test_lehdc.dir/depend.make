# Empty dependencies file for test_lehdc.
# This may be replaced when dependencies are built.
