file(REMOVE_RECURSE
  "CMakeFiles/test_lehdc.dir/test_lehdc.cpp.o"
  "CMakeFiles/test_lehdc.dir/test_lehdc.cpp.o.d"
  "test_lehdc"
  "test_lehdc.pdb"
  "test_lehdc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lehdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
