# Empty dependencies file for test_search_nonbinary.
# This may be replaced when dependencies are built.
