file(REMOVE_RECURSE
  "CMakeFiles/test_search_nonbinary.dir/test_search_nonbinary.cpp.o"
  "CMakeFiles/test_search_nonbinary.dir/test_search_nonbinary.cpp.o.d"
  "test_search_nonbinary"
  "test_search_nonbinary.pdb"
  "test_search_nonbinary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_nonbinary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
