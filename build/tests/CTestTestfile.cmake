# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_flags_table[1]_include.cmake")
include("/root/repo/build/tests/test_bitvector[1]_include.cmake")
include("/root/repo/build/tests/test_intvector[1]_include.cmake")
include("/root/repo/build/tests/test_bitslice[1]_include.cmake")
include("/root/repo/build/tests/test_generate[1]_include.cmake")
include("/root/repo/build/tests/test_item_memory[1]_include.cmake")
include("/root/repo/build/tests/test_encoder[1]_include.cmake")
include("/root/repo/build/tests/test_classifier[1]_include.cmake")
include("/root/repo/build/tests/test_model_io[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_loss[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_dropout_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_synthetic_profiles[1]_include.cmake")
include("/root/repo/build/tests/test_loaders[1]_include.cmake")
include("/root/repo/build/tests/test_trainers[1]_include.cmake")
include("/root/repo/build/tests/test_lehdc[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_search_nonbinary[1]_include.cmake")
include("/root/repo/build/tests/test_ternary_deep[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
