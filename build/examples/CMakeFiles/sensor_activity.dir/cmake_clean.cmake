file(REMOVE_RECURSE
  "CMakeFiles/sensor_activity.dir/sensor_activity.cpp.o"
  "CMakeFiles/sensor_activity.dir/sensor_activity.cpp.o.d"
  "sensor_activity"
  "sensor_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
