# Empty compiler generated dependencies file for sensor_activity.
# This may be replaced when dependencies are built.
