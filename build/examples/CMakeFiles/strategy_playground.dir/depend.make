# Empty dependencies file for strategy_playground.
# This may be replaced when dependencies are built.
