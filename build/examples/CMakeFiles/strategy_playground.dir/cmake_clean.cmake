file(REMOVE_RECURSE
  "CMakeFiles/strategy_playground.dir/strategy_playground.cpp.o"
  "CMakeFiles/strategy_playground.dir/strategy_playground.cpp.o.d"
  "strategy_playground"
  "strategy_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
