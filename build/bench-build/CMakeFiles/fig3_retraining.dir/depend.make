# Empty dependencies file for fig3_retraining.
# This may be replaced when dependencies are built.
