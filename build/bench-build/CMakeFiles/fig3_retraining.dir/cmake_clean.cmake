file(REMOVE_RECURSE
  "../bench/fig3_retraining"
  "../bench/fig3_retraining.pdb"
  "CMakeFiles/fig3_retraining.dir/fig3_retraining.cpp.o"
  "CMakeFiles/fig3_retraining.dir/fig3_retraining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
