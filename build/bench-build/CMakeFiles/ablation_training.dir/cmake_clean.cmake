file(REMOVE_RECURSE
  "../bench/ablation_training"
  "../bench/ablation_training.pdb"
  "CMakeFiles/ablation_training.dir/ablation_training.cpp.o"
  "CMakeFiles/ablation_training.dir/ablation_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
