file(REMOVE_RECURSE
  "../bench/resource_model"
  "../bench/resource_model.pdb"
  "CMakeFiles/resource_model.dir/resource_model.cpp.o"
  "CMakeFiles/resource_model.dir/resource_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
