# Empty compiler generated dependencies file for resource_model.
# This may be replaced when dependencies are built.
