file(REMOVE_RECURSE
  "../bench/fig5_regularization"
  "../bench/fig5_regularization.pdb"
  "CMakeFiles/fig5_regularization.dir/fig5_regularization.cpp.o"
  "CMakeFiles/fig5_regularization.dir/fig5_regularization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
