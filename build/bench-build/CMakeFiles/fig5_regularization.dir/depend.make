# Empty dependencies file for fig5_regularization.
# This may be replaced when dependencies are built.
