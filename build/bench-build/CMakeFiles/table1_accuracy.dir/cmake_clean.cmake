file(REMOVE_RECURSE
  "../bench/table1_accuracy"
  "../bench/table1_accuracy.pdb"
  "CMakeFiles/table1_accuracy.dir/table1_accuracy.cpp.o"
  "CMakeFiles/table1_accuracy.dir/table1_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
