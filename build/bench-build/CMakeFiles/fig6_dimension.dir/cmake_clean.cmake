file(REMOVE_RECURSE
  "../bench/fig6_dimension"
  "../bench/fig6_dimension.pdb"
  "CMakeFiles/fig6_dimension.dir/fig6_dimension.cpp.o"
  "CMakeFiles/fig6_dimension.dir/fig6_dimension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
