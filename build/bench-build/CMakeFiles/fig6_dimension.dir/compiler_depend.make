# Empty compiler generated dependencies file for fig6_dimension.
# This may be replaced when dependencies are built.
