file(REMOVE_RECURSE
  "CMakeFiles/lehdc_cli.dir/lehdc_cli.cpp.o"
  "CMakeFiles/lehdc_cli.dir/lehdc_cli.cpp.o.d"
  "lehdc_cli"
  "lehdc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
