# Empty compiler generated dependencies file for lehdc_cli.
# This may be replaced when dependencies are built.
