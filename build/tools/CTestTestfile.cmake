# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_train]=] "/root/repo/build/tools/lehdc_cli" "train" "--data" "synth:pamap" "--dim" "500" "--epochs" "5" "--scale" "0.02" "--seed" "3" "--model" "cli_smoke.lhdp")
set_tests_properties([=[cli_train]=] PROPERTIES  FIXTURES_SETUP "cli_model" WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_info]=] "/root/repo/build/tools/lehdc_cli" "info" "--model" "cli_smoke.lhdp")
set_tests_properties([=[cli_info]=] PROPERTIES  FIXTURES_REQUIRED "cli_model" PASS_REGULAR_EXPRESSION "strategy:  LeHDC" WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_evaluate]=] "/root/repo/build/tools/lehdc_cli" "evaluate" "--model" "cli_smoke.lhdp" "--data" "synth:pamap" "--scale" "0.02" "--seed" "4")
set_tests_properties([=[cli_evaluate]=] PROPERTIES  FIXTURES_REQUIRED "cli_model" WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_rejects_unknown_command]=] "/root/repo/build/tools/lehdc_cli" "frobnicate")
set_tests_properties([=[cli_rejects_unknown_command]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_rejects_bad_data_spec]=] "/root/repo/build/tools/lehdc_cli" "train" "--data" "nonsense")
set_tests_properties([=[cli_rejects_bad_data_spec]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
