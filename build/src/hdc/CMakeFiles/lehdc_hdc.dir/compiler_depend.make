# Empty compiler generated dependencies file for lehdc_hdc.
# This may be replaced when dependencies are built.
