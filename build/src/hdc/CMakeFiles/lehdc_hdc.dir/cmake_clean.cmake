file(REMOVE_RECURSE
  "CMakeFiles/lehdc_hdc.dir/classifier.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/classifier.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/dataset_io.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/dataset_io.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/encoded_dataset.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/encoded_dataset.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/encoder.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/encoder.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/item_memory.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/item_memory.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/model_io.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/model_io.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/nonbinary_encoding.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/nonbinary_encoding.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/projection_encoder.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/projection_encoder.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/search.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/search.cpp.o.d"
  "CMakeFiles/lehdc_hdc.dir/ternary.cpp.o"
  "CMakeFiles/lehdc_hdc.dir/ternary.cpp.o.d"
  "liblehdc_hdc.a"
  "liblehdc_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
