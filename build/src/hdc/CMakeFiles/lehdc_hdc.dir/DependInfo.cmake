
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdc/classifier.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/classifier.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/classifier.cpp.o.d"
  "/root/repo/src/hdc/dataset_io.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/dataset_io.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/dataset_io.cpp.o.d"
  "/root/repo/src/hdc/encoded_dataset.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/encoded_dataset.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/encoded_dataset.cpp.o.d"
  "/root/repo/src/hdc/encoder.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/encoder.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/encoder.cpp.o.d"
  "/root/repo/src/hdc/item_memory.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/item_memory.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/item_memory.cpp.o.d"
  "/root/repo/src/hdc/model_io.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/model_io.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/model_io.cpp.o.d"
  "/root/repo/src/hdc/nonbinary_encoding.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/nonbinary_encoding.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/nonbinary_encoding.cpp.o.d"
  "/root/repo/src/hdc/projection_encoder.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/projection_encoder.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/projection_encoder.cpp.o.d"
  "/root/repo/src/hdc/search.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/search.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/search.cpp.o.d"
  "/root/repo/src/hdc/ternary.cpp" "src/hdc/CMakeFiles/lehdc_hdc.dir/ternary.cpp.o" "gcc" "src/hdc/CMakeFiles/lehdc_hdc.dir/ternary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/lehdc_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lehdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lehdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
