file(REMOVE_RECURSE
  "liblehdc_hdc.a"
)
