
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/binarize.cpp" "src/nn/CMakeFiles/lehdc_nn.dir/binarize.cpp.o" "gcc" "src/nn/CMakeFiles/lehdc_nn.dir/binarize.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/lehdc_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/lehdc_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/nn/CMakeFiles/lehdc_nn.dir/gradcheck.cpp.o" "gcc" "src/nn/CMakeFiles/lehdc_nn.dir/gradcheck.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/lehdc_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/lehdc_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/lehdc_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/lehdc_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/lehdc_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/lehdc_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/nn/CMakeFiles/lehdc_nn.dir/schedule.cpp.o" "gcc" "src/nn/CMakeFiles/lehdc_nn.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/lehdc_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lehdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
