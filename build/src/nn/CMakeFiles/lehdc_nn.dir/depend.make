# Empty dependencies file for lehdc_nn.
# This may be replaced when dependencies are built.
