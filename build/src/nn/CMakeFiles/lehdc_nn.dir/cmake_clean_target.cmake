file(REMOVE_RECURSE
  "liblehdc_nn.a"
)
