file(REMOVE_RECURSE
  "CMakeFiles/lehdc_nn.dir/binarize.cpp.o"
  "CMakeFiles/lehdc_nn.dir/binarize.cpp.o.d"
  "CMakeFiles/lehdc_nn.dir/dropout.cpp.o"
  "CMakeFiles/lehdc_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/lehdc_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/lehdc_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/lehdc_nn.dir/loss.cpp.o"
  "CMakeFiles/lehdc_nn.dir/loss.cpp.o.d"
  "CMakeFiles/lehdc_nn.dir/matrix.cpp.o"
  "CMakeFiles/lehdc_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/lehdc_nn.dir/optimizer.cpp.o"
  "CMakeFiles/lehdc_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/lehdc_nn.dir/schedule.cpp.o"
  "CMakeFiles/lehdc_nn.dir/schedule.cpp.o.d"
  "liblehdc_nn.a"
  "liblehdc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
