file(REMOVE_RECURSE
  "liblehdc_core.a"
)
