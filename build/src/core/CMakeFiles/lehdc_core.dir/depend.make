# Empty dependencies file for lehdc_core.
# This may be replaced when dependencies are built.
