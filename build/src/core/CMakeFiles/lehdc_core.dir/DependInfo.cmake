
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deep_lehdc.cpp" "src/core/CMakeFiles/lehdc_core.dir/deep_lehdc.cpp.o" "gcc" "src/core/CMakeFiles/lehdc_core.dir/deep_lehdc.cpp.o.d"
  "/root/repo/src/core/lehdc_trainer.cpp" "src/core/CMakeFiles/lehdc_core.dir/lehdc_trainer.cpp.o" "gcc" "src/core/CMakeFiles/lehdc_core.dir/lehdc_trainer.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/lehdc_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/lehdc_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/lehdc_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/lehdc_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/pipeline_io.cpp" "src/core/CMakeFiles/lehdc_core.dir/pipeline_io.cpp.o" "gcc" "src/core/CMakeFiles/lehdc_core.dir/pipeline_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/lehdc_train.dir/DependInfo.cmake"
  "/root/repo/build/src/hdc/CMakeFiles/lehdc_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lehdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lehdc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/lehdc_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lehdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
