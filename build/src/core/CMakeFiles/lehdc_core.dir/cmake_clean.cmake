file(REMOVE_RECURSE
  "CMakeFiles/lehdc_core.dir/deep_lehdc.cpp.o"
  "CMakeFiles/lehdc_core.dir/deep_lehdc.cpp.o.d"
  "CMakeFiles/lehdc_core.dir/lehdc_trainer.cpp.o"
  "CMakeFiles/lehdc_core.dir/lehdc_trainer.cpp.o.d"
  "CMakeFiles/lehdc_core.dir/online.cpp.o"
  "CMakeFiles/lehdc_core.dir/online.cpp.o.d"
  "CMakeFiles/lehdc_core.dir/pipeline.cpp.o"
  "CMakeFiles/lehdc_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/lehdc_core.dir/pipeline_io.cpp.o"
  "CMakeFiles/lehdc_core.dir/pipeline_io.cpp.o.d"
  "liblehdc_core.a"
  "liblehdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
