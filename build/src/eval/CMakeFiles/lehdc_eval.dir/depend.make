# Empty dependencies file for lehdc_eval.
# This may be replaced when dependencies are built.
