file(REMOVE_RECURSE
  "CMakeFiles/lehdc_eval.dir/experiment.cpp.o"
  "CMakeFiles/lehdc_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/lehdc_eval.dir/hardware_model.cpp.o"
  "CMakeFiles/lehdc_eval.dir/hardware_model.cpp.o.d"
  "CMakeFiles/lehdc_eval.dir/metrics.cpp.o"
  "CMakeFiles/lehdc_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/lehdc_eval.dir/presets.cpp.o"
  "CMakeFiles/lehdc_eval.dir/presets.cpp.o.d"
  "CMakeFiles/lehdc_eval.dir/report.cpp.o"
  "CMakeFiles/lehdc_eval.dir/report.cpp.o.d"
  "CMakeFiles/lehdc_eval.dir/resource.cpp.o"
  "CMakeFiles/lehdc_eval.dir/resource.cpp.o.d"
  "liblehdc_eval.a"
  "liblehdc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
