file(REMOVE_RECURSE
  "liblehdc_eval.a"
)
