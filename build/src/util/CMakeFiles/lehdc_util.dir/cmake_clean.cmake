file(REMOVE_RECURSE
  "CMakeFiles/lehdc_util.dir/check.cpp.o"
  "CMakeFiles/lehdc_util.dir/check.cpp.o.d"
  "CMakeFiles/lehdc_util.dir/flags.cpp.o"
  "CMakeFiles/lehdc_util.dir/flags.cpp.o.d"
  "CMakeFiles/lehdc_util.dir/log.cpp.o"
  "CMakeFiles/lehdc_util.dir/log.cpp.o.d"
  "CMakeFiles/lehdc_util.dir/rng.cpp.o"
  "CMakeFiles/lehdc_util.dir/rng.cpp.o.d"
  "CMakeFiles/lehdc_util.dir/stats.cpp.o"
  "CMakeFiles/lehdc_util.dir/stats.cpp.o.d"
  "CMakeFiles/lehdc_util.dir/table.cpp.o"
  "CMakeFiles/lehdc_util.dir/table.cpp.o.d"
  "CMakeFiles/lehdc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lehdc_util.dir/thread_pool.cpp.o.d"
  "liblehdc_util.a"
  "liblehdc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
