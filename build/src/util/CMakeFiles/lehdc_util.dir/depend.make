# Empty dependencies file for lehdc_util.
# This may be replaced when dependencies are built.
