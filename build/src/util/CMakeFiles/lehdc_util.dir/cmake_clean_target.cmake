file(REMOVE_RECURSE
  "liblehdc_util.a"
)
