
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/bitslice.cpp" "src/hv/CMakeFiles/lehdc_hv.dir/bitslice.cpp.o" "gcc" "src/hv/CMakeFiles/lehdc_hv.dir/bitslice.cpp.o.d"
  "/root/repo/src/hv/bitvector.cpp" "src/hv/CMakeFiles/lehdc_hv.dir/bitvector.cpp.o" "gcc" "src/hv/CMakeFiles/lehdc_hv.dir/bitvector.cpp.o.d"
  "/root/repo/src/hv/generate.cpp" "src/hv/CMakeFiles/lehdc_hv.dir/generate.cpp.o" "gcc" "src/hv/CMakeFiles/lehdc_hv.dir/generate.cpp.o.d"
  "/root/repo/src/hv/intvector.cpp" "src/hv/CMakeFiles/lehdc_hv.dir/intvector.cpp.o" "gcc" "src/hv/CMakeFiles/lehdc_hv.dir/intvector.cpp.o.d"
  "/root/repo/src/hv/similarity.cpp" "src/hv/CMakeFiles/lehdc_hv.dir/similarity.cpp.o" "gcc" "src/hv/CMakeFiles/lehdc_hv.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lehdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
