# Empty dependencies file for lehdc_hv.
# This may be replaced when dependencies are built.
