file(REMOVE_RECURSE
  "liblehdc_hv.a"
)
