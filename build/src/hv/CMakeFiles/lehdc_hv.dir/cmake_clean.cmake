file(REMOVE_RECURSE
  "CMakeFiles/lehdc_hv.dir/bitslice.cpp.o"
  "CMakeFiles/lehdc_hv.dir/bitslice.cpp.o.d"
  "CMakeFiles/lehdc_hv.dir/bitvector.cpp.o"
  "CMakeFiles/lehdc_hv.dir/bitvector.cpp.o.d"
  "CMakeFiles/lehdc_hv.dir/generate.cpp.o"
  "CMakeFiles/lehdc_hv.dir/generate.cpp.o.d"
  "CMakeFiles/lehdc_hv.dir/intvector.cpp.o"
  "CMakeFiles/lehdc_hv.dir/intvector.cpp.o.d"
  "CMakeFiles/lehdc_hv.dir/similarity.cpp.o"
  "CMakeFiles/lehdc_hv.dir/similarity.cpp.o.d"
  "liblehdc_hv.a"
  "liblehdc_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
