file(REMOVE_RECURSE
  "liblehdc_train.a"
)
