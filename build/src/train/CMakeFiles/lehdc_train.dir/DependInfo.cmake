
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/adapt.cpp" "src/train/CMakeFiles/lehdc_train.dir/adapt.cpp.o" "gcc" "src/train/CMakeFiles/lehdc_train.dir/adapt.cpp.o.d"
  "/root/repo/src/train/baseline.cpp" "src/train/CMakeFiles/lehdc_train.dir/baseline.cpp.o" "gcc" "src/train/CMakeFiles/lehdc_train.dir/baseline.cpp.o.d"
  "/root/repo/src/train/class_matrix.cpp" "src/train/CMakeFiles/lehdc_train.dir/class_matrix.cpp.o" "gcc" "src/train/CMakeFiles/lehdc_train.dir/class_matrix.cpp.o.d"
  "/root/repo/src/train/multimodel.cpp" "src/train/CMakeFiles/lehdc_train.dir/multimodel.cpp.o" "gcc" "src/train/CMakeFiles/lehdc_train.dir/multimodel.cpp.o.d"
  "/root/repo/src/train/nonbinary.cpp" "src/train/CMakeFiles/lehdc_train.dir/nonbinary.cpp.o" "gcc" "src/train/CMakeFiles/lehdc_train.dir/nonbinary.cpp.o.d"
  "/root/repo/src/train/retrain.cpp" "src/train/CMakeFiles/lehdc_train.dir/retrain.cpp.o" "gcc" "src/train/CMakeFiles/lehdc_train.dir/retrain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdc/CMakeFiles/lehdc_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lehdc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lehdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/lehdc_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lehdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
