file(REMOVE_RECURSE
  "CMakeFiles/lehdc_train.dir/adapt.cpp.o"
  "CMakeFiles/lehdc_train.dir/adapt.cpp.o.d"
  "CMakeFiles/lehdc_train.dir/baseline.cpp.o"
  "CMakeFiles/lehdc_train.dir/baseline.cpp.o.d"
  "CMakeFiles/lehdc_train.dir/class_matrix.cpp.o"
  "CMakeFiles/lehdc_train.dir/class_matrix.cpp.o.d"
  "CMakeFiles/lehdc_train.dir/multimodel.cpp.o"
  "CMakeFiles/lehdc_train.dir/multimodel.cpp.o.d"
  "CMakeFiles/lehdc_train.dir/nonbinary.cpp.o"
  "CMakeFiles/lehdc_train.dir/nonbinary.cpp.o.d"
  "CMakeFiles/lehdc_train.dir/retrain.cpp.o"
  "CMakeFiles/lehdc_train.dir/retrain.cpp.o.d"
  "liblehdc_train.a"
  "liblehdc_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
