# Empty dependencies file for lehdc_train.
# This may be replaced when dependencies are built.
