# Empty compiler generated dependencies file for lehdc_data.
# This may be replaced when dependencies are built.
