file(REMOVE_RECURSE
  "CMakeFiles/lehdc_data.dir/csv_loader.cpp.o"
  "CMakeFiles/lehdc_data.dir/csv_loader.cpp.o.d"
  "CMakeFiles/lehdc_data.dir/dataset.cpp.o"
  "CMakeFiles/lehdc_data.dir/dataset.cpp.o.d"
  "CMakeFiles/lehdc_data.dir/idx_loader.cpp.o"
  "CMakeFiles/lehdc_data.dir/idx_loader.cpp.o.d"
  "CMakeFiles/lehdc_data.dir/profiles.cpp.o"
  "CMakeFiles/lehdc_data.dir/profiles.cpp.o.d"
  "CMakeFiles/lehdc_data.dir/synthetic.cpp.o"
  "CMakeFiles/lehdc_data.dir/synthetic.cpp.o.d"
  "liblehdc_data.a"
  "liblehdc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehdc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
