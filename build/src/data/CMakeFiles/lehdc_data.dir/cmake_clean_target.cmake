file(REMOVE_RECURSE
  "liblehdc_data.a"
)
