#!/usr/bin/env bash
# clang-tidy gate with a checked-in suppression baseline.
#
# Usage: scripts/tidy.sh [--update-baseline] [--build-dir DIR] [--report FILE]
#
# Runs clang-tidy (config: .clang-tidy) over every translation unit in
# src/ and tools/, normalizes the findings to `file<TAB>check<TAB>count`
# triples, and compares them against scripts/tidy_baseline.txt:
#
#   - a (file, check) pair absent from the baseline, or with a higher
#     count than the baseline records, is a NEW finding -> exit 1;
#   - equal-or-lower counts pass (and the script suggests re-baselining
#     when counts dropped, so the ratchet only ever tightens).
#
# Bootstrap: while the baseline file still carries the `# status:
# bootstrap` marker (no clang-tidy-capable toolchain has regenerated it
# yet), the run records findings to the report, prints them, and exits 0
# with a loud request to commit a real baseline via --update-baseline.
# This keeps the gate honest on machines without clang while making the
# first clang-equipped run (CI) produce the artifact to check in.
#
# Exit codes: 0 clean/bootstrap/skip-no-tool, 1 new findings, 2 usage.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=scripts/tidy_baseline.txt
build_dir=build-tidy
report=tidy_report.txt
update=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update-baseline) update=1 ;;
    --build-dir) build_dir="$2"; shift ;;
    --report) report="$2"; shift ;;
    *) echo "tidy.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

# Locate clang-tidy (plain or versioned). Absent toolchain is a skip, not
# a failure: the container's baked toolchain is gcc-only; CI installs it.
tidy_bin=""
for candidate in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy_bin="$candidate"
    break
  fi
done
if [[ -z "$tidy_bin" ]]; then
  echo "tidy.sh: clang-tidy not found — SKIPPED (install clang-tidy to run this gate)"
  exit 0
fi
echo "tidy.sh: using $("$tidy_bin" --version | head -1)"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(find src tools -name '*.cpp' | sort)

# Raw run. clang-tidy exits non-zero on warnings; capture output regardless
# and gate on the baseline diff below, not on its exit code.
: > "$report"
status=0
"$tidy_bin" -p "$build_dir" --quiet "${sources[@]}" >> "$report" 2>/dev/null \
  || status=$?
if [[ $status -ne 0 ]] && ! grep -q "warning:" "$report"; then
  echo "tidy.sh: clang-tidy failed without findings (exit $status); report:" >&2
  cat "$report" >&2
  exit "$status"
fi

# Normalize to sorted "relpath<TAB>check<TAB>count" lines.
current="$(mktemp)"
grep -oE '^[^ ]+:[0-9]+:[0-9]+: warning: .* \[[a-z0-9.,-]+\]$' "$report" \
  | sed -E "s#^$(pwd)/##" \
  | sed -E 's#^([^:]+):[0-9]+:[0-9]+: warning: .* \[([a-z0-9.,-]+)\]$#\1\t\2#' \
  | sort | uniq -c | awk '{print $2 "\t" $3 "\t" $1}' > "$current"

if [[ $update -eq 1 ]]; then
  {
    echo "# clang-tidy suppression baseline — regenerate with scripts/tidy.sh --update-baseline"
    echo "# format: file<TAB>check<TAB>count; new pairs or higher counts fail the gate"
    echo "# generated-by: $("$tidy_bin" --version | head -1 | tr -s ' ')"
    cat "$current"
  } > "$baseline"
  echo "tidy.sh: baseline updated ($(wc -l < "$current") entries) -> $baseline"
  rm -f "$current"
  exit 0
fi

if grep -q '^# status: bootstrap' "$baseline" 2>/dev/null; then
  count=$(wc -l < "$current")
  echo "tidy.sh: baseline is in bootstrap state; current findings ($count):"
  cat "$current"
  echo "tidy.sh: BOOTSTRAP PASS — commit a real baseline with: scripts/tidy.sh --update-baseline"
  rm -f "$current"
  exit 0
fi

# Compare: fail on pairs exceeding the baseline.
new_findings="$(mktemp)"
awk -F'\t' 'NR==FNR { if ($0 !~ /^#/) base[$1 FS $2] = $3; next }
            { allowed = ($1 FS $2) in base ? base[$1 FS $2] : 0
              if ($3 > allowed)
                printf "%s\t%s\t%d (baseline %d)\n", $1, $2, $3, allowed }' \
    "$baseline" "$current" > "$new_findings"

if [[ -s "$new_findings" ]]; then
  echo "tidy.sh: NEW clang-tidy findings versus $baseline:" >&2
  cat "$new_findings" >&2
  echo "tidy.sh: fix them or (deliberately) re-baseline with --update-baseline" >&2
  rm -f "$current" "$new_findings"
  exit 1
fi

improved=$(awk -F'\t' 'NR==FNR { if ($0 !~ /^#/) base[$1 FS $2] = $3; next }
                       { cur[$1 FS $2] = $3 }
                       END { for (k in base) if (base[k] > cur[k] + 0) n++
                             print n + 0 }' "$baseline" "$current")
echo "tidy.sh: OK — no new findings ($(wc -l < "$current") current entries)"
if [[ "$improved" -gt 0 ]]; then
  echo "tidy.sh: $improved baseline entr(ies) improved; tighten with --update-baseline"
fi
rm -f "$current" "$new_findings"
