#!/usr/bin/env python3
"""Plot the CSV series written by the bench harnesses against the paper's
figures.

Usage (after running the benches, which drop the CSVs in the CWD):

    python3 scripts/plot_figures.py [--dir .] [--out figures/]

Produces fig3_retraining.png (trajectories), fig5_regularization.png
(regularization ablation) and fig6_dimension.png (dimension sweep) when the
corresponding CSV exists. Requires matplotlib; degrades to a clear error
message without it.
"""
import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def to_float(cell):
    return float(cell) if cell not in ("", None) else None


def plot_series_csv(plt, path, out, title, ylabel):
    """fig3/fig5 format: epoch, <name>_train_accuracy, <name>_test_accuracy."""
    header, rows = read_csv(path)
    epochs = [int(r[0]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4.2))
    for col in range(1, len(header)):
        series = [to_float(r[col]) for r in rows]
        xs = [e for e, v in zip(epochs, series) if v is not None]
        ys = [v * 100.0 for v in series if v is not None]
        style = "--" if header[col].endswith("_train_accuracy") else "-"
        label = header[col].replace("_accuracy", "").replace("_", " ")
        ax.plot(xs, ys, style, label=label, linewidth=1.4)
    ax.set_xlabel("iteration / epoch")
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.legend(fontsize=8)
    ax.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_dimension_csv(plt, path, out):
    """fig6 format: dataset, dim, strategy, accuracy_mean, accuracy_std."""
    _, rows = read_csv(path)
    datasets = sorted({r[0] for r in rows})
    fig, axes = plt.subplots(1, len(datasets), figsize=(6 * len(datasets), 4.2),
                             squeeze=False)
    for ax, dataset in zip(axes[0], datasets):
        strategies = sorted({r[2] for r in rows if r[0] == dataset})
        for strategy in strategies:
            points = sorted((int(r[1]), float(r[3]))
                            for r in rows
                            if r[0] == dataset and r[2] == strategy)
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    marker="o", label=strategy, linewidth=1.4)
        ax.set_xlabel("hypervector dimension D")
        ax.set_ylabel("test accuracy (%)")
        ax.set_title(f"Fig. 6 — {dataset}")
        ax.legend(fontsize=8)
        ax.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="directory with the CSVs")
    parser.add_argument("--out", default=".", help="output directory")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.out, exist_ok=True)
    made_any = False

    fig3 = os.path.join(args.dir, "fig3_retraining.csv")
    if os.path.exists(fig3):
        plot_series_csv(plt, fig3, os.path.join(args.out,
                                                "fig3_retraining.png"),
                        "Fig. 3 — basic vs enhanced retraining",
                        "accuracy (%)")
        made_any = True

    fig5 = os.path.join(args.dir, "fig5_regularization.csv")
    if os.path.exists(fig5):
        plot_series_csv(plt, fig5, os.path.join(args.out,
                                                "fig5_regularization.png"),
                        "Fig. 5 — weight decay / dropout ablation",
                        "accuracy (%)")
        made_any = True

    fig6 = os.path.join(args.dir, "fig6_dimension.csv")
    if os.path.exists(fig6):
        plot_dimension_csv(plt, fig6, os.path.join(args.out,
                                                   "fig6_dimension.png"))
        made_any = True

    if not made_any:
        sys.exit("no bench CSVs found — run the bench/ binaries first")


if __name__ == "__main__":
    main()
