#!/usr/bin/env bash
# Verification sweep: build + ctest under one or more sanitizer modes.
#
# Usage: scripts/check.sh [mode ...] [-- extra ctest args...]
#
# Modes:
#   release   plain Release build (no sanitizer)
#   asan      AddressSanitizer + UndefinedBehaviorSanitizer
#   tsan      ThreadSanitizer (data races, lock-order inversions)
#   msan      MemorySanitizer — requires clang; reports and skips on gcc
#   analyze   static concurrency analysis: clang -Werror=thread-safety
#             build (skips loudly without clang) + the call-graph hot-path
#             checker (tools/lehdc_callgraph.py) + project lint
#   all       release asan tsan msan analyze
#
# With no modes the historical default runs: release then asan.
# `--skip-sanitize` (legacy flag) runs release only.
#
# Each mode builds into its own directory (build/, build-asan/, build-tsan/,
# build-msan/) so sanitizer runtimes never mix. The script prints which
# sanitizer mode is running and propagates the real ctest exit code: a
# failing suite fails the script with that code, never masked by a pipeline
# or a later command's status.
set -euo pipefail

cd "$(dirname "$0")/.."

modes=()
ctest_extra=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-sanitize) modes=(release) ;;
    --) shift; ctest_extra=("$@"); break ;;
    release|asan|tsan|msan|analyze) modes+=("$1") ;;
    all) modes+=(release asan tsan msan analyze) ;;
    *) echo "check.sh: unknown mode '$1' (release|asan|tsan|msan|analyze|all)" >&2
       exit 2 ;;
  esac
  shift
done
if [[ ${#modes[@]} -eq 0 ]]; then
  modes=(release asan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"
ran=()

# run_suite <mode> <build_dir> [cmake args...]
# Builds and tests one configuration. ctest's exit code is captured
# explicitly (no `cmd | tee`-style pipelines, no trailing commands that
# could overwrite $?) so a sanitizer-detected failure fails the script.
run_suite() {
  local mode="$1" build_dir="$2"
  shift 2
  echo "== mode: ${mode} (build dir: ${build_dir}) =="
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$jobs"
  local status=0
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
      "${ctest_extra[@]}" || status=$?
  if [[ $status -ne 0 ]]; then
    echo "check.sh: FAILED in mode '${mode}' (ctest exit code ${status})" >&2
    exit "$status"
  fi
  ran+=("$mode")
  echo "== mode ${mode}: OK =="
}

for mode in "${modes[@]}"; do
  case "$mode" in
    release)
      run_suite release build
      ;;
    asan)
      export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
      export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
      run_suite "asan (address,undefined)" build-asan \
          -DLEHDC_SANITIZE=address,undefined
      ;;
    tsan)
      # halt_on_error makes any report fail its test; the explicit exit
      # status propagation above turns that into a script failure.
      export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
      run_suite "tsan (thread)" build-tsan -DLEHDC_SANITIZE=thread
      ;;
    msan)
      # -fsanitize=memory exists only in clang. Probe the compiler that
      # CMake would use rather than failing mid-configure.
      cxx="${CXX:-c++}"
      if command -v clang++ >/dev/null 2>&1; then
        cxx=clang++
      fi
      if echo 'int main(){}' | "$cxx" -x c++ -fsanitize=memory -o /dev/null - \
          >/dev/null 2>&1; then
        export MSAN_OPTIONS="${MSAN_OPTIONS:-halt_on_error=1}"
        run_suite "msan (memory)" build-msan -DLEHDC_SANITIZE=memory \
            -DCMAKE_CXX_COMPILER="$cxx"
      else
        echo "== mode msan: SKIPPED ($cxx does not support -fsanitize=memory; install clang) =="
        if [[ "${LEHDC_REQUIRE_MSAN:-0}" == "1" ]]; then
          echo "check.sh: msan required via LEHDC_REQUIRE_MSAN=1 but unavailable" >&2
          exit 3
        fi
      fi
      ;;
    analyze)
      echo "== mode: analyze (thread-safety + call-graph + lint) =="
      # (1) Clang thread-safety analysis: a full build with the LEHDC_*
      # capability annotations promoted to errors. Gcc has no
      # -Wthread-safety, so without clang this half skips loudly (CI's
      # thread-safety job is the enforcing run; LEHDC_REQUIRE_ANALYZE=1
      # makes the skip fatal for environments that must not skip).
      if command -v clang++ >/dev/null 2>&1; then
        cmake -B build-analyze -S . -DCMAKE_CXX_COMPILER=clang++ \
            -DLEHDC_THREAD_SAFETY=ON >/dev/null
        cmake --build build-analyze -j "$jobs"
        echo "== analyze: thread-safety build OK =="
      else
        echo "== analyze: thread-safety build SKIPPED (clang++ not found; CI enforces it) =="
        if [[ "${LEHDC_REQUIRE_ANALYZE:-0}" == "1" ]]; then
          echo "check.sh: analyze required via LEHDC_REQUIRE_ANALYZE=1 but clang unavailable" >&2
          exit 3
        fi
      fi
      # (2) Hot-path call-graph discipline (skips itself without clang,
      # diffs against scripts/callgraph_baseline.txt otherwise) plus its
      # clang-free self-tests, (3) project lint.
      python3 tools/lehdc_callgraph.py --build-dir build-analyze \
          --report build-analyze-callgraph_report.txt
      python3 tools/test_lehdc_callgraph.py
      python3 tools/lehdc_lint.py --root .
      ran+=(analyze)
      echo "== mode analyze: OK =="
      ;;
  esac
done

echo "all checks passed (modes run: ${ran[*]:-none})"
