#!/usr/bin/env bash
# Full verification sweep: build + ctest on the normal Release build,
# then again with AddressSanitizer + UndefinedBehaviorSanitizer
# (-DLEHDC_SANITIZE=address,undefined).
#
# Usage: scripts/check.sh [--skip-sanitize] [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

skip_sanitize=0
if [[ "${1:-}" == "--skip-sanitize" ]]; then
  skip_sanitize=1
  shift
fi

jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== normal build =="
run_suite build

if [[ "$skip_sanitize" -eq 0 ]]; then
  echo "== address,undefined sanitizer build =="
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  run_suite build-asan -DLEHDC_SANITIZE=address,undefined
fi

echo "all checks passed"
