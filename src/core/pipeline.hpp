// High-level end-to-end API: raw dataset → record encoding → any training
// strategy → deployable classifier.
//
// This is the public entry point a downstream user adopts; the examples and
// every bench harness are built on it. The encoder is constructed once and
// shared across strategies (LeHDC never changes encoding or inference,
// Sec. 4), so strategy comparisons are apples-to-apples.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/lehdc_trainer.hpp"
#include "data/dataset.hpp"
#include "hdc/encoder.hpp"
#include "train/adapt.hpp"
#include "train/confusion.hpp"
#include "train/multimodel.hpp"
#include "train/nonbinary.hpp"
#include "train/retrain.hpp"
#include "train/trainer.hpp"

namespace lehdc::core {

enum class Strategy {
  kBaseline,
  kMultiModel,
  kRetraining,
  kEnhancedRetraining,
  kAdaptHd,
  kNonBinary,
  kLeHdc,
};

/// Display name used in table rows ("Baseline", "Multi-Model", ...).
[[nodiscard]] std::string strategy_name(Strategy strategy);

/// Case-insensitive reverse lookup; throws std::invalid_argument.
[[nodiscard]] Strategy strategy_from_name(const std::string& name);

struct PipelineConfig {
  /// Hypervector dimension D (paper default 10,000).
  std::size_t dim = 10000;
  /// Feature value quantization levels Q.
  std::size_t levels = 32;
  /// Master seed: item memories, tie-breaks and training stochasticity.
  std::uint64_t seed = 1;

  Strategy strategy = Strategy::kLeHdc;

  /// Item-memory strategy for batched raw-sample prediction: kAuto picks
  /// rematerialized for batches (overridable process-wide via the
  /// LEHDC_ENCODE_PATH environment variable); both paths are bit-identical.
  hdc::EncodePath encode_path = hdc::EncodePath::kAuto;

  // Fault tolerance (epoch-based strategies, i.e. LeHDC): write a
  // crash-safe checkpoint every `checkpoint_every` epochs (0 disables),
  // and/or resume a killed run from `resume_path`. See core/checkpoint.hpp.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_path;

  // Per-strategy knobs; only the block matching `strategy` is read.
  LeHdcConfig lehdc;
  train::RetrainConfig retrain;
  train::MultiModelConfig multimodel;
  train::AdaptConfig adapt;
  train::NonBinaryConfig nonbinary;
};

/// Builds the Trainer implementing config.strategy.
[[nodiscard]] std::unique_ptr<train::Trainer> make_trainer(
    const PipelineConfig& config);

/// Wall-clock cost of one fit() run, split by stage.
struct StageTimings {
  double encode_seconds = 0.0;  // dataset encoding (train + test)
  double train_seconds = 0.0;   // the strategy's own training loop
  double eval_seconds = 0.0;    // the final train/test accuracy passes
};

struct FitReport {
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;  // 0 when no test set given
  StageTimings timings;
  std::size_t epochs_run = 0;
  /// Per-epoch points; non-empty only when fit() ran with an observer.
  std::vector<train::EpochPoint> trajectory;
};

/// Structured result of Pipeline::evaluate — accuracy plus everything a
/// caller previously had to recompute or obtain through side channels.
struct EvalResult {
  double accuracy = 0.0;
  std::size_t samples = 0;
  /// Full confusion matrix of the pass; null when the dataset was empty.
  std::shared_ptr<const train::ConfusionMatrix> confusion;
  /// Wall time spent encoding raw samples, summed over workers (exceeds
  /// elapsed time when the fused pass runs on several threads).
  double encode_seconds = 0.0;
  /// Wall time spent scoring encoded blocks, summed over workers.
  double score_seconds = 0.0;
  /// Item-memory bytes the encode stage streamed over the whole pass, and
  /// whether it ran on the rematerialized path (see hdc::PredictStats).
  std::uint64_t encode_bytes = 0;
  bool rematerialized = false;
};

class Pipeline {
 public:
  explicit Pipeline(const PipelineConfig& config);

  /// Rebuilds a previously fitted pipeline from persisted parts (see
  /// core/pipeline_io.hpp). Only strategies exporting a plain binary
  /// classifier (baseline, retraining variants, LeHDC) are restorable.
  [[nodiscard]] static Pipeline restore(
      const PipelineConfig& config,
      const hdc::RecordEncoderConfig& encoder_config,
      hdc::BinaryClassifier classifier);

  /// Encodes and trains. The value range for quantization is taken from
  /// the training set. Preconditions: !train.empty(); if test is given it
  /// must share the training schema. Attaching an observer reports every
  /// epoch (see train::EpochObserver) and fills FitReport::trajectory;
  /// pass train::record_trajectory() for collection alone.
  FitReport fit(const data::Dataset& train,
                const data::Dataset* test = nullptr,
                const train::EpochObserver& observer = {});

  /// Predicts the class of one raw feature vector. Precondition: fitted.
  [[nodiscard]] int predict(std::span<const float> features) const;

  /// Classifies a whole raw dataset in one batched pass over the model's
  /// unified predict_queries surface: on the (default for batches)
  /// rematerialized path, encode and score fuse per word range and the
  /// encoded hypervectors never materialize at all; config().encode_path /
  /// LEHDC_ENCODE_PATH select the path. Results are bit-identical to
  /// per-sample predict on every path and worker count. Precondition:
  /// fitted; the dataset must match the encoder's feature count.
  [[nodiscard]] std::vector<int> predict_batch(
      const data::Dataset& dataset) const;

  /// Classifies a batch of already-encoded hypervectors through the same
  /// surface. Precondition: fitted; out.size() == queries.size().
  void predict_batch(std::span<const hv::BitVector> queries,
                     std::span<int> out) const;

  /// Evaluates a raw dataset (fused batched encode+predict): accuracy,
  /// confusion matrix and per-stage wall times in one pass. Predictions —
  /// and therefore accuracy and the confusion matrix — are bit-identical
  /// for every worker count; the timings are measurements and are not.
  [[nodiscard]] EvalResult evaluate(const data::Dataset& dataset) const;

  [[nodiscard]] bool fitted() const noexcept { return model_ != nullptr; }
  [[nodiscard]] const train::Model& model() const;
  [[nodiscard]] const hdc::Encoder& encoder() const;
  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

 private:
  void ensure_encoder(const data::Dataset& train);

  PipelineConfig config_;
  std::unique_ptr<hdc::RecordEncoder> encoder_;
  std::shared_ptr<const train::Model> model_;
};

}  // namespace lehdc::core
