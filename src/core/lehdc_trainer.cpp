#include "core/lehdc_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "nn/binarize.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "nn/schedule.hpp"
#include "train/baseline.hpp"
#include "train/class_matrix.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::core {

namespace {

/// Unpacks sample hypervector `h` into float ±1 and applies inverted
/// dropout in the same pass.
void unpack_with_dropout(const hv::BitVector& h, std::span<float> out,
                         float dropout_rate, util::Rng& rng) {
  const auto words = h.words();
  const float keep_scale =
      dropout_rate > 0.0f ? 1.0f / (1.0f - dropout_rate) : 1.0f;
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (dropout_rate > 0.0f && rng.next_float() < dropout_rate) {
      out[j] = 0.0f;
      continue;
    }
    const bool negative = ((words[j / 64] >> (j % 64)) & 1u) != 0;
    out[j] = negative ? -keep_scale : keep_scale;
  }
}

nn::Matrix initial_latent(const hdc::EncodedDataset& train_set,
                          LeHdcConfig::Init init, util::Rng& rng) {
  if (init == LeHdcConfig::Init::kRandom) {
    nn::Matrix latent(train_set.class_count(), train_set.dim());
    latent.fill_gaussian(rng, 0.1f);
    return latent;
  }
  // Warm start from the Eq. 2 accumulation, rescaled so the largest latent
  // magnitude is 1 (keeps the STE clip from freezing the warm start).
  nn::Matrix latent =
      train::to_class_matrix(train::accumulate_classes(train_set));
  float max_abs = 0.0f;
  for (const float v : latent.data()) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  if (max_abs > 0.0f) {
    const float inv = 1.0f / max_abs;
    for (auto& v : latent.data()) {
      v *= inv;
    }
  }
  return latent;
}

}  // namespace

LeHdcTrainer::LeHdcTrainer(const LeHdcConfig& config) : config_(config) {
  util::expects(config.logit_scale > 0.0f, "logit scale must be positive");
  util::expects(config.learning_rate > 0.0f, "learning rate must be positive");
  util::expects(config.weight_decay >= 0.0f,
                "weight decay must be non-negative");
  util::expects(config.dropout_rate >= 0.0f && config.dropout_rate < 1.0f,
                "dropout rate must lie in [0, 1)");
  util::expects(config.batch_size >= 1, "batch size must be positive");
  util::expects(config.epochs >= 1, "need at least one epoch");
  util::expects(config.latent_clip >= 0.0f, "clip bound must be >= 0");
}

train::TrainResult LeHdcTrainer::run(
    const hdc::EncodedDataset& train_set,
    const train::TrainOptions& options) const {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  const util::Stopwatch timer;
  util::Rng rng(options.seed);

  static obs::Counter& epoch_counter =
      obs::Registry::global().counter("train.lehdc.epochs");
  static obs::Counter& checkpoint_counter =
      obs::Registry::global().counter("train.lehdc.checkpoints");
  static obs::Gauge& loss_gauge =
      obs::Registry::global().gauge("train.lehdc.loss");
  static obs::Gauge& train_acc_gauge =
      obs::Registry::global().gauge("train.lehdc.train_accuracy");
  static obs::Gauge& test_acc_gauge =
      obs::Registry::global().gauge("train.lehdc.test_accuracy");
  static obs::Histogram& epoch_hist =
      obs::Registry::global().histogram("train.lehdc.epoch_seconds");
  static obs::Histogram& checkpoint_hist =
      obs::Registry::global().histogram("train.lehdc.checkpoint_seconds");

  const std::size_t n = train_set.size();
  const std::size_t d = train_set.dim();
  const std::size_t k_classes = train_set.class_count();
  const std::size_t batch = std::min(config_.batch_size, n);

  nn::Matrix latent = initial_latent(train_set, config_.init, rng);

  // Optimizer over the latent weights C_nb.
  std::optional<nn::AdamOptimizer> adam;
  std::optional<nn::SgdOptimizer> sgd;
  if (config_.use_adam) {
    nn::AdamConfig cfg;
    cfg.learning_rate = config_.learning_rate;
    cfg.beta1 = config_.adam_beta1;
    cfg.beta2 = config_.adam_beta2;
    cfg.weight_decay = config_.weight_decay;
    cfg.decay_mode = config_.decay_mode;
    adam.emplace(k_classes, d, cfg);
  } else {
    nn::SgdConfig cfg;
    cfg.learning_rate = config_.learning_rate;
    cfg.momentum = config_.sgd_momentum;
    cfg.weight_decay = config_.weight_decay;
    cfg.decay_mode = config_.decay_mode;
    sgd.emplace(k_classes, d, cfg);
  }
  nn::PlateauDecay schedule(config_.learning_rate, config_.lr_decay_factor,
                            config_.lr_patience);

  // Reusable batch buffers.
  nn::Matrix x(batch, d);             // dropped-out float inputs
  nn::Matrix weights_fwd(k_classes, d);  // sgn(C_nb) or C_nb itself
  nn::Matrix logits(batch, k_classes);
  nn::Matrix logit_grad(batch, k_classes);
  nn::Matrix weight_grad(k_classes, d);
  std::vector<int> batch_labels(batch);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  util::expects(options.checkpoint_every == 0 ||
                    !options.checkpoint_path.empty(),
                "checkpoint_every requires a checkpoint_path");

  // Resume: restore every piece of mutable training state, so the epochs
  // that follow replay exactly as they would have in the original run.
  std::size_t start_epoch = 0;
  if (!options.resume_path.empty()) {
    LeHdcCheckpoint ckpt = load_checkpoint(options.resume_path);
    if (ckpt.dim != d || ckpt.class_count != k_classes ||
        ckpt.sample_count != n || ckpt.batch != batch ||
        ckpt.seed != options.seed || ckpt.use_adam != config_.use_adam) {
      throw std::runtime_error(
          "checkpoint fingerprint does not match this run (" +
          options.resume_path + ")");
    }
    util::ensures(ckpt.latent.rows() == k_classes && ckpt.latent.cols() == d &&
                      ckpt.order.size() == n,
                  "checkpoint state shape mismatch");
    latent = std::move(ckpt.latent);
    if (adam) {
      adam->restore(std::move(ckpt.adam_m), std::move(ckpt.adam_v),
                    ckpt.adam_steps);
      adam->set_learning_rate(ckpt.learning_rate);
    } else {
      sgd->restore(std::move(ckpt.sgd_velocity));
      sgd->set_learning_rate(ckpt.learning_rate);
    }
    schedule.set_state(ckpt.schedule);
    rng.set_state(ckpt.rng);
    std::copy(ckpt.order.begin(), ckpt.order.end(), order.begin());
    start_epoch = ckpt.next_epoch;
  }

  const auto write_checkpoint = [&](std::size_t completed_epochs) {
    LeHdcCheckpoint ckpt;
    ckpt.dim = d;
    ckpt.class_count = k_classes;
    ckpt.sample_count = n;
    ckpt.batch = batch;
    ckpt.seed = options.seed;
    ckpt.use_adam = config_.use_adam;
    ckpt.next_epoch = completed_epochs;
    ckpt.learning_rate = adam ? adam->learning_rate() : sgd->learning_rate();
    ckpt.schedule = schedule.state();
    ckpt.rng = rng.state();
    ckpt.latent = latent;
    if (adam) {
      ckpt.adam_m = adam->first_moment();
      ckpt.adam_v = adam->second_moment();
      ckpt.adam_steps = adam->step_count();
    } else {
      ckpt.sgd_velocity = sgd->velocity();
    }
    ckpt.order.assign(order.begin(), order.end());
    obs::ScopedTimer ckpt_timer(checkpoint_hist);
    save_checkpoint(ckpt, options.checkpoint_path);
    ckpt_timer.stop();
    checkpoint_counter.add();
  };

  train::TrainResult result;
  result.epochs_run = start_epoch;

  double consumed_seconds = 0.0;
  const auto emit_event = [&](std::size_t epoch, double loss) {
    const double work_mark = timer.elapsed_seconds();
    train::EpochEvent event;
    event.point.epoch = epoch;
    event.point.train_loss = loss;
    const hdc::BinaryClassifier snapshot(nn::binarize_rows(latent));
    event.point.train_accuracy = snapshot.accuracy(train_set);
    if (options.test != nullptr) {
      event.point.test_accuracy = snapshot.accuracy(*options.test);
    }
    train_acc_gauge.set(event.point.train_accuracy);
    test_acc_gauge.set(event.point.test_accuracy);
    event.epoch_seconds = work_mark - consumed_seconds;
    event.eval_seconds = timer.elapsed_seconds() - work_mark;
    options.epoch_observer(event);
    consumed_seconds = timer.elapsed_seconds();
  };

  for (std::size_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    const obs::TraceSpan epoch_span("lehdc.epoch");
    obs::ScopedTimer epoch_timer(epoch_hist);
    rng.shuffle(order.begin(), order.end());
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start + batch <= n; start += batch) {
      // Materialize the batch with fresh dropout masks.
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t i = order[start + b];
        unpack_with_dropout(train_set.hypervector(i), x.row(b),
                            config_.dropout_rate, rng);
        batch_labels[b] = train_set.label(i);
      }

      // Forward with binarized weights (Eq. 8) — or the float ablation.
      if (config_.binary_forward) {
        nn::binarize_to_float(latent, weights_fwd);
        nn::matmul_abt(x, weights_fwd, logits);
      } else {
        nn::matmul_abt(x, latent, logits);
      }

      if (config_.logit_scale != 1.0f) {
        for (auto& v : logits.data()) {
          v *= config_.logit_scale;
        }
      }

      // Loss (Eq. 9) and fused softmax gradient; then the straight-through
      // weight gradient G = gᵀX of Eq. 7.
      epoch_loss +=
          nn::softmax_xent_backward(logits, batch_labels, logit_grad);
      ++batches;
      if (config_.logit_scale != 1.0f) {
        for (auto& v : logit_grad.data()) {
          v *= config_.logit_scale;
        }
      }
      weight_grad.fill(0.0f);
      nn::accumulate_gta(logit_grad, x, weight_grad);

      if (adam) {
        adam->step(latent, weight_grad);
      } else {
        sgd->step(latent, weight_grad);
      }
      if (config_.latent_clip > 0.0f) {
        nn::clip_latent(latent, config_.latent_clip);
      }
    }

    const double mean_loss =
        batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    if (config_.lr_plateau_decay) {
      const float lr = schedule.observe(mean_loss);
      if (adam) {
        adam->set_learning_rate(lr);
      } else {
        sgd->set_learning_rate(lr);
      }
    }

    result.epochs_run = epoch + 1;
    epoch_timer.stop();
    epoch_counter.add();
    loss_gauge.set(mean_loss);
    if (options.epoch_observer) {
      emit_event(epoch, mean_loss);
    }
    if (options.checkpoint_every > 0 &&
        (epoch + 1) % options.checkpoint_every == 0) {
      write_checkpoint(epoch + 1);
    }
  }

  if (config_.non_binary_model) {
    // Footnote 1: keep non-binary class vectors and cosine inference.
    // Latent floats are scaled to a fixed-point integer grid.
    std::vector<hv::IntVector> classes;
    classes.reserve(k_classes);
    for (std::size_t k = 0; k < k_classes; ++k) {
      hv::IntVector vec(d);
      const auto row = latent.row(k);
      for (std::size_t j = 0; j < d; ++j) {
        vec.set(j, static_cast<std::int32_t>(
                       std::lround(row[j] * 1024.0f)));
      }
      classes.push_back(std::move(vec));
    }
    result.model = std::make_shared<train::NonBinaryModel>(
        hdc::NonBinaryClassifier(std::move(classes)));
  } else {
    // C = sgn(C_nb): the exported class hypervectors (zero-overhead
    // inference on the unchanged HDC path).
    result.model = std::make_shared<train::BinaryModel>(
        hdc::BinaryClassifier(nn::binarize_rows(latent)));
  }
  result.train_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace lehdc::core
