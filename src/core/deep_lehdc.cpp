#include "core/deep_lehdc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/binarize.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/schedule.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::core {

DeepBinaryModel::DeepBinaryModel(std::vector<hv::BitVector> hidden_rows,
                                 std::vector<std::int32_t> hidden_thresholds,
                                 std::vector<hv::BitVector> output_rows)
    : hidden_rows_(std::move(hidden_rows)),
      hidden_thresholds_(std::move(hidden_thresholds)),
      output_rows_(std::move(output_rows)) {
  util::expects(!hidden_rows_.empty() && !output_rows_.empty(),
                "deep model needs both layers");
  util::expects(hidden_thresholds_.size() == hidden_rows_.size(),
                "one threshold per hidden unit");
  for (const auto& row : output_rows_) {
    util::expects(row.dim() == hidden_rows_.size(),
                  "output rows must span the hidden layer");
  }
}

int DeepBinaryModel::predict(const hv::BitVector& query) const {
  // Layer 1: h_i = sgn(row_i · x − t_i); ties resolve to +1.
  hv::BitVector hidden(hidden_rows_.size());
  for (std::size_t i = 0; i < hidden_rows_.size(); ++i) {
    if (hv::BitVector::dot(hidden_rows_[i], query) <
        hidden_thresholds_[i]) {
      hidden.set_bit(i, true);
    }
  }
  // Layer 2: argmax over binary output rows.
  int best = 0;
  std::int64_t best_score = hv::BitVector::dot(output_rows_[0], hidden);
  for (std::size_t k = 1; k < output_rows_.size(); ++k) {
    const std::int64_t score = hv::BitVector::dot(output_rows_[k], hidden);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double DeepBinaryModel::accuracy(const hdc::EncodedDataset& dataset) const {
  if (dataset.empty()) {
    return 0.0;
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predict(dataset.hypervector(i)) == dataset.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

std::size_t DeepBinaryModel::storage_bits() const noexcept {
  std::size_t bits = 0;
  for (const auto& row : hidden_rows_) {
    bits += row.dim();
  }
  for (const auto& row : output_rows_) {
    bits += row.dim();
  }
  return bits;
}

DeepLeHdcTrainer::DeepLeHdcTrainer(const DeepLeHdcConfig& config)
    : config_(config) {
  util::expects(config.hidden >= 2, "need at least two hidden units");
  util::expects(config.learning_rate > 0.0f, "learning rate must be positive");
  util::expects(config.dropout_rate >= 0.0f && config.dropout_rate < 1.0f,
                "dropout rate must lie in [0, 1)");
  util::expects(config.batch_size >= 1, "batch size must be positive");
  util::expects(config.epochs >= 1, "need at least one epoch");
}

train::TrainResult DeepLeHdcTrainer::run(
    const hdc::EncodedDataset& train_set,
    const train::TrainOptions& options) const {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  const util::Stopwatch timer;
  util::Rng rng(options.seed);
  double consumed_seconds = 0.0;

  const std::size_t n = train_set.size();
  const std::size_t d = train_set.dim();
  const std::size_t h = config_.hidden;
  const std::size_t k_classes = train_set.class_count();
  const std::size_t batch = std::min(config_.batch_size, n);
  const float act_clip =
      config_.act_clip_scale * std::sqrt(static_cast<float>(d));
  const float logit_scale =
      config_.logit_scale > 0.0f
          ? config_.logit_scale
          : 1.0f / std::sqrt(static_cast<float>(h));

  // Latent float weights for both layers.
  nn::Matrix w1(h, d);
  w1.fill_gaussian(rng, 0.1f);
  nn::Matrix w2(k_classes, h);
  w2.fill_gaussian(rng, 0.1f);

  nn::AdamConfig adam_cfg;
  adam_cfg.learning_rate = config_.learning_rate;
  adam_cfg.weight_decay = config_.weight_decay;
  adam_cfg.decay_mode = nn::WeightDecayMode::kL2;
  nn::AdamOptimizer adam1(h, d, adam_cfg);
  nn::AdamOptimizer adam2(k_classes, h, adam_cfg);
  // The activation thresholds train without weight decay (they are biases).
  nn::AdamConfig bias_cfg = adam_cfg;
  bias_cfg.weight_decay = 0.0f;
  nn::AdamOptimizer adam_bias(1, h, bias_cfg);
  nn::Matrix bias(1, h);
  nn::Matrix bias_grad(1, h);
  nn::PlateauDecay schedule(config_.learning_rate, 0.5f, 3);

  // Batch buffers.
  nn::Matrix x(batch, d);
  nn::Matrix w1_fwd(h, d);
  nn::Matrix w2_fwd(k_classes, h);
  nn::Matrix pre_hidden(batch, h);
  nn::Matrix hidden(batch, h);
  nn::Matrix logits(batch, k_classes);
  nn::Matrix logit_grad(batch, k_classes);
  nn::Matrix hidden_grad(batch, h);
  nn::Matrix w1_grad(h, d);
  nn::Matrix w2_grad(k_classes, h);
  std::vector<int> batch_labels(batch);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const auto unpack = [&](const hv::BitVector& sample,
                          std::span<float> out) {
    const auto words = sample.words();
    const float keep = config_.dropout_rate > 0.0f
                           ? 1.0f / (1.0f - config_.dropout_rate)
                           : 1.0f;
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (config_.dropout_rate > 0.0f &&
          rng.next_float() < config_.dropout_rate) {
        out[j] = 0.0f;
        continue;
      }
      const bool negative = ((words[j / 64] >> (j % 64)) & 1u) != 0;
      out[j] = negative ? -keep : keep;
    }
  };

  train::TrainResult result;
  const auto snapshot_model = [&] {
    std::vector<std::int32_t> thresholds(h, 0);
    for (std::size_t i = 0; i < h; ++i) {
      thresholds[i] =
          static_cast<std::int32_t>(std::lround(bias.at(0, i)));
    }
    return std::make_shared<DeepBinaryModel>(nn::binarize_rows(w1),
                                             std::move(thresholds),
                                             nn::binarize_rows(w2));
  };

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order.begin(), order.end());
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start + batch <= n; start += batch) {
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t i = order[start + b];
        unpack(train_set.hypervector(i), x.row(b));
        batch_labels[b] = train_set.label(i);
      }

      // Forward: both layers use binarized weights; the hidden layer uses
      // the sign activation.
      nn::binarize_to_float(w1, w1_fwd);
      nn::binarize_to_float(w2, w2_fwd);
      nn::matmul_abt(x, w1_fwd, pre_hidden);
      if (config_.train_thresholds) {
        for (std::size_t b = 0; b < batch; ++b) {
          const auto row = pre_hidden.row(b);
          for (std::size_t i = 0; i < h; ++i) {
            row[i] -= bias.at(0, i);
          }
        }
      }
      for (std::size_t i = 0; i < hidden.size(); ++i) {
        hidden.data()[i] = pre_hidden.data()[i] < 0.0f ? -1.0f : 1.0f;
      }
      nn::matmul_abt(hidden, w2_fwd, logits);
      for (auto& v : logits.data()) {
        v *= logit_scale;
      }

      epoch_loss +=
          nn::softmax_xent_backward(logits, batch_labels, logit_grad);
      ++batches;
      // Chain rule through the logit scaling.
      for (auto& v : logit_grad.data()) {
        v *= logit_scale;
      }

      // Backward. W2 gradient: g2 = logit_gradᵀ · hidden.
      w2_grad.fill(0.0f);
      nn::accumulate_gta(logit_grad, hidden, w2_grad);
      // Hidden gradient through the binary W2 and the hard-tanh STE.
      nn::matmul_ab(logit_grad, w2_fwd, hidden_grad);
      for (std::size_t i = 0; i < hidden_grad.size(); ++i) {
        if (std::abs(pre_hidden.data()[i]) > act_clip) {
          hidden_grad.data()[i] = 0.0f;  // saturated sign: no gradient
        }
      }
      // W1 gradient: g1 = hidden_gradᵀ · x.
      w1_grad.fill(0.0f);
      nn::accumulate_gta(hidden_grad, x, w1_grad);

      adam2.step(w2, w2_grad);
      adam1.step(w1, w1_grad);
      if (config_.train_thresholds) {
        // pre' = pre − b, so dL/db = −Σ_batch hidden_grad.
        bias_grad.fill(0.0f);
        for (std::size_t b = 0; b < batch; ++b) {
          const auto row = hidden_grad.row(b);
          for (std::size_t i = 0; i < h; ++i) {
            bias_grad.at(0, i) -= row[i];
          }
        }
        adam_bias.step(bias, bias_grad);
      }
      if (config_.latent_clip > 0.0f) {
        nn::clip_latent(w1, config_.latent_clip);
        nn::clip_latent(w2, config_.latent_clip);
      }
    }

    const double mean_loss =
        batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    if (config_.lr_plateau_decay) {
      const float lr = schedule.observe(mean_loss);
      adam1.set_learning_rate(lr);
      adam2.set_learning_rate(lr);
    }

    result.epochs_run = epoch + 1;
    if (options.epoch_observer) {
      const double work_mark = timer.elapsed_seconds();
      const auto model = snapshot_model();
      train::EpochEvent event;
      event.point.epoch = epoch;
      event.point.train_loss = mean_loss;
      event.point.train_accuracy = model->accuracy(train_set);
      if (options.test != nullptr) {
        event.point.test_accuracy = model->accuracy(*options.test);
      }
      event.epoch_seconds = work_mark - consumed_seconds;
      event.eval_seconds = timer.elapsed_seconds() - work_mark;
      options.epoch_observer(event);
      consumed_seconds = timer.elapsed_seconds();
    }
  }

  result.model = snapshot_model();
  result.train_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace lehdc::core
