// Crash-safe LeHDC training checkpoints.
//
// A checkpoint captures the complete mid-training state of the LeHDC
// trainer at an epoch boundary: the float latent weights C_nb, the
// optimizer moments (Adam m/v + step count, or the SGD momentum buffer),
// the LR-plateau scheduler state, the RNG state and the in-place shuffle
// permutation. Restoring it and running the remaining epochs produces a
// final classifier bit-identical to an uninterrupted run — shuffling,
// dropout masks and LR decays all resume mid-stream.
//
// File format "LHCK" v1 (little-endian, checksummed — util/fileio.hpp):
//   magic "LHCK" | u32 version | u64 payload_size | payload | u32 crc32
//   payload := fingerprint (dim, classes, samples, batch, seed, optimizer)
//            | next_epoch | learning rate | plateau state | RNG state
//            | latent matrix | optimizer buffers | shuffle order
// Saves are atomic (write-to-temp-then-rename), so a crash mid-save
// leaves the previous checkpoint intact rather than a torn file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/schedule.hpp"
#include "util/rng.hpp"

namespace lehdc::core {

struct LeHdcCheckpoint {
  // Fingerprint of the run that wrote the checkpoint; resume refuses a
  // checkpoint whose fingerprint disagrees with the live configuration.
  std::uint64_t dim = 0;
  std::uint64_t class_count = 0;
  std::uint64_t sample_count = 0;
  std::uint64_t batch = 0;
  std::uint64_t seed = 0;
  bool use_adam = true;

  /// First epoch the resumed run still has to execute.
  std::uint64_t next_epoch = 0;

  /// Learning rate currently applied by the optimizer.
  float learning_rate = 0.0f;

  nn::PlateauDecay::State schedule;
  util::Rng::State rng;

  /// The latent weights C_nb (class_count x dim).
  nn::Matrix latent;

  // Optimizer state: Adam moments + step count when use_adam, otherwise
  // the SGD momentum buffer (the unused matrices stay empty).
  nn::Matrix adam_m;
  nn::Matrix adam_v;
  std::uint64_t adam_steps = 0;
  nn::Matrix sgd_velocity;

  /// The sample permutation, which rng.shuffle mutates in place across
  /// epochs — it is part of the stream state.
  std::vector<std::uint64_t> order;
};

/// Atomically persists the checkpoint; throws std::runtime_error on IO
/// failure (the previous checkpoint at `path`, if any, survives intact).
void save_checkpoint(const LeHdcCheckpoint& checkpoint,
                     const std::string& path);

/// Loads and CRC-verifies a checkpoint; throws std::runtime_error on a
/// missing, truncated, corrupt or wrong-format file.
[[nodiscard]] LeHdcCheckpoint load_checkpoint(const std::string& path);

}  // namespace lehdc::core
