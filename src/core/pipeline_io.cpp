#include "core/pipeline_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "hdc/model_io.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"
#include "util/serial.hpp"

namespace lehdc::core {

namespace {

constexpr char kMagic[4] = {'L', 'H', 'D', 'P'};
constexpr std::uint32_t kVersion = 2;

// Bundles embed one classifier plus a fixed-size config block; 2 GiB is
// far beyond any legitimate bundle (see hdc/model_io.cpp).
constexpr std::size_t kMaxPayload = std::size_t{1} << 31;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value, const std::string& path) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error("truncated pipeline bundle: " + path);
  }
}

}  // namespace

void save_pipeline(const Pipeline& pipeline, const std::string& path) {
  static obs::Histogram& save_hist =
      obs::Registry::global().histogram("io.pipeline_save_seconds");
  const obs::ScopedTimer io_timer(save_hist);
  util::expects(pipeline.fitted(), "cannot save an unfitted pipeline");
  const auto* binary = pipeline.model().as_binary();
  util::expects(binary != nullptr,
                "only binary-classifier models are bundle-serializable");
  const auto& encoder =
      dynamic_cast<const hdc::RecordEncoder&>(pipeline.encoder());
  const hdc::RecordEncoderConfig& encoder_cfg = encoder.config();
  const PipelineConfig& cfg = pipeline.config();

  util::PayloadWriter payload;
  payload.pod(static_cast<std::uint64_t>(cfg.dim));
  payload.pod(static_cast<std::uint64_t>(cfg.levels));
  payload.pod(static_cast<std::uint64_t>(cfg.seed));
  payload.pod(static_cast<std::uint32_t>(cfg.strategy));

  payload.pod(static_cast<std::uint64_t>(encoder_cfg.dim));
  payload.pod(static_cast<std::uint64_t>(encoder_cfg.feature_count));
  payload.pod(static_cast<std::uint64_t>(encoder_cfg.levels));
  payload.pod(encoder_cfg.range_lo);
  payload.pod(encoder_cfg.range_hi);
  payload.pod(static_cast<std::uint64_t>(encoder_cfg.seed));

  std::ostringstream classifier_bytes(std::ios::binary);
  hdc::write_classifier(classifier_bytes, *binary);
  const std::string classifier_blob = classifier_bytes.str();
  payload.bytes(classifier_blob.data(), classifier_blob.size());

  std::ostringstream buffer(std::ios::binary);
  buffer.write(kMagic, sizeof(kMagic));
  write_pod(buffer, kVersion);
  util::write_framed_payload(buffer, payload.str());
  util::atomic_write_file(path, buffer.view());
}

namespace {

Pipeline restore_from_reader(util::PayloadReader& reader,
                             const std::string& path) {
  PipelineConfig cfg;
  cfg.dim = reader.pod<std::uint64_t>();
  cfg.levels = reader.pod<std::uint64_t>();
  cfg.seed = reader.pod<std::uint64_t>();
  const auto strategy = reader.pod<std::uint32_t>();
  if (strategy > static_cast<std::uint32_t>(Strategy::kLeHdc)) {
    throw std::runtime_error("unknown strategy id in pipeline bundle: " +
                             path);
  }
  cfg.strategy = static_cast<Strategy>(strategy);

  hdc::RecordEncoderConfig encoder_cfg;
  encoder_cfg.dim = reader.pod<std::uint64_t>();
  encoder_cfg.feature_count = reader.pod<std::uint64_t>();
  encoder_cfg.levels = reader.pod<std::uint64_t>();
  encoder_cfg.range_lo = reader.pod<float>();
  encoder_cfg.range_hi = reader.pod<float>();
  encoder_cfg.seed = reader.pod<std::uint64_t>();

  const std::string_view blob = reader.rest();
  std::istringstream classifier_stream{std::string(blob), std::ios::binary};
  hdc::BinaryClassifier classifier =
      hdc::read_classifier(classifier_stream, path);
  return Pipeline::restore(cfg, encoder_cfg, std::move(classifier));
}

Pipeline load_pipeline_v1(std::istream& in, const std::string& path) {
  PipelineConfig cfg;
  std::uint64_t dim = 0;
  std::uint64_t levels = 0;
  std::uint64_t seed = 0;
  std::uint32_t strategy = 0;
  read_pod(in, dim, path);
  read_pod(in, levels, path);
  read_pod(in, seed, path);
  read_pod(in, strategy, path);
  cfg.dim = dim;
  cfg.levels = levels;
  cfg.seed = seed;
  if (strategy > static_cast<std::uint32_t>(Strategy::kLeHdc)) {
    throw std::runtime_error("unknown strategy id in pipeline bundle: " +
                             path);
  }
  cfg.strategy = static_cast<Strategy>(strategy);

  hdc::RecordEncoderConfig encoder_cfg;
  std::uint64_t encoder_dim = 0;
  std::uint64_t feature_count = 0;
  std::uint64_t encoder_levels = 0;
  std::uint64_t encoder_seed = 0;
  read_pod(in, encoder_dim, path);
  read_pod(in, feature_count, path);
  read_pod(in, encoder_levels, path);
  read_pod(in, encoder_cfg.range_lo, path);
  read_pod(in, encoder_cfg.range_hi, path);
  read_pod(in, encoder_seed, path);
  encoder_cfg.dim = encoder_dim;
  encoder_cfg.feature_count = feature_count;
  encoder_cfg.levels = encoder_levels;
  encoder_cfg.seed = encoder_seed;

  hdc::BinaryClassifier classifier = hdc::read_classifier(in, path);
  return Pipeline::restore(cfg, encoder_cfg, std::move(classifier));
}

}  // namespace

Pipeline load_pipeline(const std::string& path) {
  static obs::Histogram& load_hist =
      obs::Registry::global().histogram("io.pipeline_load_seconds");
  const obs::ScopedTimer io_timer(load_hist);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open pipeline bundle: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a LHDP pipeline bundle: " + path);
  }
  std::uint32_t version = 0;
  read_pod(in, version, path);
  if (version == 1) {
    return load_pipeline_v1(in, path);
  }
  if (version != kVersion) {
    throw std::runtime_error("unsupported pipeline bundle version in " +
                             path);
  }
  const std::string payload = util::read_framed_payload(in, kMaxPayload, path);
  util::PayloadReader reader(payload, path);
  return restore_from_reader(reader, path);
}

}  // namespace lehdc::core
