// Pipeline bundles: one file holding everything needed to deploy a fitted
// pipeline on another machine — the pipeline settings, the encoder
// configuration (item memories regenerate deterministically from it), and
// the trained binary class hypervectors.
//
// Format v2 (little-endian, checksummed — see util/fileio.hpp):
//   magic "LHDP" | u32 version | u64 payload_size | payload | u32 crc32
//   payload :=
//     pipeline: u64 dim, u64 levels, u64 seed, u32 strategy
//   | encoder:  u64 dim, u64 feature_count, u64 levels, f32 lo, f32 hi,
//               u64 seed
//   | embedded LHDC classifier blob (hdc/model_io.hpp, itself checksummed)
// Legacy v1 bundles (no framing) still load. Saves are atomic
// (write-to-temp-then-rename) and always emit v2.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace lehdc::core {

/// Persists a fitted pipeline. Preconditions: pipeline.fitted() and the
/// trained model is a plain binary classifier (as_binary() != nullptr) —
/// true for baseline, the retraining variants and LeHDC.
/// Throws std::runtime_error on I/O failure.
void save_pipeline(const Pipeline& pipeline, const std::string& path);

/// Restores a pipeline bundle; the result predicts bit-identically to the
/// pipeline that was saved. Throws std::runtime_error on I/O failure or a
/// malformed file.
[[nodiscard]] Pipeline load_pipeline(const std::string& path);

}  // namespace lehdc::core
