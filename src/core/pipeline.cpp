#include "core/pipeline.hpp"

#include <algorithm>
#include <cctype>

#include "hdc/encoded_dataset.hpp"
#include "hdc/query_batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/baseline.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::core {

namespace {
obs::Counter& batch_query_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("pipeline.batch_queries");
  return counter;
}
}  // namespace

std::string strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kBaseline:
      return "Baseline";
    case Strategy::kMultiModel:
      return "Multi-Model";
    case Strategy::kRetraining:
      return "Retraining";
    case Strategy::kEnhancedRetraining:
      return "EnhancedRetraining";
    case Strategy::kAdaptHd:
      return "AdaptHD";
    case Strategy::kNonBinary:
      return "NonBinaryHDC";
    case Strategy::kLeHdc:
      return "LeHDC";
  }
  return "?";
}

Strategy strategy_from_name(const std::string& name) {
  std::string key;
  for (const char ch : name) {
    if (ch == '-' || ch == '_' || ch == ' ') {
      continue;
    }
    key.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(ch))));
  }
  if (key == "baseline") return Strategy::kBaseline;
  if (key == "multimodel") return Strategy::kMultiModel;
  if (key == "retraining" || key == "retrain") return Strategy::kRetraining;
  if (key == "enhancedretraining" || key == "enhanced") {
    return Strategy::kEnhancedRetraining;
  }
  if (key == "adapthd" || key == "adapt") return Strategy::kAdaptHd;
  if (key == "nonbinaryhdc" || key == "nonbinary") return Strategy::kNonBinary;
  if (key == "lehdc") return Strategy::kLeHdc;
  throw std::invalid_argument("unknown strategy: " + name);
}

std::unique_ptr<train::Trainer> make_trainer(const PipelineConfig& config) {
  switch (config.strategy) {
    case Strategy::kBaseline:
      return std::make_unique<train::BaselineTrainer>();
    case Strategy::kMultiModel:
      return std::make_unique<train::MultiModelTrainer>(config.multimodel);
    case Strategy::kRetraining:
      return std::make_unique<train::RetrainingTrainer>(config.retrain);
    case Strategy::kEnhancedRetraining:
      return std::make_unique<train::EnhancedRetrainingTrainer>(
          config.retrain);
    case Strategy::kAdaptHd:
      return std::make_unique<train::AdaptHdTrainer>(config.adapt);
    case Strategy::kNonBinary:
      return std::make_unique<train::NonBinaryTrainer>(config.nonbinary);
    case Strategy::kLeHdc:
      return std::make_unique<LeHdcTrainer>(config.lehdc);
  }
  throw std::invalid_argument("unknown strategy enum value");
}

Pipeline::Pipeline(const PipelineConfig& config) : config_(config) {
  util::expects(config.dim > 0, "hypervector dimension must be positive");
  util::expects(config.levels >= 2, "need at least two quantization levels");
}

Pipeline Pipeline::restore(const PipelineConfig& config,
                           const hdc::RecordEncoderConfig& encoder_config,
                           hdc::BinaryClassifier classifier) {
  util::expects(encoder_config.dim == config.dim,
                "encoder/pipeline dimension mismatch");
  util::expects(classifier.dim() == config.dim,
                "classifier/pipeline dimension mismatch");
  Pipeline pipeline(config);
  pipeline.encoder_ = std::make_unique<hdc::RecordEncoder>(encoder_config);
  pipeline.model_ =
      std::make_shared<train::BinaryModel>(std::move(classifier));
  return pipeline;
}

void Pipeline::ensure_encoder(const data::Dataset& train) {
  if (encoder_ != nullptr &&
      encoder_->feature_count() == train.feature_count()) {
    return;
  }
  const auto [lo, hi] = train.value_range();
  hdc::RecordEncoderConfig cfg;
  cfg.dim = config_.dim;
  cfg.feature_count = train.feature_count();
  cfg.levels = config_.levels;
  cfg.range_lo = lo;
  cfg.range_hi = hi > lo ? hi : lo + 1.0f;
  cfg.seed = config_.seed;
  encoder_ = std::make_unique<hdc::RecordEncoder>(cfg);
}

FitReport Pipeline::fit(const data::Dataset& train, const data::Dataset* test,
                        const train::EpochObserver& observer) {
  util::expects(!train.empty(), "cannot fit on an empty dataset");
  if (test != nullptr) {
    util::expects(test->feature_count() == train.feature_count() &&
                      test->class_count() == train.class_count(),
                  "train/test schema mismatch");
  }
  ensure_encoder(train);

  FitReport report;
  const util::Stopwatch encode_timer;
  hdc::EncodedDataset encoded_train;
  hdc::EncodedDataset encoded_test;
  {
    const obs::TraceSpan span("pipeline.fit.encode");
    encoded_train = hdc::encode_dataset(*encoder_, train);
    if (test != nullptr) {
      encoded_test = hdc::encode_dataset(*encoder_, *test);
    }
  }
  report.timings.encode_seconds = encode_timer.elapsed_seconds();

  const auto trainer = make_trainer(config_);
  train::TrainOptions options;
  options.seed = config_.seed;
  options.epoch_observer = observer;
  options.checkpoint_every = config_.checkpoint_every;
  options.checkpoint_path = config_.checkpoint_path;
  options.resume_path = config_.resume_path;
  options.test = (test != nullptr && !encoded_test.empty()) ? &encoded_test
                                                            : nullptr;
  train::TrainResult result;
  {
    const obs::TraceSpan span("pipeline.fit.train");
    result = trainer->train(encoded_train, options);
  }
  model_ = result.model;

  report.timings.train_seconds = result.train_seconds;
  report.epochs_run = result.epochs_run;
  report.trajectory = std::move(result.trajectory);
  const util::Stopwatch eval_timer;
  {
    const obs::TraceSpan span("pipeline.fit.eval");
    report.train_accuracy = model_->accuracy(encoded_train);
    if (options.test != nullptr) {
      report.test_accuracy = model_->accuracy(encoded_test);
    }
  }
  report.timings.eval_seconds = eval_timer.elapsed_seconds();
  return report;
}

int Pipeline::predict(std::span<const float> features) const {
  util::expects(fitted(), "predict before fit");
  return model_->predict(encoder_->encode(features));
}

std::vector<int> Pipeline::predict_batch(
    const data::Dataset& dataset) const {
  util::expects(fitted(), "predict_batch before fit");
  util::expects(dataset.feature_count() == encoder_->feature_count(),
                "dataset/encoder feature count mismatch");
  std::vector<int> out(dataset.size());
  if (dataset.empty()) {
    return out;
  }
  const obs::TraceSpan span("pipeline.predict_batch");
  batch_query_counter().add(dataset.size());
  model_->predict_queries(
      hdc::QueryBatch(dataset, *encoder_, config_.encode_path), out);
  return out;
}

void Pipeline::predict_batch(std::span<const hv::BitVector> queries,
                             std::span<int> out) const {
  util::expects(fitted(), "predict_batch before fit");
  model_->predict_queries(hdc::QueryBatch(queries), out);
}

EvalResult Pipeline::evaluate(const data::Dataset& dataset) const {
  util::expects(fitted(), "evaluate before fit");
  EvalResult result;
  result.samples = dataset.size();
  if (dataset.empty()) {
    return result;
  }
  util::expects(dataset.feature_count() == encoder_->feature_count(),
                "dataset/encoder feature count mismatch");
  const obs::TraceSpan span("pipeline.predict_batch");
  batch_query_counter().add(dataset.size());
  std::vector<int> predicted(dataset.size());
  hdc::PredictStats stats;
  model_->predict_queries(
      hdc::QueryBatch(dataset, *encoder_, config_.encode_path), predicted,
      &stats);
  result.encode_seconds = stats.encode_seconds;
  result.score_seconds = stats.score_seconds;
  result.encode_bytes = stats.encode_bytes;
  result.rematerialized = stats.rematerialized;

  // The matrix must admit every label either side produced (a model can
  // predict a class the evaluation split happens to lack).
  std::size_t classes = dataset.class_count();
  for (const int p : predicted) {
    classes = std::max(classes, static_cast<std::size_t>(p) + 1);
  }
  auto confusion = std::make_shared<train::ConfusionMatrix>(classes);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    confusion->add(dataset.label(i), predicted[i]);
  }
  result.accuracy = confusion->accuracy();
  result.confusion = std::move(confusion);
  return result;
}

const train::Model& Pipeline::model() const {
  util::expects(fitted(), "model() before fit");
  return *model_;
}

const hdc::Encoder& Pipeline::encoder() const {
  util::expects(encoder_ != nullptr, "encoder() before fit");
  return *encoder_;
}

}  // namespace lehdc::core
