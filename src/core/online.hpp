// On-device incremental HDC learning.
//
// The IoT deployments that motivate HDC (paper Sec. 1) often cannot afford
// a full offline training pass: samples arrive as a stream and the model
// must improve in place. This learner maintains the non-binary class
// accumulators C_nb online and serves predictions from their binarized
// form at any point in the stream:
//
//  * kCentroid    — every observed sample is bundled into its class
//                   accumulator (the streaming form of Eq. 2);
//  * kPerceptron  — a sample updates the accumulators only when the current
//                   binary model misclassifies it (the streaming, single-
//                   pass form of the Eq. 3 retraining rule).
//
// Extension beyond the paper (its training is offline); included because
// the mapping to the single-layer network makes the online variants
// immediate, and they share all invariants with the offline trainers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdc/classifier.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"

namespace lehdc::core {

enum class OnlineMode {
  kCentroid,
  kPerceptron,
};

struct OnlineConfig {
  std::size_t dim = 10000;
  std::size_t class_count = 2;
  OnlineMode mode = OnlineMode::kPerceptron;
  /// Integer update magnitude for the perceptron rule.
  std::int32_t alpha = 1;
  /// In perceptron mode, the first `warmup_per_class` samples of each class
  /// are always bundled in (centroid-style) regardless of the prediction —
  /// a cold mistake-driven learner otherwise leaves lucky classes empty.
  std::size_t warmup_per_class = 3;
  /// Seed for the sgn(0) tie-break hypervector.
  std::uint64_t seed = 1;
};

class OnlineHdcLearner {
 public:
  explicit OnlineHdcLearner(const OnlineConfig& config);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }
  /// Samples consumed so far.
  [[nodiscard]] std::size_t observed() const noexcept { return observed_; }
  /// Samples that triggered an update (== observed() in centroid mode).
  [[nodiscard]] std::size_t updates() const noexcept { return updates_; }

  /// Consumes one labelled sample. Preconditions: matching dimension,
  /// 0 <= label < class_count().
  void observe(const hv::BitVector& sample, int label);

  /// Predicts with the current binarized model. Classes that have seen no
  /// samples behave as all-(+1) hypervectors. Precondition: matching dim.
  [[nodiscard]] int predict(const hv::BitVector& query) const;

  /// Accuracy of the current model over a dataset.
  [[nodiscard]] double accuracy(const hdc::EncodedDataset& dataset) const;

  /// Snapshot of the current binary model (deployable like any other).
  [[nodiscard]] hdc::BinaryClassifier snapshot() const;

  [[nodiscard]] const OnlineConfig& config() const noexcept { return config_; }

  /// Writes the learner state (config + non-binary accumulators + stream
  /// counters) as a checksummed LHON file via atomic write-then-rename. A
  /// load() of the file resumes the stream bit-identically: the binary
  /// model is recomputed from the accumulators with the same seeded
  /// tie-break hypervector.
  void save(const std::string& path) const;
  [[nodiscard]] static OnlineHdcLearner load(const std::string& path);

 private:
  void rebinarize(std::size_t k);

  std::size_t dim_;
  OnlineConfig config_;
  hv::BitVector tie_break_;
  std::vector<hv::IntVector> classes_;  // C_nb accumulators
  std::vector<hv::BitVector> binary_;   // C = sgn(C_nb), kept in sync
  std::vector<std::size_t> seen_per_class_;
  std::size_t observed_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace lehdc::core
