#include "core/online.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::core {

OnlineHdcLearner::OnlineHdcLearner(const OnlineConfig& config)
    : dim_(config.dim),
      config_(config),
      tie_break_(config.dim),
      classes_(config.class_count, hv::IntVector(config.dim)),
      binary_(config.class_count, hv::BitVector(config.dim)),
      seen_per_class_(config.class_count, 0) {
  util::expects(config.dim > 0, "dimension must be positive");
  util::expects(config.class_count >= 2, "need at least two classes");
  util::expects(config.alpha >= 1, "alpha must be a positive integer");
  util::Rng rng(config.seed);
  tie_break_.randomize(rng);
}

void OnlineHdcLearner::rebinarize(std::size_t k) {
  binary_[k] = classes_[k].sign(tie_break_);
}

void OnlineHdcLearner::observe(const hv::BitVector& sample, int label) {
  util::expects(sample.dim() == dim_, "sample dimension mismatch");
  util::expects(label >= 0 &&
                    static_cast<std::size_t>(label) < classes_.size(),
                "label out of range");
  ++observed_;
  const auto k = static_cast<std::size_t>(label);
  ++seen_per_class_[k];

  if (config_.mode == OnlineMode::kCentroid) {
    classes_[k].add(sample);
    rebinarize(k);
    ++updates_;
    return;
  }

  // Warm-up: bundle the first few samples of each class unconditionally so
  // an initially lucky class still acquires a real prototype.
  if (seen_per_class_[k] <= config_.warmup_per_class) {
    classes_[k].add_scaled(sample, config_.alpha);
    rebinarize(k);
    ++updates_;
    return;
  }

  // Perceptron mode: update only on a mistake by the current binary model.
  const int predicted = predict(sample);
  if (predicted == label) {
    return;
  }
  ++updates_;
  const auto wrong = static_cast<std::size_t>(predicted);
  classes_[k].add_scaled(sample, config_.alpha);
  classes_[wrong].add_scaled(sample, -config_.alpha);
  rebinarize(k);
  rebinarize(wrong);
}

int OnlineHdcLearner::predict(const hv::BitVector& query) const {
  util::expects(query.dim() == dim_, "query dimension mismatch");
  int best = 0;
  std::int64_t best_score = hv::BitVector::dot(query, binary_[0]);
  for (std::size_t k = 1; k < binary_.size(); ++k) {
    const std::int64_t score = hv::BitVector::dot(query, binary_[k]);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double OnlineHdcLearner::accuracy(const hdc::EncodedDataset& dataset) const {
  if (dataset.empty()) {
    return 0.0;
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predict(dataset.hypervector(i)) == dataset.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

hdc::BinaryClassifier OnlineHdcLearner::snapshot() const {
  return hdc::BinaryClassifier(binary_);
}

}  // namespace lehdc::core
