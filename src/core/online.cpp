#include "core/online.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"

namespace lehdc::core {

namespace {

constexpr char kOnlineMagic[4] = {'L', 'H', 'O', 'N'};
constexpr std::uint32_t kOnlineVersion = 2;

// Accumulators are i32[dim] per class; paper scale (10 x D=10,000) is
// ~400 KiB. 1 GiB bounds a corrupt length field without constraining
// real deployments.
constexpr std::size_t kMaxOnlinePayload = std::size_t{1} << 30;

}  // namespace

OnlineHdcLearner::OnlineHdcLearner(const OnlineConfig& config)
    : dim_(config.dim),
      config_(config),
      tie_break_(config.dim),
      classes_(config.class_count, hv::IntVector(config.dim)),
      binary_(config.class_count, hv::BitVector(config.dim)),
      seen_per_class_(config.class_count, 0) {
  util::expects(config.dim > 0, "dimension must be positive");
  util::expects(config.class_count >= 2, "need at least two classes");
  util::expects(config.alpha >= 1, "alpha must be a positive integer");
  util::Rng rng(config.seed);
  tie_break_.randomize(rng);
}

void OnlineHdcLearner::rebinarize(std::size_t k) {
  binary_[k] = classes_[k].sign(tie_break_);
}

void OnlineHdcLearner::observe(const hv::BitVector& sample, int label) {
  util::expects(sample.dim() == dim_, "sample dimension mismatch");
  util::expects(label >= 0 &&
                    static_cast<std::size_t>(label) < classes_.size(),
                "label out of range");
  ++observed_;
  const auto k = static_cast<std::size_t>(label);
  ++seen_per_class_[k];

  if (config_.mode == OnlineMode::kCentroid) {
    classes_[k].add(sample);
    rebinarize(k);
    ++updates_;
    return;
  }

  // Warm-up: bundle the first few samples of each class unconditionally so
  // an initially lucky class still acquires a real prototype.
  if (seen_per_class_[k] <= config_.warmup_per_class) {
    classes_[k].add_scaled(sample, config_.alpha);
    rebinarize(k);
    ++updates_;
    return;
  }

  // Perceptron mode: update only on a mistake by the current binary model.
  const int predicted = predict(sample);
  if (predicted == label) {
    return;
  }
  ++updates_;
  const auto wrong = static_cast<std::size_t>(predicted);
  classes_[k].add_scaled(sample, config_.alpha);
  classes_[wrong].add_scaled(sample, -config_.alpha);
  rebinarize(k);
  rebinarize(wrong);
}

int OnlineHdcLearner::predict(const hv::BitVector& query) const {
  util::expects(query.dim() == dim_, "query dimension mismatch");
  int best = 0;
  std::int64_t best_score = hv::BitVector::dot(query, binary_[0]);
  for (std::size_t k = 1; k < binary_.size(); ++k) {
    const std::int64_t score = hv::BitVector::dot(query, binary_[k]);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double OnlineHdcLearner::accuracy(const hdc::EncodedDataset& dataset) const {
  if (dataset.empty()) {
    return 0.0;
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predict(dataset.hypervector(i)) == dataset.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

hdc::BinaryClassifier OnlineHdcLearner::snapshot() const {
  return hdc::BinaryClassifier(binary_);
}

void OnlineHdcLearner::save(const std::string& path) const {
  util::PayloadWriter payload;
  payload.pod(static_cast<std::uint64_t>(dim_));
  payload.pod(static_cast<std::uint64_t>(classes_.size()));
  payload.pod(static_cast<std::uint8_t>(config_.mode));
  payload.pod(config_.alpha);
  payload.pod(static_cast<std::uint64_t>(config_.warmup_per_class));
  payload.pod(config_.seed);
  payload.pod(static_cast<std::uint64_t>(observed_));
  payload.pod(static_cast<std::uint64_t>(updates_));
  for (const std::size_t seen : seen_per_class_) {
    payload.pod(static_cast<std::uint64_t>(seen));
  }
  for (const hv::IntVector& accumulator : classes_) {
    const auto values = accumulator.values();
    payload.bytes(values.data(), values.size() * sizeof(std::int32_t));
  }

  std::ostringstream buffer(std::ios::binary);
  buffer.write(kOnlineMagic, sizeof(kOnlineMagic));
  buffer.write(reinterpret_cast<const char*>(&kOnlineVersion),
               sizeof(kOnlineVersion));
  util::write_framed_payload(buffer, payload.str());
  util::atomic_write_file(path, buffer.view());
}

OnlineHdcLearner OnlineHdcLearner::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open online learner state: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kOnlineMagic, sizeof(kOnlineMagic)) != 0) {
    throw std::runtime_error("not a LHON learner state file: " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) {
    throw std::runtime_error("truncated learner state header in " + path);
  }
  if (version != kOnlineVersion) {
    throw std::runtime_error("unsupported learner state version in " + path);
  }

  const std::string payload =
      util::read_framed_payload(in, kMaxOnlinePayload, path);
  util::PayloadReader reader(payload, path);

  OnlineConfig config;
  config.dim = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  config.class_count = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  const auto mode = reader.pod<std::uint8_t>();
  if (mode > static_cast<std::uint8_t>(OnlineMode::kPerceptron)) {
    throw std::runtime_error("unknown online mode in " + path);
  }
  config.mode = static_cast<OnlineMode>(mode);
  config.alpha = reader.pod<std::int32_t>();
  config.warmup_per_class =
      static_cast<std::size_t>(reader.pod<std::uint64_t>());
  config.seed = reader.pod<std::uint64_t>();

  // Header fields must agree with the remaining payload before any
  // allocation: counters + per-class seen counts + i32 accumulators.
  const std::uint64_t fixed = 2 * sizeof(std::uint64_t);
  const std::uint64_t remaining = reader.remaining();
  if (config.dim == 0 || config.class_count == 0 ||
      config.class_count > remaining ||
      remaining < fixed + config.class_count * sizeof(std::uint64_t) ||
      config.dim > (remaining - fixed -
                    config.class_count * sizeof(std::uint64_t)) /
                       (config.class_count * sizeof(std::int32_t))) {
    throw std::runtime_error(
        "learner state header disagrees with payload size in " + path);
  }

  // The constructor validates the config and rebuilds the seeded
  // tie-break hypervector, so binarization is bit-identical after resume.
  OnlineHdcLearner learner(config);
  learner.observed_ = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  learner.updates_ = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  for (std::size_t& seen : learner.seen_per_class_) {
    seen = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  }
  for (std::size_t k = 0; k < config.class_count; ++k) {
    const auto values = learner.classes_[k].values();
    reader.bytes(values.data(), values.size() * sizeof(std::int32_t));
    learner.rebinarize(k);
  }
  reader.expect_done();
  return learner;
}

}  // namespace lehdc::core
