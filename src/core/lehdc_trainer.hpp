// LeHDC — the paper's contribution (Sec. 4).
//
// The binary HDC classifier is trained as its equivalent wide single-layer
// BNN (Fig. 4): the encoded hypervector En(x) is the input, the class
// hypervectors are the binary weights, and the outputs o_k = En(x)^T c_k are
// fed (non-binarized) into softmax + cross-entropy (Eq. 9). Training keeps
// the two-copy scheme of Eq. 8: float latent weights C_nb accumulate Adam
// updates; the forward pass always uses C = sgn(C_nb); gradients pass
// straight through the sign. Weight decay (the λ/2·||C_nb||² of Eq. 10) and
// input dropout regularize (Fig. 5); the learning rate decays on loss
// plateaus (Sec. 5.2). After training only sgn(C_nb) is exported, so
// inference is bit-identical to baseline HDC — zero overhead.
#pragma once

#include <cstdint>

#include "nn/optimizer.hpp"
#include "train/trainer.hpp"

namespace lehdc::core {

struct LeHdcConfig {
  // Table 2 hyper-parameters.
  float weight_decay = 0.05f;   // WD (λ of Eq. 10)
  float learning_rate = 0.01f;  // LR
  std::size_t batch_size = 64;  // B
  float dropout_rate = 0.5f;    // DR, applied to the input En(x)
  std::size_t epochs = 100;

  /// Latent-weight clip bound for the straight-through estimator
  /// (0 disables clipping).
  float latent_clip = 1.0f;

  /// Eq. 10 puts the L2 penalty in the loss (kL2); kDecoupled is the AdamW
  /// variant kept for the ablation bench.
  nn::WeightDecayMode decay_mode = nn::WeightDecayMode::kL2;

  /// Adam (paper's choice, after [15]); false switches to SGD+momentum for
  /// the ablation bench.
  bool use_adam = true;
  float sgd_momentum = 0.9f;
  float adam_beta1 = 0.9f;
  float adam_beta2 = 0.999f;

  /// Forward pass uses binarized weights sgn(C_nb) (the paper's BNN). The
  /// float-forward ablation trains an ordinary perceptron on En(x) and only
  /// binarizes at export time.
  bool binary_forward = true;

  /// "The learning rate will decay during the training, if the training
  /// loss increasing is detected" (Sec. 5.2).
  bool lr_plateau_decay = true;
  float lr_decay_factor = 0.5f;
  std::size_t lr_patience = 3;

  /// Initialize C_nb from the scaled Eq. 2 accumulation (warm start, the
  /// natural HDC initialization) or from small random Gaussians.
  enum class Init { kBundle, kRandom } init = Init::kBundle;

  /// Export a non-binary model instead of sgn(C_nb) — footnote 1's
  /// non-binary HDC variant (cosine inference, larger storage).
  bool non_binary_model = false;

  /// Multiplies the logits before softmax. The paper feeds the raw
  /// o_k = En(x)ᵀc_k (scale 1.0), which spans ±D and saturates the softmax
  /// — harmless from the Eq. 2 warm start, but crippling from random init.
  /// Set to 1/sqrt(D)-ish (or use DeepLeHDC's auto rule) when training
  /// from scratch; kept at the paper's behavior by default.
  float logit_scale = 1.0f;
};

class LeHdcTrainer final : public train::Trainer {
 public:
  explicit LeHdcTrainer(const LeHdcConfig& config = {});

  [[nodiscard]] std::string name() const override { return "LeHDC"; }

  [[nodiscard]] const LeHdcConfig& config() const noexcept { return config_; }

 protected:
  [[nodiscard]] train::TrainResult run(
      const hdc::EncodedDataset& train_set,
      const train::TrainOptions& options) const override;

 private:
  LeHdcConfig config_;
};

}  // namespace lehdc::core
