// DeepLeHDC — a two-layer BNN extension of LeHDC (the paper's future-work
// direction).
//
// The conclusion of the paper attributes the remaining accuracy gap to the
// "fundamental limitations of the existing HDC framework, which is
// essentially a simple single-layer BNN", and expects gains "along with
// the advances in training BNNs". This trainer realizes the next step: a
// hidden layer of H binary neurons between the encoded hypervector and the
// class outputs,
//
//     h = sgn(W1 · En(x)),      o = W2 · h,
//
// trained end-to-end with straight-through estimators on both the binary
// weights and the sign activation (hard-tanh STE). The deployed model is
// still all-binary — inference is two rounds of XOR+popcount — but it is
// no longer a drop-in HDC associative memory, so it trades the paper's
// zero-overhead property for accuracy. bench/ablation_training quantifies
// that tradeoff.
#pragma once

#include <cstdint>

#include "train/trainer.hpp"

namespace lehdc::core {

struct DeepLeHdcConfig {
  /// Hidden binary neurons H.
  std::size_t hidden = 512;
  float learning_rate = 0.01f;
  /// Under Adam's per-parameter rescaling, an L2 term easily dominates the
  /// thin per-weight data gradient of a wide binary layer; keep it light.
  float weight_decay = 0.0005f;
  float dropout_rate = 0.1f;  // on the input hypervector
  std::size_t batch_size = 64;
  std::size_t epochs = 50;
  float latent_clip = 1.0f;
  /// The sign-activation STE passes gradient where |pre-activation| is
  /// below act_clip_scale * sqrt(D) (the natural scale of a bipolar dot).
  float act_clip_scale = 4.0f;
  /// Train a per-hidden-unit activation threshold (bias). Binary nets
  /// without normalization are barely trainable; a learned threshold is
  /// the cheap hardware-compatible substitute.
  bool train_thresholds = true;
  bool lr_plateau_decay = true;
  /// Output logits are multiplied by this before softmax; 0 selects the
  /// fan-in rule 1/sqrt(H). Raw binary dot products span ±H and saturate
  /// the softmax (XNOR-Net-style scaling is the standard remedy).
  float logit_scale = 0.0f;
};

/// The exported two-layer binary network (all-bit inference). Each hidden
/// unit carries an integer activation threshold t_i (a trained bias,
/// quantized at export): h_i = sgn(row_i · x − t_i). Thresholded popcount
/// compare is exactly the hardware primitive HDC accelerators already have.
class DeepBinaryModel final : public train::Model {
 public:
  DeepBinaryModel(std::vector<hv::BitVector> hidden_rows,
                  std::vector<std::int32_t> hidden_thresholds,
                  std::vector<hv::BitVector> output_rows);

  [[nodiscard]] int predict(const hv::BitVector& query) const override;
  [[nodiscard]] double accuracy(
      const hdc::EncodedDataset& dataset) const override;
  [[nodiscard]] std::size_t storage_bits() const noexcept override;

  [[nodiscard]] std::size_t hidden_units() const noexcept {
    return hidden_rows_.size();
  }
  [[nodiscard]] std::size_t class_count() const noexcept {
    return output_rows_.size();
  }

 private:
  std::vector<hv::BitVector> hidden_rows_;        // H x D packed
  std::vector<std::int32_t> hidden_thresholds_;   // per-unit bias
  std::vector<hv::BitVector> output_rows_;        // K x H packed
};

class DeepLeHdcTrainer final : public train::Trainer {
 public:
  explicit DeepLeHdcTrainer(const DeepLeHdcConfig& config = {});

  [[nodiscard]] std::string name() const override { return "DeepLeHDC"; }

 protected:
  [[nodiscard]] train::TrainResult run(
      const hdc::EncodedDataset& train_set,
      const train::TrainOptions& options) const override;

 private:
  DeepLeHdcConfig config_;
};

}  // namespace lehdc::core
