#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fileio.hpp"
#include "util/serial.hpp"

namespace lehdc::core {

namespace {

constexpr char kMagic[4] = {'L', 'H', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

// A checkpoint holds three float matrices plus the order permutation;
// paper scale (10 classes x D=10,000, 60k samples) is ~2 MiB. 4 GiB
// bounds a corrupt length field without constraining real runs.
constexpr std::size_t kMaxPayload = std::size_t{1} << 32;

void append_matrix(util::PayloadWriter& payload, const nn::Matrix& matrix) {
  payload.pod(static_cast<std::uint64_t>(matrix.rows()));
  payload.pod(static_cast<std::uint64_t>(matrix.cols()));
  const auto data = matrix.data();
  payload.bytes(data.data(), data.size() * sizeof(float));
}

nn::Matrix read_matrix(util::PayloadReader& reader,
                       const std::string& path) {
  const auto rows = reader.pod<std::uint64_t>();
  const auto cols = reader.pod<std::uint64_t>();
  const std::uint64_t remaining = reader.remaining();
  if (rows > remaining || cols > remaining ||
      (cols != 0 && rows > (remaining / sizeof(float)) / cols)) {
    throw std::runtime_error(
        "checkpoint matrix header disagrees with payload size in " + path);
  }
  nn::Matrix matrix(rows, cols);
  const auto data = matrix.data();
  reader.bytes(data.data(), data.size() * sizeof(float));
  return matrix;
}

}  // namespace

void save_checkpoint(const LeHdcCheckpoint& checkpoint,
                     const std::string& path) {
  util::PayloadWriter payload;
  payload.pod(checkpoint.dim);
  payload.pod(checkpoint.class_count);
  payload.pod(checkpoint.sample_count);
  payload.pod(checkpoint.batch);
  payload.pod(checkpoint.seed);
  payload.pod(static_cast<std::uint8_t>(checkpoint.use_adam ? 1 : 0));
  payload.pod(checkpoint.next_epoch);
  payload.pod(checkpoint.learning_rate);

  payload.pod(checkpoint.schedule.lr);
  payload.pod(checkpoint.schedule.best_loss);
  payload.pod(static_cast<std::uint64_t>(checkpoint.schedule.bad_epochs));
  payload.pod(static_cast<std::uint64_t>(checkpoint.schedule.decays));
  payload.pod(static_cast<std::uint8_t>(checkpoint.schedule.seen_any ? 1 : 0));

  for (const std::uint64_t word : checkpoint.rng.words) {
    payload.pod(word);
  }
  payload.pod(checkpoint.rng.cached_gaussian);
  payload.pod(
      static_cast<std::uint8_t>(checkpoint.rng.has_cached_gaussian ? 1 : 0));

  append_matrix(payload, checkpoint.latent);
  if (checkpoint.use_adam) {
    append_matrix(payload, checkpoint.adam_m);
    append_matrix(payload, checkpoint.adam_v);
    payload.pod(checkpoint.adam_steps);
  } else {
    append_matrix(payload, checkpoint.sgd_velocity);
  }

  payload.pod(static_cast<std::uint64_t>(checkpoint.order.size()));
  payload.bytes(checkpoint.order.data(),
                checkpoint.order.size() * sizeof(std::uint64_t));

  std::ostringstream buffer(std::ios::binary);
  buffer.write(kMagic, sizeof(kMagic));
  buffer.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  util::write_framed_payload(buffer, payload.str());
  util::atomic_write_file(path, buffer.view());
}

LeHdcCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open checkpoint: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a LHCK checkpoint file: " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) {
    throw std::runtime_error("truncated checkpoint header in " + path);
  }
  if (version != kVersion) {
    throw std::runtime_error("unsupported checkpoint version in " + path);
  }

  const std::string payload = util::read_framed_payload(in, kMaxPayload, path);
  util::PayloadReader reader(payload, path);

  LeHdcCheckpoint checkpoint;
  checkpoint.dim = reader.pod<std::uint64_t>();
  checkpoint.class_count = reader.pod<std::uint64_t>();
  checkpoint.sample_count = reader.pod<std::uint64_t>();
  checkpoint.batch = reader.pod<std::uint64_t>();
  checkpoint.seed = reader.pod<std::uint64_t>();
  checkpoint.use_adam = reader.pod<std::uint8_t>() != 0;
  checkpoint.next_epoch = reader.pod<std::uint64_t>();
  checkpoint.learning_rate = reader.pod<float>();

  checkpoint.schedule.lr = reader.pod<float>();
  checkpoint.schedule.best_loss = reader.pod<double>();
  checkpoint.schedule.bad_epochs =
      static_cast<std::size_t>(reader.pod<std::uint64_t>());
  checkpoint.schedule.decays =
      static_cast<std::size_t>(reader.pod<std::uint64_t>());
  checkpoint.schedule.seen_any = reader.pod<std::uint8_t>() != 0;

  for (std::uint64_t& word : checkpoint.rng.words) {
    word = reader.pod<std::uint64_t>();
  }
  checkpoint.rng.cached_gaussian = reader.pod<double>();
  checkpoint.rng.has_cached_gaussian = reader.pod<std::uint8_t>() != 0;

  checkpoint.latent = read_matrix(reader, path);
  if (checkpoint.use_adam) {
    checkpoint.adam_m = read_matrix(reader, path);
    checkpoint.adam_v = read_matrix(reader, path);
    checkpoint.adam_steps = reader.pod<std::uint64_t>();
  } else {
    checkpoint.sgd_velocity = read_matrix(reader, path);
  }

  const auto order_size = reader.pod<std::uint64_t>();
  if (order_size > reader.remaining() / sizeof(std::uint64_t)) {
    throw std::runtime_error(
        "checkpoint order length disagrees with payload size in " + path);
  }
  checkpoint.order.resize(order_size);
  reader.bytes(checkpoint.order.data(),
               checkpoint.order.size() * sizeof(std::uint64_t));
  reader.expect_done();
  return checkpoint;
}

}  // namespace lehdc::core
