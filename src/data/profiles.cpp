#include "data/profiles.hpp"

#include <algorithm>
#include <cctype>

#include "util/check.hpp"

namespace lehdc::data {

BenchmarkProfile profile(BenchmarkId id) {
  BenchmarkProfile out;
  out.id = id;
  SyntheticConfig& c = out.config;
  switch (id) {
    case BenchmarkId::kMnist:
      // 28x28 grayscale digits, 10 classes, 60k/10k. Clean and fairly
      // separable; modest intra-class variance.
      out.name = "MNIST";
      c.feature_count = 784;
      c.class_count = 10;
      c.train_count = 60000;
      c.test_count = 10000;
      c.prototypes_per_class = 4;
      c.shared_atoms = 8;
      c.class_separation = 0.20;
      c.intra_class_spread = 0.9;
      c.noise_stddev = 0.55;
      c.smoothing_window = 5;
      c.seed = 0x4d4e4953;  // stable per-profile seeds
      break;
    case BenchmarkId::kFashionMnist:
      // Same shape as MNIST but visually harder classes.
      out.name = "Fashion-MNIST";
      c.feature_count = 784;
      c.class_count = 10;
      c.train_count = 60000;
      c.test_count = 10000;
      c.prototypes_per_class = 5;
      c.shared_atoms = 10;
      c.class_separation = 0.13;
      c.intra_class_spread = 0.9;
      c.noise_stddev = 0.65;
      c.smoothing_window = 5;
      c.seed = 0x46415348;
      break;
    case BenchmarkId::kCifar10:
      // 32x32x3 natural images: by far the hardest for single-layer
      // models (paper: baseline 29.6%, LeHDC 46.1%).
      out.name = "CIFAR-10";
      c.feature_count = 3072;
      c.class_count = 10;
      c.train_count = 50000;
      c.test_count = 10000;
      c.prototypes_per_class = 10;
      c.shared_atoms = 30;
      c.class_separation = 0.03;
      c.intra_class_spread = 1.5;
      c.noise_stddev = 1.15;
      c.smoothing_window = 7;
      c.seed = 0x43494641;
      break;
    case BenchmarkId::kUcihar:
      // Smartphone activity recognition: 561 engineered features,
      // 6 classes; quite separable.
      out.name = "UCIHAR";
      c.feature_count = 561;
      c.class_count = 6;
      c.train_count = 7352;
      c.test_count = 2947;
      c.prototypes_per_class = 4;
      c.shared_atoms = 10;
      c.class_separation = 0.03;
      c.intra_class_spread = 1.0;
      c.noise_stddev = 0.80;
      c.smoothing_window = 1;
      c.seed = 0x55434948;
      break;
    case BenchmarkId::kIsolet:
      // Spoken letters: 617 features, 26 classes, few samples per class —
      // the regime where the paper observes multi-model falling below
      // the baseline.
      out.name = "ISOLET";
      c.feature_count = 617;
      c.class_count = 26;
      c.train_count = 6238;
      c.test_count = 1559;
      c.prototypes_per_class = 4;
      c.shared_atoms = 20;
      c.class_separation = 0.15;
      c.intra_class_spread = 1.3;
      c.noise_stddev = 0.35;
      c.smoothing_window = 3;
      c.seed = 0x49534f4c;
      break;
    case BenchmarkId::kPamap:
      // Wearable activity monitoring: few features, strongly multi-modal
      // classes (many activities per subject) — centroid averaging is
      // weak (77.7%) yet the task is nearly linearly separable (LeHDC
      // 99.6%).
      out.name = "PAMAP";
      c.feature_count = 75;
      c.class_count = 5;
      c.train_count = 9600;
      c.test_count = 3000;
      c.prototypes_per_class = 16;
      c.shared_atoms = 4;
      c.class_separation = 0.05;
      c.intra_class_spread = 2.0;
      c.noise_stddev = 0.40;
      c.smoothing_window = 1;
      c.seed = 0x50414d41;
      break;
  }
  return out;
}

std::vector<BenchmarkId> all_benchmarks() {
  return {BenchmarkId::kMnist,  BenchmarkId::kFashionMnist,
          BenchmarkId::kCifar10, BenchmarkId::kUcihar,
          BenchmarkId::kIsolet,  BenchmarkId::kPamap};
}

BenchmarkProfile profile_by_name(const std::string& name) {
  std::string key;
  key.reserve(name.size());
  for (const char ch : name) {
    if (ch == '-' || ch == '_' || ch == ' ') {
      continue;
    }
    key.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(ch))));
  }
  if (key == "mnist") return profile(BenchmarkId::kMnist);
  if (key == "fashionmnist" || key == "fashion") {
    return profile(BenchmarkId::kFashionMnist);
  }
  if (key == "cifar10" || key == "cifar") return profile(BenchmarkId::kCifar10);
  if (key == "ucihar" || key == "har") return profile(BenchmarkId::kUcihar);
  if (key == "isolet") return profile(BenchmarkId::kIsolet);
  if (key == "pamap" || key == "pamap2") return profile(BenchmarkId::kPamap);
  throw std::invalid_argument("unknown benchmark profile: " + name);
}

BenchmarkProfile scaled(BenchmarkProfile profile, double sample_scale,
                        std::size_t max_features) {
  util::expects(sample_scale > 0.0 && sample_scale <= 1.0,
                "sample_scale must be in (0, 1]");
  // Floors keep scaled-down runs statistically meaningful: heavy scaling of
  // an already small corpus (e.g. ISOLET at 5%) would leave only a handful
  // of samples per class and make every strategy collapse together.
  auto scale_count = [sample_scale](std::size_t count, std::size_t floor) {
    const auto scaled_count =
        static_cast<std::size_t>(static_cast<double>(count) * sample_scale);
    return std::min(count, std::max(floor, scaled_count));
  };
  const std::size_t train_floor =
      std::max<std::size_t>(600, 40 * profile.config.class_count);
  profile.config.train_count =
      scale_count(profile.config.train_count, train_floor);
  profile.config.test_count = scale_count(profile.config.test_count, 200);
  if (max_features != 0) {
    profile.config.feature_count =
        std::min(profile.config.feature_count, max_features);
  }
  return profile;
}

}  // namespace lehdc::data
