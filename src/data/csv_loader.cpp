#include "data/csv_loader.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace lehdc::data {

namespace {

// Labels are indices into a dense class array; a parsed label above this
// bound is virtually always a corrupt or mis-configured file (e.g. a
// feature column parsed as the label), and would otherwise make the
// loader allocate per-class state for millions of phantom classes.
constexpr int kMaxLabel = 1 << 20;

std::vector<std::string> split_line(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, delimiter)) {
    cells.push_back(cell);
  }
  return cells;
}

float parse_float(const std::string& cell, const std::string& path,
                  std::size_t line_no, std::size_t column) {
  try {
    std::size_t consumed = 0;
    const float value = std::stof(cell, &consumed);
    // Allow trailing whitespace only.
    for (std::size_t i = consumed; i < cell.size(); ++i) {
      if (!std::isspace(static_cast<unsigned char>(cell[i]))) {
        throw std::invalid_argument("trailing junk");
      }
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("non-numeric CSV cell '" + cell + "' in " +
                                path + " at line " + std::to_string(line_no) +
                                ", column " + std::to_string(column + 1));
  }
}

}  // namespace

Dataset load_csv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open CSV file: " + path);
  }

  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::string line;
  std::size_t line_no = 0;
  std::size_t width = 0;
  int max_label = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line_no <= options.skip_rows || line.empty()) {
      continue;
    }
    const auto cells = split_line(line, options.delimiter);
    if (cells.empty()) {
      continue;
    }
    const std::size_t label_index =
        options.label_column < 0
            ? cells.size() - 1
            : static_cast<std::size_t>(options.label_column);
    if (label_index >= cells.size()) {
      throw std::invalid_argument(
          "label column " + std::to_string(label_index) +
          " beyond row width " + std::to_string(cells.size()) + " in " +
          path + " at line " + std::to_string(line_no));
    }

    if (width == 0) {
      width = cells.size();
    } else if (cells.size() != width) {
      throw std::invalid_argument(
          "inconsistent CSV row width in " + path + " at line " +
          std::to_string(line_no) + ": expected " + std::to_string(width) +
          " cells, found " + std::to_string(cells.size()));
    }

    const int raw_label = static_cast<int>(
        parse_float(cells[label_index], path, line_no, label_index));
    const int label = raw_label - options.label_base;
    if (label < 0) {
      throw std::invalid_argument(
          "label " + std::to_string(raw_label) + " below label_base " +
          std::to_string(options.label_base) + " in " + path + " at line " +
          std::to_string(line_no));
    }
    if (label > kMaxLabel) {
      throw std::invalid_argument(
          "implausible label " + std::to_string(raw_label) + " in " + path +
          " at line " + std::to_string(line_no) +
          " (is the label column configured correctly?)");
    }
    max_label = std::max(max_label, label);

    std::vector<float> features;
    features.reserve(cells.size() - 1);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i == label_index) {
        continue;
      }
      features.push_back(parse_float(cells[i], path, line_no, i));
    }
    rows.push_back(std::move(features));
    labels.push_back(label);
  }

  if (rows.empty()) {
    throw std::runtime_error("CSV file contains no data rows: " + path);
  }

  Dataset out(rows.front().size(), static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out.add_sample(rows[i], labels[i]);
  }
  return out;
}

}  // namespace lehdc::data
