#include "data/dataset.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "util/check.hpp"

namespace lehdc::data {

Dataset::Dataset(std::size_t feature_count, std::size_t class_count)
    : feature_count_(feature_count), class_count_(class_count) {
  util::expects(feature_count > 0, "datasets need at least one feature");
  util::expects(class_count > 0, "datasets need at least one class");
}

void Dataset::add_sample(std::span<const float> features, int label) {
  util::expects(features.size() == feature_count_,
                "sample feature width mismatch");
  util::expects(label >= 0 && static_cast<std::size_t>(label) < class_count_,
                "label out of range");
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

std::span<const float> Dataset::sample(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return {features_.data() + i * feature_count_, feature_count_};
}

std::span<float> Dataset::mutable_sample(std::size_t i) {
  util::expects(i < size(), "sample index out of range");
  return {features_.data() + i * feature_count_, feature_count_};
}

std::span<const float> Dataset::rows(std::size_t begin,
                                     std::size_t count) const {
  util::expects(begin + count <= size(), "sample range out of bounds");
  return {features_.data() + begin * feature_count_, count * feature_count_};
}

int Dataset::label(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return labels_[i];
}

void Dataset::shuffle(util::Rng& rng) {
  const std::size_t n = size();
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    const std::size_t a = i - 1;
    if (a == j) {
      continue;
    }
    std::swap(labels_[a], labels_[j]);
    std::swap_ranges(features_.begin() +
                         static_cast<std::ptrdiff_t>(a * feature_count_),
                     features_.begin() +
                         static_cast<std::ptrdiff_t>((a + 1) * feature_count_),
                     features_.begin() +
                         static_cast<std::ptrdiff_t>(j * feature_count_));
  }
}

std::pair<Dataset, Dataset> Dataset::split(std::size_t head_size) const {
  util::expects(head_size <= size(), "split point beyond dataset size");
  Dataset head(feature_count_, class_count_);
  Dataset tail(feature_count_, class_count_);
  for (std::size_t i = 0; i < size(); ++i) {
    (i < head_size ? head : tail).add_sample(sample(i), labels_[i]);
  }
  return {std::move(head), std::move(tail)};
}

std::pair<float, float> Dataset::value_range() const noexcept {
  if (features_.empty()) {
    return {0.0f, 1.0f};
  }
  const auto [lo, hi] = std::minmax_element(features_.begin(),
                                            features_.end());
  return {*lo, *hi};
}

void Dataset::minmax_normalize(bool per_feature) {
  if (empty()) {
    return;
  }
  if (!per_feature) {
    const auto [lo, hi] = value_range();
    const float span = hi - lo;
    if (span <= 0.0f) {
      std::fill(features_.begin(), features_.end(), 0.0f);
      return;
    }
    for (auto& v : features_) {
      v = (v - lo) / span;
    }
    return;
  }
  for (std::size_t f = 0; f < feature_count_; ++f) {
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    for (std::size_t i = 0; i < size(); ++i) {
      const float v = features_[i * feature_count_ + f];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const float span = hi - lo;
    for (std::size_t i = 0; i < size(); ++i) {
      float& v = features_[i * feature_count_ + f];
      v = span > 0.0f ? (v - lo) / span : 0.0f;
    }
  }
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> histogram(class_count_, 0);
  for (const int label : labels_) {
    ++histogram[static_cast<std::size_t>(label)];
  }
  return histogram;
}

std::string Dataset::summary() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "n=%zu features=%zu classes=%zu", size(), feature_count_,
                class_count_);
  return buffer;
}

}  // namespace lehdc::data
