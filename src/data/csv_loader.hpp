// Loader for numeric CSV datasets (UCIHAR / ISOLET / PAMAP distributions are
// commonly shipped as delimiter-separated text).
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace lehdc::data {

struct CsvOptions {
  char delimiter = ',';
  /// Column holding the integer class label; −1 means the last column.
  int label_column = -1;
  /// Skip this many leading lines (headers).
  std::size_t skip_rows = 0;
  /// Labels in the file start at this value (e.g. 1 for 1-based labels);
  /// they are shifted down to 0-based.
  int label_base = 0;
};

/// Parses the file into a Dataset; the class count is inferred as
/// (max label + 1). Throws std::runtime_error on I/O failure and
/// std::invalid_argument on malformed rows (inconsistent width,
/// non-numeric cells, labels below label_base).
[[nodiscard]] Dataset load_csv(const std::string& path,
                               const CsvOptions& options = {});

}  // namespace lehdc::data
