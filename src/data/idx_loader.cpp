#include "data/idx_loader.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace lehdc::data {

namespace {

std::uint32_t read_be32(std::istream& in, const std::string& path) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) {
    throw std::runtime_error("truncated IDX header in " + path);
  }
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

std::ifstream open_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open IDX file: " + path);
  }
  return in;
}

}  // namespace

Dataset load_idx(const std::string& image_path, const std::string& label_path,
                 std::size_t class_count) {
  constexpr std::uint32_t kImageMagic = 0x00000803;
  constexpr std::uint32_t kLabelMagic = 0x00000801;

  std::ifstream images = open_binary(image_path);
  if (read_be32(images, image_path) != kImageMagic) {
    throw std::runtime_error("bad IDX image magic in " + image_path);
  }
  const std::uint32_t image_count = read_be32(images, image_path);
  const std::uint32_t rows = read_be32(images, image_path);
  const std::uint32_t cols = read_be32(images, image_path);
  const std::size_t pixels = static_cast<std::size_t>(rows) * cols;
  if (pixels == 0) {
    throw std::runtime_error("IDX image file has zero-sized images: " +
                             image_path);
  }

  std::ifstream labels = open_binary(label_path);
  if (read_be32(labels, label_path) != kLabelMagic) {
    throw std::runtime_error("bad IDX label magic in " + label_path);
  }
  const std::uint32_t label_count = read_be32(labels, label_path);
  util::expects(label_count == image_count,
                "IDX image/label sample counts disagree");

  Dataset out(pixels, class_count);
  std::vector<unsigned char> pixel_buffer(pixels);
  std::vector<float> row(pixels);
  for (std::uint32_t s = 0; s < image_count; ++s) {
    images.read(reinterpret_cast<char*>(pixel_buffer.data()),
                static_cast<std::streamsize>(pixels));
    char label_byte = 0;
    labels.read(&label_byte, 1);
    if (!images || !labels) {
      throw std::runtime_error("truncated IDX payload");
    }
    for (std::size_t i = 0; i < pixels; ++i) {
      row[i] = static_cast<float>(pixel_buffer[i]) / 255.0f;
    }
    const int label = static_cast<int>(static_cast<unsigned char>(label_byte));
    util::expects(static_cast<std::size_t>(label) < class_count,
                  "IDX label exceeds class_count");
    out.add_sample(row, label);
  }
  return out;
}

}  // namespace lehdc::data
