#include "data/idx_loader.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace lehdc::data {

namespace {

std::uint32_t read_be32(std::istream& in, const std::string& path) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) {
    throw std::runtime_error("truncated IDX header in " + path);
  }
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

std::ifstream open_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open IDX file: " + path);
  }
  return in;
}

/// Total byte size of the stream; leaves the read position untouched.
std::uint64_t stream_size(std::ifstream& in, const std::string& path) {
  const auto pos = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end < 0 || !in) {
    throw std::runtime_error("cannot determine size of IDX file: " + path);
  }
  return static_cast<std::uint64_t>(end);
}

/// Validates that the header-declared payload (count * item_bytes after a
/// header_bytes-byte header) matches the actual file size exactly — before
/// any count-sized allocation happens, so a corrupt header can neither
/// trigger a huge allocation nor a silent short read. The division-based
/// comparison cannot overflow, unlike count * item_bytes.
void check_declared_size(std::uint64_t actual, std::uint64_t header_bytes,
                         std::uint64_t count, std::uint64_t item_bytes,
                         const std::string& what, const std::string& path) {
  if (actual < header_bytes) {
    throw std::runtime_error("truncated IDX header in " + path);
  }
  const std::uint64_t payload = actual - header_bytes;
  const bool consistent =
      count == 0 ? payload == 0
                 : payload % count == 0 && payload / count == item_bytes;
  if (!consistent) {
    throw std::runtime_error(
        "IDX header disagrees with file size in " + path + ": declares " +
        std::to_string(count) + " " + what + " of " +
        std::to_string(item_bytes) + " bytes after a " +
        std::to_string(header_bytes) + "-byte header, but " +
        std::to_string(payload) + " payload bytes are present");
  }
}

}  // namespace

Dataset load_idx(const std::string& image_path, const std::string& label_path,
                 std::size_t class_count) {
  constexpr std::uint32_t kImageMagic = 0x00000803;
  constexpr std::uint32_t kLabelMagic = 0x00000801;
  constexpr std::uint64_t kImageHeaderBytes = 16;
  constexpr std::uint64_t kLabelHeaderBytes = 8;

  std::ifstream images = open_binary(image_path);
  if (read_be32(images, image_path) != kImageMagic) {
    throw std::runtime_error("bad IDX image magic in " + image_path);
  }
  const std::uint32_t image_count = read_be32(images, image_path);
  const std::uint32_t rows = read_be32(images, image_path);
  const std::uint32_t cols = read_be32(images, image_path);
  // u32 * u32 cannot overflow a u64.
  const std::uint64_t pixels = static_cast<std::uint64_t>(rows) * cols;
  if (pixels == 0) {
    throw std::runtime_error("IDX image file has zero-sized images: " +
                             image_path);
  }
  check_declared_size(stream_size(images, image_path), kImageHeaderBytes,
                      image_count, pixels, "images", image_path);

  std::ifstream labels = open_binary(label_path);
  if (read_be32(labels, label_path) != kLabelMagic) {
    throw std::runtime_error("bad IDX label magic in " + label_path);
  }
  const std::uint32_t label_count = read_be32(labels, label_path);
  if (label_count != image_count) {
    throw std::runtime_error(
        "IDX image/label sample counts disagree: " + image_path +
        " declares " + std::to_string(image_count) + ", " + label_path +
        " declares " + std::to_string(label_count));
  }
  check_declared_size(stream_size(labels, label_path), kLabelHeaderBytes,
                      label_count, 1, "labels", label_path);

  Dataset out(static_cast<std::size_t>(pixels), class_count);
  std::vector<unsigned char> pixel_buffer(pixels);
  std::vector<float> row(pixels);
  for (std::uint32_t s = 0; s < image_count; ++s) {
    images.read(reinterpret_cast<char*>(pixel_buffer.data()),
                static_cast<std::streamsize>(pixels));
    char label_byte = 0;
    labels.read(&label_byte, 1);
    if (!images || !labels) {
      throw std::runtime_error(
          "truncated IDX payload in " + (!images ? image_path : label_path) +
          " at sample " + std::to_string(s) + " (byte offset " +
          std::to_string(!images ? kImageHeaderBytes + s * pixels
                                 : kLabelHeaderBytes + s) +
          ")");
    }
    for (std::size_t i = 0; i < pixels; ++i) {
      row[i] = static_cast<float>(pixel_buffer[i]) / 255.0f;
    }
    const int label = static_cast<int>(static_cast<unsigned char>(label_byte));
    if (static_cast<std::size_t>(label) >= class_count) {
      throw std::runtime_error(
          "IDX label " + std::to_string(label) + " exceeds class_count " +
          std::to_string(class_count) + " in " + label_path +
          " at sample " + std::to_string(s));
    }
    out.add_sample(row, label);
  }
  return out;
}

}  // namespace lehdc::data
