// Synthetic prototype-mixture dataset generator.
//
// Stand-in for the six evaluation corpora of Sec. 5 (none of which ship
// with this repository). Each class is a mixture of several prototype
// sub-clusters; prototypes are built from a shared atom dictionary plus a
// class-specific direction, which yields classes that are *linearly*
// separable in expectation but poorly centroid-separable — exactly the
// regime where the paper's learning-based training (LeHDC) beats the
// averaging/retraining heuristics, and where multi-model ensembles need
// many samples. Difficulty is controlled by the knobs documented on each
// field; the per-benchmark presets live in profiles.hpp.
#pragma once

#include <cstddef>
#include <cstdint>

#include "data/dataset.hpp"

namespace lehdc::data {

struct SyntheticConfig {
  std::size_t feature_count = 64;
  std::size_t class_count = 4;
  std::size_t train_count = 1000;
  std::size_t test_count = 250;

  /// Sub-clusters per class; > 1 makes classes multi-modal, which hurts
  /// centroid-style (averaging) training the most.
  std::size_t prototypes_per_class = 3;

  /// Shared dictionary atoms mixed into every prototype; more shared atoms
  /// means more inter-class overlap (harder).
  std::size_t shared_atoms = 8;

  /// Strength of the class-specific direction added to every prototype of a
  /// class, relative to the shared-atom background (higher = easier).
  double class_separation = 0.8;

  /// Spread of prototypes around their class direction (higher = more
  /// intra-class variance).
  double intra_class_spread = 0.5;

  /// Per-sample i.i.d. Gaussian observation noise.
  double noise_stddev = 0.25;

  /// Moving-average window over adjacent features (images have smooth,
  /// locally-correlated pixels; 1 disables smoothing).
  std::size_t smoothing_window = 1;

  std::uint64_t seed = 42;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generates a train/test pair from the same class prototypes (test samples
/// are fresh draws, never copies of training samples). All feature values
/// land in [0, 1]. Throws std::invalid_argument on degenerate configs.
[[nodiscard]] TrainTestSplit generate_synthetic(const SyntheticConfig& config);

}  // namespace lehdc::data
