// Plain in-memory datasets: row-major feature matrices with integer labels.
//
// This is the substrate standing in for the benchmark corpora of Sec. 5
// (MNIST, Fashion-MNIST, CIFAR-10, UCIHAR, ISOLET, PAMAP). Real data can be
// loaded through idx_loader / csv_loader; synthetic.hpp generates
// shape-compatible stand-ins when the originals are unavailable.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lehdc::data {

class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with the given schema.
  Dataset(std::size_t feature_count, std::size_t class_count);

  [[nodiscard]] std::size_t feature_count() const noexcept {
    return feature_count_;
  }
  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_count_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  /// Appends one sample. Preconditions: features.size() == feature_count(),
  /// 0 <= label < class_count().
  void add_sample(std::span<const float> features, int label);

  /// Feature row of sample i. Precondition: i < size().
  [[nodiscard]] std::span<const float> sample(std::size_t i) const;
  [[nodiscard]] std::span<float> mutable_sample(std::size_t i);

  /// Contiguous row-major feature rows of samples [begin, begin + count) —
  /// the layout block encoders consume. Precondition: begin + count <= size().
  [[nodiscard]] std::span<const float> rows(std::size_t begin,
                                            std::size_t count) const;

  [[nodiscard]] int label(std::size_t i) const;

  [[nodiscard]] std::span<const int> labels() const noexcept {
    return labels_;
  }

  /// In-place random permutation of the samples.
  void shuffle(util::Rng& rng);

  /// Splits off the first `head_size` samples into the first returned
  /// dataset and the remainder into the second. Precondition:
  /// head_size <= size().
  [[nodiscard]] std::pair<Dataset, Dataset> split(std::size_t head_size) const;

  /// Global min/max over every feature value; {0, 1} for an empty dataset.
  [[nodiscard]] std::pair<float, float> value_range() const noexcept;

  /// Rescales all feature values into [0, 1]. With per_feature, each feature
  /// column is normalized by its own range (constant columns map to 0).
  void minmax_normalize(bool per_feature = false);

  /// Per-class sample counts.
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Human-readable one-line summary ("n=...  features=...  classes=...").
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t feature_count_ = 0;
  std::size_t class_count_ = 0;
  std::vector<float> features_;  // row-major, size() * feature_count_
  std::vector<int> labels_;
};

}  // namespace lehdc::data
