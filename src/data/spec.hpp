// Data-spec strings: one textual syntax for every dataset source the
// command-line tools accept.
//
//   csv:<path>             numeric CSV, label in the last column
//   idx:<images>:<labels>  MNIST-format IDX pair
//   synth:<profile>        built-in synthetic benchmark profile
//                          (mnist, fashion-mnist, cifar-10, ucihar,
//                           isolet, pamap), scaled by `scale`
//
// Shared by lehdc_cli and lehdc_serve so the two tools can never drift on
// what a spec means.
#pragma once

#include <cstdint>
#include <string>

#include "data/synthetic.hpp"

namespace lehdc::data {

/// Parses `spec` and loads it into a train/test pair. For csv:/idx:
/// sources the file is shuffled (seeded) and split by `holdout`;
/// `shuffle = false` preserves file order (batch prediction must emit
/// labels in input order) — synth: sources generate their own split and
/// ignore `holdout`/`shuffle`. Throws std::invalid_argument on a
/// malformed spec and std::runtime_error on a load failure.
[[nodiscard]] TrainTestSplit load_spec(const std::string& spec, double scale,
                                       double holdout, std::uint64_t seed,
                                       bool shuffle = true);

}  // namespace lehdc::data
