#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::data {

namespace {

/// Box filter over adjacent features, clamped at the edges.
void smooth(std::vector<double>& row, std::size_t window) {
  if (window <= 1) {
    return;
  }
  const std::size_t n = row.size();
  std::vector<double> out(n, 0.0);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window) / 2;
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::ptrdiff_t d = -half; d <= half; ++d) {
      const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + d;
      if (j >= 0 && j < static_cast<std::ptrdiff_t>(n)) {
        sum += row[static_cast<std::size_t>(j)];
        ++count;
      }
    }
    out[i] = sum / static_cast<double>(count);
  }
  row = std::move(out);
}

}  // namespace

TrainTestSplit generate_synthetic(const SyntheticConfig& config) {
  util::expects(config.feature_count > 0, "feature_count must be positive");
  util::expects(config.class_count >= 2, "need at least two classes");
  util::expects(config.prototypes_per_class > 0,
                "need at least one prototype per class");
  util::expects(config.shared_atoms > 0, "need at least one shared atom");

  util::Rng rng(config.seed);
  const std::size_t n = config.feature_count;

  // Shared atom dictionary: smooth random feature patterns every class
  // draws from.
  std::vector<std::vector<double>> atoms(config.shared_atoms);
  for (auto& atom : atoms) {
    atom.resize(n);
    for (auto& v : atom) {
      v = rng.next_gaussian();
    }
    smooth(atom, config.smoothing_window);
  }

  // Class-specific directions.
  std::vector<std::vector<double>> class_dirs(config.class_count);
  for (auto& dir : class_dirs) {
    dir.resize(n);
    for (auto& v : dir) {
      v = rng.next_gaussian();
    }
    smooth(dir, config.smoothing_window);
  }

  // Prototypes: shared-atom mixture + class direction + per-prototype
  // offset.
  const std::size_t protos_total =
      config.class_count * config.prototypes_per_class;
  std::vector<std::vector<double>> prototypes(protos_total);
  for (std::size_t k = 0; k < config.class_count; ++k) {
    for (std::size_t p = 0; p < config.prototypes_per_class; ++p) {
      auto& proto = prototypes[k * config.prototypes_per_class + p];
      proto.assign(n, 0.0);
      // Random convex mixture of shared atoms (the inter-class overlap).
      double weight_sum = 0.0;
      std::vector<double> weights(config.shared_atoms);
      for (auto& w : weights) {
        w = rng.next_double();
        weight_sum += w;
      }
      for (std::size_t a = 0; a < config.shared_atoms; ++a) {
        const double w = weights[a] / weight_sum;
        for (std::size_t i = 0; i < n; ++i) {
          proto[i] += w * atoms[a][i];
        }
      }
      // Class direction and prototype-specific offset.
      std::vector<double> offset(n);
      for (auto& v : offset) {
        v = rng.next_gaussian();
      }
      smooth(offset, config.smoothing_window);
      for (std::size_t i = 0; i < n; ++i) {
        proto[i] += config.class_separation * class_dirs[k][i] +
                    config.intra_class_spread * offset[i];
      }
    }
  }

  const auto draw_sample = [&](std::size_t class_id,
                               std::vector<float>& out_row) {
    const std::size_t p = rng.next_below(config.prototypes_per_class);
    const auto& proto =
        prototypes[class_id * config.prototypes_per_class + p];
    out_row.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Squash to [0, 1] with a logistic so that values behave like
      // normalized sensor/pixel intensities.
      const double raw =
          proto[i] + config.noise_stddev * rng.next_gaussian();
      out_row[i] = static_cast<float>(1.0 / (1.0 + std::exp(-raw)));
    }
  };

  TrainTestSplit split{Dataset(n, config.class_count),
                       Dataset(n, config.class_count)};
  std::vector<float> row;
  for (std::size_t s = 0; s < config.train_count; ++s) {
    const std::size_t k = s % config.class_count;  // balanced classes
    draw_sample(k, row);
    split.train.add_sample(row, static_cast<int>(k));
  }
  for (std::size_t s = 0; s < config.test_count; ++s) {
    const std::size_t k = s % config.class_count;
    draw_sample(k, row);
    split.test.add_sample(row, static_cast<int>(k));
  }
  split.train.shuffle(rng);
  split.test.shuffle(rng);
  return split;
}

}  // namespace lehdc::data
