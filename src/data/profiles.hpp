// Benchmark profiles: synthetic stand-ins shaped like the six corpora the
// paper evaluates in Sec. 5 (Table 1).
//
// Feature/class/sample counts match the real datasets; the difficulty knobs
// (prototype count, separation, noise) are tuned so the qualitative
// structure of Table 1 reproduces: CIFAR-like hardest, PAMAP-like highly multi-modal
// (weak centroid baseline, near-perfect discriminative accuracy), ISOLET-like
// many-classes/few-samples (multi-model underperforms).
#pragma once

#include <string>
#include <vector>

#include "data/synthetic.hpp"

namespace lehdc::data {

enum class BenchmarkId {
  kMnist,
  kFashionMnist,
  kCifar10,
  kUcihar,
  kIsolet,
  kPamap,
};

struct BenchmarkProfile {
  BenchmarkId id = BenchmarkId::kMnist;
  std::string name;          // e.g. "MNIST" (printed in table rows)
  SyntheticConfig config;    // full paper-scale shape
};

/// The profile for one benchmark at full scale.
[[nodiscard]] BenchmarkProfile profile(BenchmarkId id);

/// All six benchmarks in the paper's column order.
[[nodiscard]] std::vector<BenchmarkId> all_benchmarks();

/// Lookup by case-insensitive name ("mnist", "fashion-mnist", "cifar-10",
/// "ucihar", "isolet", "pamap"); throws std::invalid_argument if unknown.
[[nodiscard]] BenchmarkProfile profile_by_name(const std::string& name);

/// Shrinks sample counts by `sample_scale` (0 < scale <= 1) and optionally
/// caps the feature count (0 = keep), preserving at least 10 samples per
/// split. Used by harness default (fast) modes.
[[nodiscard]] BenchmarkProfile scaled(BenchmarkProfile profile,
                                      double sample_scale,
                                      std::size_t max_features = 0);

}  // namespace lehdc::data
