#include "data/spec.hpp"

#include <stdexcept>
#include <utility>

#include "data/csv_loader.hpp"
#include "data/idx_loader.hpp"
#include "data/profiles.hpp"
#include "util/rng.hpp"

namespace lehdc::data {

TrainTestSplit load_spec(const std::string& spec, double scale,
                         double holdout, std::uint64_t seed, bool shuffle) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument(
        "data spec must look like csv:<path>, idx:<imgs>:<labels> or "
        "synth:<profile>");
  }
  const std::string kind = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);

  if (kind == "synth") {
    const auto profile = scaled(profile_by_name(rest), scale);
    return generate_synthetic(profile.config);
  }

  Dataset all(1, 2);
  if (kind == "csv") {
    all = load_csv(rest);
  } else if (kind == "idx") {
    const auto second = rest.find(':');
    if (second == std::string::npos) {
      throw std::invalid_argument("idx spec needs idx:<images>:<labels>");
    }
    all = load_idx(rest.substr(0, second), rest.substr(second + 1));
  } else {
    throw std::invalid_argument("unknown data spec kind: " + kind);
  }

  if (shuffle) {
    util::Rng rng(seed);
    all.shuffle(rng);
  }
  const auto train_size = static_cast<std::size_t>(
      static_cast<double>(all.size()) * (1.0 - holdout));
  auto [train, test] = all.split(train_size);
  return TrainTestSplit{std::move(train), std::move(test)};
}

}  // namespace lehdc::data
