// Loader for the IDX binary format used by MNIST / Fashion-MNIST
// distributions (uncompressed .idx3-ubyte / .idx1-ubyte files).
//
// When the genuine corpora are available on disk, the harnesses can run on
// them instead of the synthetic stand-ins; the loader normalizes pixel
// values to [0, 1].
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace lehdc::data {

/// Reads an IDX image file (magic 0x00000803) and an IDX label file
/// (magic 0x00000801) into a Dataset with class_count classes.
/// Throws std::runtime_error on I/O errors or malformed headers, and
/// std::invalid_argument if image/label sample counts disagree.
[[nodiscard]] Dataset load_idx(const std::string& image_path,
                               const std::string& label_path,
                               std::size_t class_count = 10);

}  // namespace lehdc::data
