#include "chaos/transport.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/clock.hpp"
#include "serve/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/tenant.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::chaos {

const char* transport_invariant_name(TransportInvariant invariant) noexcept {
  switch (invariant) {
    case TransportInvariant::kBoundedConnectionMemory:
      return "bounded_connection_memory";
    case TransportInvariant::kTypedRejectsOnly:
      return "typed_rejects_only";
    case TransportInvariant::kNoCrossConnectionBleed:
      return "no_cross_connection_bleed";
  }
  return "unknown";
}

namespace {

class ScopedMetricsEnabled {
 public:
  ScopedMetricsEnabled() : was_(obs::enabled()) { obs::set_enabled(true); }
  ~ScopedMetricsEnabled() { obs::set_enabled(was_); }
  ScopedMetricsEnabled(const ScopedMetricsEnabled&) = delete;
  ScopedMetricsEnabled& operator=(const ScopedMetricsEnabled&) = delete;

 private:
  bool was_;
};

struct TenantModel {
  std::string id;
  std::shared_ptr<const core::Pipeline> pipeline;
  data::Dataset queries;
};

TenantModel build_tenant(const TransportScenarioConfig& config,
                         std::string id, std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = config.feature_count;
  synth.class_count = config.class_count;
  synth.train_count = config.train_count;
  synth.test_count = config.query_pool;
  synth.class_separation = 1.2;
  synth.noise_stddev = 0.25;
  synth.seed = seed;
  auto split = data::generate_synthetic(synth);
  core::PipelineConfig pipeline_config;
  pipeline_config.dim = config.dim;
  pipeline_config.strategy = core::Strategy::kBaseline;
  pipeline_config.seed = seed;
  auto pipeline = std::make_shared<core::Pipeline>(pipeline_config);
  pipeline->fit(split.train);
  return {std::move(id), std::move(pipeline), std::move(split.test)};
}

/// One slot in the connection pool. Churn replaces the Connection object
/// (and its serial, ids, accounting) but the slot keeps its remaining
/// send schedule — the replacement inherits the traffic, not the state.
struct Slot {
  std::size_t index = 0;
  std::string tenant;
  const data::Dataset* queries = nullptr;
  std::vector<std::uint64_t> send_times;  // ascending
  std::size_t next_send = 0;

  // Per-Connection-object state (reset on churn).
  std::unique_ptr<serve::transport::Connection> conn;
  std::uint64_t serial = 0;
  std::string network;  // bytes sent but not yet fed (kernel buffer stand-in)
  serve::FrameDecoder response_decoder{serve::make_response_decoder("slot")};
  std::set<std::uint64_t> outstanding;
  std::size_t sent = 0;
  std::size_t matched = 0;
  bool slow = false;
};

std::vector<float> features_of(const data::Dataset& dataset, std::size_t i) {
  const auto row = dataset.sample(i);
  return {row.begin(), row.end()};
}

}  // namespace

TransportScenarioResult run_transport_scenario(
    const TransportScenarioConfig& config,
    std::span<const TransportInvariant> invariants) {
  util::expects(config.connections > 0, "scenario needs connections");
  util::expects(config.chunk_bytes > 0, "chunk_bytes must be positive");
  util::expects(!invariants.empty(),
                "a transport scenario must assert at least one invariant");

  const ScopedMetricsEnabled metrics_on;
  TransportScenarioResult result;
  result.name = config.name;

  // Two tenants with distinct models; connections alternate between them
  // so a bled frame also crosses a tenant boundary whenever it crosses an
  // adjacent connection.
  std::vector<TenantModel> tenants;
  tenants.push_back(build_tenant(config, "acme", config.seed * 2 + 11));
  tenants.push_back(build_tenant(config, "globex", config.seed * 2 + 23));

  serve::FakeClock clock(0);
  serve::ModelRegistry registry;
  serve::ServerConfig server_config;
  server_config.batcher = config.batcher;
  server_config.default_tenant = tenants[0].id;
  server_config.manual_dispatch = true;
  for (const TenantModel& tenant : tenants) {
    registry.bind(tenant.id, tenant.pipeline);
  }
  serve::InferenceServer server(registry, server_config, &clock);

  util::Rng master(config.seed);
  std::uint64_t next_serial = 1;

  // The per-connection memory caps the invariant asserts: the decode
  // buffer may hold one turn's feed budget plus one partial frame, the
  // write backlog the cap plus every inflight response landing at once.
  const std::size_t max_request_frame =
      8 + 8 + 8 + 2 + serve::kMaxTenantIdBytes + 4 +
      config.feature_count * sizeof(float);
  const std::size_t max_response_frame =
      8 + 8 + 1 + 4 + 4 + 8 + 2 + serve::kMaxTenantIdBytes;
  const std::size_t read_buffer_bound =
      config.connection.read_budget_bytes + max_request_frame;
  const std::size_t write_backlog_bound =
      config.connection.write_backlog_max_bytes +
      config.connection.max_inflight * max_response_frame;

  const auto open_connection = [&](Slot& slot) {
    slot.serial = next_serial++;
    slot.conn = std::make_unique<serve::transport::Connection>(
        slot.serial, server, config.connection, clock.now_us());
    slot.network.clear();
    slot.response_decoder =
        serve::make_response_decoder("slot " + std::to_string(slot.index));
    slot.outstanding.clear();
    slot.sent = 0;
    slot.matched = 0;
    ++result.connections_opened;
  };

  std::vector<Slot> slots(config.connections);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    slot.index = i;
    slot.tenant = tenants[i % tenants.size()].id;
    slot.queries = &tenants[i % tenants.size()].queries;
    slot.slow = config.slow_reader_every != 0 &&
                (i + 1) % config.slow_reader_every == 0;
    ArrivalConfig arrivals = config.arrivals;
    arrivals.seed = master.derive_seed(i + 1);
    slot.send_times = arrival_times(arrivals);
    if (slot.send_times.size() > config.requests_per_connection) {
      slot.send_times.resize(config.requests_per_connection);
    }
    while (slot.send_times.size() < config.requests_per_connection) {
      slot.send_times.push_back(config.arrivals.horizon_us +
                                1000 * (slot.send_times.size() + 1));
    }
    open_connection(slot);
  }

  // Decodes and validates every response frame the reader drained.
  const auto validate_responses = [&](Slot& slot, std::string_view bytes) {
    slot.response_decoder.feed(bytes);
    serve::FrameDecoder::Frame frame;
    while (slot.response_decoder.next(&frame)) {
      const serve::Response response = serve::decode_response_payload(
          frame.payload, frame.version,
          "slot " + std::to_string(slot.index));
      if (slot.outstanding.erase(response.id) == 0) {
        ++result.bleed_errors;
      } else {
        ++slot.matched;
      }
      if (frame.version == 2 && response.tenant != slot.tenant) {
        ++result.bleed_errors;
      }
      if (response.ok()) {
        ++result.responses_ok;
      } else {
        const auto status = static_cast<std::uint8_t>(response.error);
        if (status == 0 ||
            status > static_cast<std::uint8_t>(serve::Reject::kBadRequest) ||
            response.label != -1) {
          ++result.untyped;
        }
        ++result.responses_rejected;
      }
    }
  };

  // One simulation turn at the current virtual time: feed due bytes under
  // the read budget, pump the server, encode ready responses, and let
  // non-slow readers drain their write stream in awkward chunks.
  const auto turn = [&](bool drain) {
    const std::uint64_t now = clock.now_us();
    for (Slot& slot : slots) {
      std::size_t fed = 0;
      while (fed < config.connection.read_budget_bytes &&
             !slot.network.empty() && slot.conn->wants_read()) {
        const std::size_t n = std::min(
            {config.chunk_bytes, slot.network.size(),
             config.connection.read_budget_bytes - fed});
        const bool alive =
            slot.conn->on_bytes({slot.network.data(), n}, now);
        util::ensures(alive, "well-formed frames must never fail decode");
        slot.network.erase(0, n);
        fed += n;
      }
      server.run_until_idle();
      slot.conn->pump_responses(now);
      if (!slot.slow || drain) {
        while (true) {
          const std::string_view pending = slot.conn->pending_write();
          if (pending.empty()) {
            break;
          }
          const std::size_t n = std::min(config.chunk_bytes, pending.size());
          validate_responses(slot, pending.substr(0, n));
          slot.conn->on_written(n, now);
        }
      }
      result.peak_read_buffer_bytes =
          std::max(result.peak_read_buffer_bytes,
                   slot.conn->buffered_read_bytes());
      result.peak_write_backlog_bytes =
          std::max(result.peak_write_backlog_bytes,
                   slot.conn->write_backlog_bytes());
    }
  };

  util::Rng churn_rng(master.derive_seed(0xc0441));
  std::uint64_t next_churn =
      config.churn_every_us > 0 ? config.churn_every_us
                                : serve::MicroBatcher::kNever;
  std::uint64_t request_seq = 0;

  const std::size_t total_sends =
      config.connections * config.requests_per_connection;
  std::size_t iterations = 0;
  const std::size_t max_iterations = total_sends * 8 + 4096;

  while (true) {
    if (++iterations > max_iterations) {
      result.violations.push_back(result.name +
                                  ": event loop stalled (runner bug)");
      break;
    }
    std::uint64_t t = serve::MicroBatcher::kNever;
    bool sends_pending = false;
    for (const Slot& slot : slots) {
      if (slot.next_send < slot.send_times.size()) {
        sends_pending = true;
        t = std::min(t, slot.send_times[slot.next_send]);
      }
    }
    t = std::min(t, server.next_event_us());
    if (next_churn <= config.arrivals.horizon_us) {
      t = std::min(t, next_churn);
    }
    if (!sends_pending || t == serve::MicroBatcher::kNever) {
      break;
    }
    t = std::max(t, clock.now_us());
    clock.set_us(t);

    // Churn wave: drop a deterministic subset abruptly — often mid-frame
    // and with requests still queued server-side — and open replacements.
    while (next_churn <= t) {
      const std::size_t victims = std::max<std::size_t>(
          1, static_cast<std::size_t>(config.churn_fraction *
                                      static_cast<double>(slots.size())));
      for (std::size_t v = 0; v < victims; ++v) {
        Slot& slot = slots[churn_rng.next_below(slots.size())];
        result.sent_dropped += slot.sent;
        ++result.connections_dropped;
        open_connection(slot);
      }
      next_churn += config.churn_every_us;
    }

    // Place due request frames on each slot's simulated network.
    for (Slot& slot : slots) {
      while (slot.next_send < slot.send_times.size() &&
             slot.send_times[slot.next_send] <= t) {
        serve::WireRequest request;
        request.id = ++request_seq;
        request.version = static_cast<int>(slot.next_send % 2) + 1;
        request.tenant = slot.tenant;
        request.deadline_budget_us = config.deadline_budget_us;
        request.features = features_of(
            *slot.queries, slot.sent % slot.queries->size());
        slot.network += serve::encode_request(request);
        slot.outstanding.insert(request.id);
        ++slot.sent;
        ++slot.next_send;
      }
    }
    turn(/*drain=*/false);
  }

  // Drain: slow readers wake up, the batcher's wait windows elapse, and
  // every byte still in flight completes its round trip.
  std::size_t drain_rounds = 0;
  const auto drained = [&] {
    for (const Slot& slot : slots) {
      if (!slot.network.empty() || !slot.outstanding.empty() ||
          !slot.conn->pending_write().empty()) {
        return false;
      }
    }
    return true;
  };
  while (!drained() && drain_rounds++ < total_sends + 1024) {
    clock.advance_us(config.batcher.max_wait_us + 1);
    turn(/*drain=*/true);
  }
  if (!drained()) {
    result.violations.push_back(result.name +
                                ": drain did not converge (lost frames?)");
  }
  server.shutdown();

  for (const Slot& slot : slots) {
    result.sent_live += slot.sent;
    result.sheds += slot.conn->sheds();
  }

  // ------------------------------------------------- invariant checks --
  const auto violate = [&](TransportInvariant invariant,
                           const std::string& detail) {
    result.violations.push_back(
        std::string(transport_invariant_name(invariant)) + ": " + detail);
  };
  for (const TransportInvariant invariant : invariants) {
    switch (invariant) {
      case TransportInvariant::kBoundedConnectionMemory:
        if (result.peak_read_buffer_bytes > read_buffer_bound) {
          violate(invariant,
                  "peak decode buffer " +
                      std::to_string(result.peak_read_buffer_bytes) +
                      " exceeds bound " + std::to_string(read_buffer_bound));
        }
        if (result.peak_write_backlog_bytes > write_backlog_bound) {
          violate(invariant,
                  "peak write backlog " +
                      std::to_string(result.peak_write_backlog_bytes) +
                      " exceeds bound " +
                      std::to_string(write_backlog_bound));
        }
        break;
      case TransportInvariant::kTypedRejectsOnly: {
        if (result.untyped > 0) {
          violate(invariant, std::to_string(result.untyped) +
                                 " responses with untyped/inconsistent "
                                 "reject state");
        }
        std::size_t matched_live = 0;
        for (const Slot& slot : slots) {
          matched_live += slot.matched;
        }
        if (matched_live != result.sent_live) {
          violate(invariant,
                  "sent " + std::to_string(result.sent_live) +
                      " on surviving connections but matched " +
                      std::to_string(matched_live) + " responses");
        }
        break;
      }
      case TransportInvariant::kNoCrossConnectionBleed:
        if (result.bleed_errors > 0) {
          violate(invariant,
                  std::to_string(result.bleed_errors) +
                      " responses with foreign id or tenant echo");
        }
        break;
    }
  }

  // ------------------------------------------------------------ report --
  obs::Registry local;
  local.counter("chaos.transport.sent").add(result.sent_live);
  local.counter("chaos.transport.sent_dropped").add(result.sent_dropped);
  local.counter("chaos.transport.responses_ok").add(result.responses_ok);
  local.counter("chaos.transport.responses_rejected")
      .add(result.responses_rejected);
  local.counter("chaos.transport.sheds").add(result.sheds);
  local.counter("chaos.transport.bleed_errors").add(result.bleed_errors);
  local.counter("chaos.transport.connections_opened")
      .add(result.connections_opened);
  local.counter("chaos.transport.connections_dropped")
      .add(result.connections_dropped);
  local.gauge("chaos.transport.peak_read_buffer_bytes")
      .set(static_cast<double>(result.peak_read_buffer_bytes));
  local.gauge("chaos.transport.peak_write_backlog_bytes")
      .set(static_cast<double>(result.peak_write_backlog_bytes));
  local.gauge("chaos.transport.invariant_violations")
      .set(static_cast<double>(result.violations.size()));

  obs::Json context = obs::Json::object();
  context.set("scenario", result.name);
  context.set("process", arrival_process_name(config.arrivals.process));
  context.set("seed", config.seed);
  context.set("connections", config.connections);
  context.set("horizon_us", config.arrivals.horizon_us);
  context.set("invariants_checked", invariants.size());
  result.report = obs::metrics_snapshot(local, std::move(context));
  return result;
}

namespace {

TransportScenarioConfig transport_base(const std::string& name,
                                       double scale) {
  util::expects(scale > 0.0, "scenario scale must be positive");
  TransportScenarioConfig config;
  config.name = name;
  config.arrivals.process = ArrivalProcess::kUniform;
  config.arrivals.horizon_us =
      static_cast<std::uint64_t>(50'000.0 * scale);
  config.requests_per_connection =
      static_cast<std::size_t>(16.0 * scale);
  // Spread each connection's sends across the whole horizon (rather than
  // front-loading them) so churn waves and backlog growth interleave
  // with live traffic instead of arriving after it.
  config.arrivals.rate_per_sec =
      static_cast<double>(config.requests_per_connection) * 1e6 /
      static_cast<double>(config.arrivals.horizon_us);
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 500;
  config.batcher.queue_capacity = 256;
  return config;
}

TransportScenarioConfig connection_churn(double scale) {
  TransportScenarioConfig config = transport_base("connection_churn", scale);
  config.connections = 24;
  // A churn wave every few flush windows: drops land mid-frame (7-byte
  // chunks guarantee split headers) and mid-flight (requests queued).
  config.churn_every_us = 5'000;
  config.churn_fraction = 0.25;
  config.arrivals.process = ArrivalProcess::kBursty;
  config.arrivals.burst_factor = 8.0;
  config.arrivals.period_us = 10'000;
  return config;
}

TransportScenarioConfig slow_reader_backpressure(double scale) {
  TransportScenarioConfig config =
      transport_base("slow_reader_backpressure", scale);
  config.connections = 8;
  // Every second connection stops draining responses entirely. A tiny
  // write-backlog cap forces the shed path: decoded requests on stalled
  // connections must turn into typed kQueueFull responses, and decode
  // must pause (bounded memory) rather than buffer the firehose. Enough
  // requests per connection that the backlog saturates while traffic is
  // still arriving.
  config.slow_reader_every = 2;
  config.requests_per_connection = 32;
  config.arrivals.rate_per_sec =
      static_cast<double>(config.requests_per_connection) * 1e6 /
      static_cast<double>(config.arrivals.horizon_us);
  config.connection.write_backlog_max_bytes = 64;
  config.connection.max_inflight = 8;
  // Kernel-sized reads, not drip-fed bytes: the shed path fires when a
  // single read buffers frames beyond the inflight cap and the pump then
  // finds the backlog saturated — 7-byte chunks could never set that up.
  config.chunk_bytes = 4096;
  config.connection.read_budget_bytes = 4096;
  return config;
}

}  // namespace

const std::vector<NamedTransportScenario>& transport_scenario_matrix() {
  // LINT-SCENARIOS-BEGIN (every entry must register >= 1 invariant)
  static const std::vector<NamedTransportScenario> matrix = {
      {"connection_churn",
       {TransportInvariant::kBoundedConnectionMemory,
        TransportInvariant::kTypedRejectsOnly,
        TransportInvariant::kNoCrossConnectionBleed},
       &connection_churn},
      {"slow_reader_backpressure",
       {TransportInvariant::kBoundedConnectionMemory,
        TransportInvariant::kTypedRejectsOnly,
        TransportInvariant::kNoCrossConnectionBleed},
       &slow_reader_backpressure},
  };
  // LINT-SCENARIOS-END
  return matrix;
}

}  // namespace lehdc::chaos
