// Deterministic chaos-scenario runner for the multi-tenant serving stack.
//
// A scenario is one controlled failure experiment: several tenants with
// their own models, an adversarial arrival process, and zero or more fault
// injections (stored-bit errors on live models, hot rebinds under fire,
// deadline storms, one tenant flooding the queue). The runner drives a
// *real* InferenceServer — the production admission, batching, shedding
// and dispatch code — in manual-dispatch mode over a FakeClock: a
// virtual-time event loop steps straight from one arrival or batcher
// event to the next, so every run of a scenario is bit-identical,
// sleep-free and wall-clock independent.
//
// Each scenario declares the invariants it must uphold; the runner checks
// them after the drain and returns human-readable violations (an empty
// vector is the pass condition — tests assert on it, and the
// bench/chaos_matrix driver turns any violation into a nonzero exit).
// Every run also emits a structured lehdc.metrics.v1 report (obs::Json)
// built from a scenario-local obs::Registry, recording only virtual-time
// quantities so the report itself is byte-stable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "chaos/arrival.hpp"
#include "obs/json.hpp"
#include "serve/batcher.hpp"
#include "serve/online.hpp"

namespace lehdc::chaos {

/// The invariants a scenario can assert. Every scenario in the matrix
/// registers a non-empty subset (tools/lehdc_lint.py refuses
/// assertion-free scenarios).
enum class Invariant {
  /// The queue's high-water mark never exceeded queue_capacity.
  kBoundedQueueDepth,
  /// Every unserved request carries a typed Reject, and submitted ==
  /// served + rejected — nothing vanished, nothing crashed.
  kTypedRejectsOnly,
  /// Every served label is one this tenant's own model generations could
  /// have produced for that exact query — a response computed by another
  /// tenant's model would mismatch.
  kNoCrossTenantLeakage,
  /// Served accuracy tracks the same (possibly corrupted) model's offline
  /// accuracy within `accuracy_cliff_tolerance` — serving infrastructure
  /// must not add an unexplained accuracy cliff on top of the fault model.
  kNoAccuracyCliff,
  /// Every tenant that submitted at least one request had at least one
  /// served — no tenant was starved outright.
  kAllTenantsServed,
  /// Drift scenarios only (drift_at_us > 0): every online tenant's served
  /// accuracy over the post-drift tail recovered to at least
  /// drift_recovery_fraction of its pre-drift accuracy, while every
  /// frozen tenant decayed by at least drift_decay_min — proving both
  /// that the drift bit and that the online path healed it.
  kDriftRecovery,
};

/// Stable lowercase identifier ("bounded_queue_depth", ...).
[[nodiscard]] const char* invariant_name(Invariant invariant) noexcept;

struct TenantSpec {
  /// Tenant id (must satisfy serve::valid_tenant_id).
  std::string id;
  /// Seed for this tenant's model, data and query stream. Distinct seeds
  /// give tenants distinct models, which is what makes the cross-tenant
  /// leakage check meaningful.
  std::uint64_t seed = 1;
  /// Relative share of the arrival stream routed to this tenant.
  double arrival_weight = 1.0;
};

struct ScenarioConfig {
  std::string name = "scenario";
  std::vector<TenantSpec> tenants;
  ArrivalConfig arrivals;
  serve::BatcherConfig batcher;
  /// Deadline budget granted to every request (absolute deadline =
  /// arrival + budget); 0 = no deadlines.
  std::uint64_t deadline_budget_us = 0;
  /// Stored-bit error rate injected into every tenant's live model via
  /// robustness::corrupt_classifier before traffic starts (bound through
  /// the public ModelRegistry::bind on the running server); 0 = clean.
  double model_ber = 0.0;
  /// Hot-rebind cadence: every `rebind_every_us` of virtual time each
  /// tenant is re-bound to its alternate generation (blue-green flip
  /// under fire); 0 = never.
  std::uint64_t rebind_every_us = 0;
  /// Master seed for arrival→tenant assignment and fault injection.
  std::uint64_t seed = 1;
  /// Tolerance for kNoAccuracyCliff (absolute accuracy difference).
  double accuracy_cliff_tolerance = 0.1;

  // Model shape (small by default so tests stay fast; the bench scales).
  std::size_t dim = 256;
  std::size_t feature_count = 10;
  std::size_t class_count = 3;
  std::size_t train_count = 90;
  /// Distinct queries per tenant; the arrival stream cycles through them.
  std::size_t query_pool = 32;

  // --- online learning under drift (all off by default) ---
  /// Virtual time at which the synthetic generator's class prototypes
  /// shift: arrivals from here on draw from a re-drawn query pool (same
  /// per-tenant seed derivation, so tenants sharing a seed share the
  /// shifted problem too). 0 disables drift.
  std::uint64_t drift_at_us = 0;
  /// Tenant ids served with the online sidecar enabled (shadow learner +
  /// blue-green flips); ground truth feeds back for their served
  /// responses. Tenants not listed serve a frozen model.
  std::vector<std::string> online_tenants;
  /// Sidecar knobs for online tenants; `manual` is forced on so feedback
  /// drains deterministically inside the virtual-time loop.
  serve::OnlineSidecarConfig online;
  /// Every Nth served response of an online tenant returns its true
  /// label as feedback (1 = every response).
  std::size_t feedback_every = 1;
  /// kDriftRecovery: online tenants must recover at least this fraction
  /// of their pre-drift served accuracy over the post-drift tail.
  double drift_recovery_fraction = 0.9;
  /// kDriftRecovery: frozen tenants must decay by at least this much
  /// (absolute accuracy) over the same tail, proving the drift bit.
  double drift_decay_min = 0.1;
  /// Served-accuracy curve resolution: buckets over the horizon.
  std::size_t curve_buckets = 10;
};

struct TenantOutcome {
  std::string id;
  std::size_t submitted = 0;
  std::size_t served = 0;
  std::size_t rejected = 0;
  /// Served labels outside the tenant's own generations' predictions.
  std::size_t label_mismatches = 0;
  /// Fraction of served responses matching ground truth (0 if none served).
  double served_accuracy = 0.0;
  /// The active generation's accuracy on the full query pool, measured
  /// directly (predict_batch, no server).
  double offline_accuracy = 0.0;

  // --- drift scenarios only (zero/empty otherwise) ---
  /// Served accuracy before drift_at_us / over the post-drift tail (the
  /// second half of the post-drift window, giving the learner the first
  /// half to adapt).
  double pre_drift_accuracy = 0.0;
  double post_drift_accuracy = 0.0;
  /// Feedback frames accepted and blue-green flips performed for this
  /// tenant by the online sidecar.
  std::size_t feedback_accepted = 0;
  std::size_t flips = 0;
  /// Served accuracy per time bucket over the horizon (the drift-recovery
  /// curve; 0 for buckets with nothing served).
  std::vector<double> accuracy_curve;
};

struct ScenarioResult {
  std::string name;
  std::size_t submitted = 0;
  std::size_t served = 0;
  std::size_t rejected = 0;
  /// Typed shed counts keyed by serve::reject_name.
  std::map<std::string, std::size_t> reject_reasons;
  std::size_t peak_queue_depth = 0;
  double served_accuracy = 0.0;
  double offline_accuracy = 0.0;
  std::vector<TenantOutcome> tenants;
  /// Human-readable invariant violations; empty == scenario passed.
  std::vector<std::string> violations;
  /// lehdc.metrics.v1 snapshot of the scenario-local registry. Built from
  /// virtual-time quantities only: two runs of the same config dump
  /// byte-identical reports.
  obs::Json report;
};

/// Runs one scenario and checks `invariants`. Deterministic in `config`.
[[nodiscard]] ScenarioResult run_scenario(
    const ScenarioConfig& config, std::span<const Invariant> invariants);

}  // namespace lehdc::chaos
