// Deterministic chaos scenarios over the transport connection layer.
//
// The scenario runner in scenario.hpp stresses admission, batching and
// dispatch by calling InferenceServer::submit directly; this runner sits
// one layer lower and speaks *bytes*. Each simulated connection owns a
// real transport::Connection (the exact state machine the epoll loop
// drives) fed with encoded request frames in deliberately awkward chunks
// (headers split across feeds, frames straddling reads) over a FakeClock
// and a manual-dispatch server — no sockets, no threads, no sleeps, so
// every run is bit-identical. What the sockets would add (EAGAIN, partial
// reads/writes) is exactly what the chunked feed and the scripted reader
// simulate.
//
// Failure shapes:
//   connection churn     waves of abrupt connection drops (often
//                        mid-frame, with requests still in flight) and
//                        fresh replacements, under sustained load;
//   slow readers         peers that stop draining responses, so write
//                        backlogs hit the cap and decoded requests must
//                        shed with typed kQueueFull rejects.
//
// Invariants are transport-level counterparts of the server matrix:
// bounded per-connection memory (decode buffer and write backlog never
// exceed their configured caps plus one frame of slack), typed rejects
// only (every response on a surviving connection is ok or carries a
// typed Reject, and none vanish), and no cross-connection frame bleed
// (every response id and tenant matches a request sent on that same
// connection).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chaos/arrival.hpp"
#include "obs/json.hpp"
#include "serve/batcher.hpp"
#include "serve/transport/connection.hpp"

namespace lehdc::chaos {

/// Invariants a transport scenario can assert (distinct from the server
/// matrix's Invariant enum: these are properties of the byte layer).
enum class TransportInvariant {
  /// Per-connection decode buffer stays under read_budget_bytes plus one
  /// max-size frame, and the write backlog under write_backlog_max_bytes
  /// plus max_inflight response frames, at every step of the run.
  kBoundedConnectionMemory,
  /// On every connection alive at the end: responses received == requests
  /// sent, and each is ok() or carries a typed Reject — nothing vanished,
  /// nothing was silently dropped.
  kTypedRejectsOnly,
  /// Every response decoded from a connection's write stream answers a
  /// request id sent on that exact connection, with the tenant echo
  /// matching — a frame routed from another connection cannot pass.
  kNoCrossConnectionBleed,
};

/// Stable lowercase identifier ("bounded_connection_memory", ...).
[[nodiscard]] const char* transport_invariant_name(
    TransportInvariant invariant) noexcept;

struct TransportScenarioConfig {
  std::string name = "transport_scenario";
  /// Connections alive at any moment.
  std::size_t connections = 8;
  /// Request frames sent per connection over the horizon.
  std::size_t requests_per_connection = 24;
  /// Bytes handed to Connection::on_bytes per feed — a deliberately
  /// frame-misaligned value (default 7) splits every header.
  std::size_t chunk_bytes = 7;
  /// Every Nth connection (1-based; 0 = none) is a slow reader: it drains
  /// nothing until the horizon ends, forcing write-backlog backpressure.
  std::size_t slow_reader_every = 0;
  /// Every `churn_every_us` of virtual time (0 = never), `churn_fraction`
  /// of live connections are dropped abruptly and replaced.
  std::uint64_t churn_every_us = 0;
  double churn_fraction = 0.33;
  ArrivalConfig arrivals;
  serve::BatcherConfig batcher;
  serve::transport::ConnectionConfig connection;
  std::uint64_t seed = 1;
  /// Deadline budget stamped into every request (0 = none).
  std::uint64_t deadline_budget_us = 0;

  // Model shape (mirrors ScenarioConfig's small defaults).
  std::size_t dim = 256;
  std::size_t feature_count = 10;
  std::size_t class_count = 3;
  std::size_t train_count = 90;
  std::size_t query_pool = 32;
};

struct TransportScenarioResult {
  std::string name;
  std::size_t connections_opened = 0;
  std::size_t connections_dropped = 0;
  /// Requests fully sent on connections that survived to the drain.
  std::size_t sent_live = 0;
  /// Requests sent on connections later dropped by churn (their responses
  /// are legitimately unaccounted).
  std::size_t sent_dropped = 0;
  std::size_t responses_ok = 0;
  std::size_t responses_rejected = 0;
  /// Responses whose reject state was untyped or inconsistent.
  std::size_t untyped = 0;
  /// Responses whose id/tenant did not match a request sent on that
  /// connection.
  std::size_t bleed_errors = 0;
  /// Connection-level kQueueFull sheds (write-backlog backpressure).
  std::size_t sheds = 0;
  std::size_t peak_read_buffer_bytes = 0;
  std::size_t peak_write_backlog_bytes = 0;
  std::vector<std::string> violations;
  /// Byte-stable lehdc.metrics.v1 snapshot (virtual-time only).
  obs::Json report;
};

/// Runs one transport scenario. Deterministic in `config`.
[[nodiscard]] TransportScenarioResult run_transport_scenario(
    const TransportScenarioConfig& config,
    std::span<const TransportInvariant> invariants);

struct NamedTransportScenario {
  std::string name;
  std::vector<TransportInvariant> invariants;
  TransportScenarioConfig (*configure)(double scale);
};

/// The transport scenario matrix (connection churn, slow readers); same
/// contract as scenario_matrix() — fixed order, lint-checked invariants.
[[nodiscard]] const std::vector<NamedTransportScenario>&
transport_scenario_matrix();

}  // namespace lehdc::chaos
