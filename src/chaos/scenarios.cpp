#include "chaos/scenarios.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace lehdc::chaos {

namespace {

/// Shared small-model baseline; scenarios override traffic and faults.
ScenarioConfig base_config(const std::string& name, double scale) {
  util::expects(scale > 0.0, "scenario scale must be positive");
  ScenarioConfig config;
  config.name = name;
  config.tenants = {{"acme", 11, 1.0}, {"globex", 23, 1.0}};
  config.arrivals.rate_per_sec = 2000.0;
  config.arrivals.horizon_us =
      static_cast<std::uint64_t>(100'000.0 * scale);
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 500;
  config.batcher.queue_capacity = 64;
  config.dim = 2048;
  config.feature_count = 16;
  config.train_count = 150;
  return config;
}

ScenarioConfig steady_multi_tenant(double scale) {
  ScenarioConfig config = base_config("steady_multi_tenant", scale);
  config.arrivals.process = ArrivalProcess::kUniform;
  return config;
}

ScenarioConfig bursty_overload(double scale) {
  ScenarioConfig config = base_config("bursty_overload", scale);
  config.arrivals.process = ArrivalProcess::kBursty;
  config.arrivals.burst_factor = 64.0;
  config.arrivals.period_us = 20'000;
  // More burst arrivals per wait window (128k/s * 500us = 64) than the
  // queue admits: bursts must overflow into typed kQueueFull sheds while
  // the troughs drain the backlog. max_batch > capacity keeps flushes on
  // the wait timer, so the queue genuinely fills between drains.
  config.batcher.queue_capacity = 16;
  config.batcher.max_batch = 32;
  return config;
}

ScenarioConfig diurnal_tide(double scale) {
  ScenarioConfig config = base_config("diurnal_tide", scale);
  config.arrivals.process = ArrivalProcess::kDiurnal;
  config.arrivals.period_us = 50'000;
  return config;
}

ScenarioConfig deadline_storm(double scale) {
  ScenarioConfig config = base_config("deadline_storm", scale);
  config.arrivals.process = ArrivalProcess::kBursty;
  config.arrivals.burst_factor = 12.0;
  config.arrivals.period_us = 20'000;
  // Budget shorter than the batcher's wait window: requests stuck behind
  // a burst expire and must be shed as kDeadlineExceeded, never served
  // late or dropped silently.
  config.deadline_budget_us = 400;
  return config;
}

ScenarioConfig ber_live_injection(double scale) {
  ScenarioConfig config = base_config("ber_live_injection", scale);
  config.arrivals.process = ArrivalProcess::kUniform;
  // Bit errors on the live in-memory models; served accuracy must track
  // the corrupted models' own offline accuracy — the infrastructure adds
  // no cliff of its own.
  config.model_ber = 0.05;
  return config;
}

ScenarioConfig hot_reload_under_fire(double scale) {
  ScenarioConfig config = base_config("hot_reload_under_fire", scale);
  config.arrivals.process = ArrivalProcess::kBursty;
  config.arrivals.burst_factor = 8.0;
  config.arrivals.period_us = 20'000;
  // Rebind every tenant to its alternate generation many times per burst
  // period; in-flight batches must finish on their pinned generation.
  config.rebind_every_us = 3'000;
  return config;
}

ScenarioConfig tenant_starvation(double scale) {
  ScenarioConfig config = base_config("tenant_starvation", scale);
  config.arrivals.process = ArrivalProcess::kOverload;
  config.arrivals.burst_factor = 12.0;
  // "acme" floods with 20x the traffic of "mouse" (~11 acme arrivals per
  // wait window against a per-tenant cap of 4): the cap sheds acme's
  // excess as kQueueFull instead of letting the flood monopolize the
  // queue, and the round-robin scheduler still serves the small tenant.
  config.tenants = {{"acme", 11, 20.0}, {"mouse", 31, 1.0}};
  config.batcher.queue_capacity = 32;
  config.batcher.tenant_capacity = 4;
  return config;
}

ScenarioConfig online_drift_recovery(double scale) {
  ScenarioConfig config = base_config("online_drift_recovery", scale);
  config.arrivals.process = ArrivalProcess::kUniform;
  // Enough traffic for the shadow learner to see hundreds of labels on
  // each side of the shift.
  config.arrivals.rate_per_sec = 20'000.0;
  config.arrivals.horizon_us =
      static_cast<std::uint64_t>(200'000.0 * scale);
  // Two tenants, ONE seed: identical models serving the identical
  // problem, and an identical prototype shift at drift_at_us. "adaptive"
  // runs with the online sidecar (feedback → shadow learner → blue-green
  // flips); "frozen" is the untouched control whose accuracy must decay.
  config.tenants = {{"adaptive", 17, 1.0}, {"frozen", 17, 1.0}};
  // A pool this size keeps the perceptron from simply memorizing the
  // stream: mistakes — and therefore flip attempts — keep coming until
  // the shadow genuinely learns the shifted prototypes.
  config.query_pool = 128;
  config.drift_at_us = config.arrivals.horizon_us * 3 / 10;
  config.online_tenants = {"adaptive"};
  config.online.seed = 41;
  config.online.flip_every_updates = 16;
  // The perceptron converges after a handful of mistakes, so the
  // count trigger alone can starve — the time trigger (any pending
  // update, checked every 1/40th of the horizon) is what drives flips
  // once the shadow has quietly adapted.
  config.online.flip_every_us = config.arrivals.horizon_us / 40;
  config.online.refine_every_flips = 2;
  config.online.refine_epochs = 3;
  config.feedback_every = 1;
  return config;
}

}  // namespace

const std::vector<NamedScenario>& scenario_matrix() {
  // LINT-SCENARIOS-BEGIN (every entry must register >= 1 Invariant)
  static const std::vector<NamedScenario> matrix = {
      {"steady_multi_tenant",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kNoCrossTenantLeakage, Invariant::kNoAccuracyCliff,
        Invariant::kAllTenantsServed},
       &steady_multi_tenant},
      {"bursty_overload",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kNoCrossTenantLeakage, Invariant::kNoAccuracyCliff},
       &bursty_overload},
      {"diurnal_tide",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kNoCrossTenantLeakage, Invariant::kNoAccuracyCliff,
        Invariant::kAllTenantsServed},
       &diurnal_tide},
      {"deadline_storm",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kNoCrossTenantLeakage, Invariant::kNoAccuracyCliff},
       &deadline_storm},
      {"ber_live_injection",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kNoCrossTenantLeakage, Invariant::kNoAccuracyCliff,
        Invariant::kAllTenantsServed},
       &ber_live_injection},
      {"hot_reload_under_fire",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kNoCrossTenantLeakage, Invariant::kNoAccuracyCliff,
        Invariant::kAllTenantsServed},
       &hot_reload_under_fire},
      {"tenant_starvation",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kNoCrossTenantLeakage, Invariant::kAllTenantsServed},
       &tenant_starvation},
      {"online_drift_recovery",
       {Invariant::kBoundedQueueDepth, Invariant::kTypedRejectsOnly,
        Invariant::kAllTenantsServed, Invariant::kDriftRecovery},
       &online_drift_recovery},
  };
  // LINT-SCENARIOS-END
  return matrix;
}

const NamedScenario& scenario_by_name(const std::string& name) {
  for (const NamedScenario& scenario : scenario_matrix()) {
    if (scenario.name == name) {
      return scenario;
    }
  }
  throw std::invalid_argument("unknown chaos scenario: " + name);
}

}  // namespace lehdc::chaos
