// Deterministic arrival-process generators for chaos scenarios.
//
// A scenario's load shape is a sorted list of virtual-time arrival
// instants, generated up front from a seeded util::Rng — never sampled
// on the fly — so two runs of the same scenario submit the same requests
// at the same FakeClock microseconds. Four processes cover the failure
// envelope the serving stack must survive:
//
//   kUniform   Poisson arrivals at `rate_per_sec` (the calm baseline).
//   kBursty    on/off square wave: `burst_factor` × rate for the first
//              half of every `period_us`, near-silence for the second —
//              the queue must absorb each burst and drain between them.
//   kDiurnal   raised-cosine tide over `period_us`: load sweeps smoothly
//              from ~0 to `rate_per_sec` and back (the daily traffic
//              curve compressed into virtual time).
//   kOverload  sustained `burst_factor` × rate for the whole horizon —
//              more work than the server can admit; the point is typed
//              shedding, not survival.
#pragma once

#include <cstdint>
#include <vector>

namespace lehdc::chaos {

enum class ArrivalProcess { kUniform, kBursty, kDiurnal, kOverload };

/// Stable lowercase identifier ("uniform", "bursty", ...).
[[nodiscard]] const char* arrival_process_name(ArrivalProcess p) noexcept;

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kUniform;
  /// Mean arrival rate of the base (non-burst) load, in requests/second
  /// of virtual time.
  double rate_per_sec = 1000.0;
  /// Length of the generated schedule in virtual microseconds.
  std::uint64_t horizon_us = 1'000'000;
  /// Peak multiplier for kBursty / kOverload.
  double burst_factor = 8.0;
  /// Square-wave / tide period for kBursty / kDiurnal.
  std::uint64_t period_us = 200'000;
  std::uint64_t seed = 1;
};

/// Generates the sorted arrival instants (microseconds in
/// [0, horizon_us)) for `config` by Poisson thinning: candidates are
/// drawn at the envelope's peak rate and accepted with probability
/// rate(t)/peak. Deterministic in `config` alone.
[[nodiscard]] std::vector<std::uint64_t> arrival_times(
    const ArrivalConfig& config);

}  // namespace lehdc::chaos
