#include "chaos/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <utility>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "robustness/fault_injection.hpp"
#include "serve/clock.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/tenant.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::chaos {

const char* invariant_name(Invariant invariant) noexcept {
  switch (invariant) {
    case Invariant::kBoundedQueueDepth:
      return "bounded_queue_depth";
    case Invariant::kTypedRejectsOnly:
      return "typed_rejects_only";
    case Invariant::kNoCrossTenantLeakage:
      return "no_cross_tenant_leakage";
    case Invariant::kNoAccuracyCliff:
      return "no_accuracy_cliff";
    case Invariant::kAllTenantsServed:
      return "all_tenants_served";
    case Invariant::kDriftRecovery:
      return "drift_recovery";
  }
  return "unknown";
}

namespace {

/// Restores obs::enabled() on scope exit; the runner needs recording on
/// for its local registry without leaking the flag into the caller.
class ScopedMetricsEnabled {
 public:
  ScopedMetricsEnabled() : was_(obs::enabled()) { obs::set_enabled(true); }
  ~ScopedMetricsEnabled() { obs::set_enabled(was_); }
  ScopedMetricsEnabled(const ScopedMetricsEnabled&) = delete;
  ScopedMetricsEnabled& operator=(const ScopedMetricsEnabled&) = delete;

 private:
  bool was_;
};

/// Trains this tenant's model and returns it together with a held-out
/// query pool. Train and queries come from ONE generate_synthetic call so
/// they share the same class prototypes — a query pool drawn under a
/// different seed would be a different classification problem entirely.
std::pair<core::Pipeline, data::Dataset> build_tenant_model(
    const ScenarioConfig& config, std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = config.feature_count;
  synth.class_count = config.class_count;
  synth.train_count = config.train_count;
  synth.test_count = config.query_pool;
  synth.class_separation = 1.2;
  synth.noise_stddev = 0.25;
  synth.seed = seed;
  auto split = data::generate_synthetic(synth);
  core::PipelineConfig pipeline_config;
  pipeline_config.dim = config.dim;
  pipeline_config.strategy = core::Strategy::kBaseline;
  pipeline_config.seed = seed;
  core::Pipeline pipeline(pipeline_config);
  pipeline.fit(split.train);
  return {std::move(pipeline), std::move(split.test)};
}

/// Re-draws the synthetic problem under a shifted seed: same shape and
/// noise, freshly drawn class prototypes — the mid-run concept drift the
/// online path must chase. Tenants sharing a seed share the shifted
/// problem too, which is what makes the adaptive-vs-frozen comparison in
/// kDriftRecovery apples-to-apples.
data::Dataset drifted_pool(const ScenarioConfig& config,
                           std::uint64_t seed) {
  data::SyntheticConfig synth;
  synth.feature_count = config.feature_count;
  synth.class_count = config.class_count;
  synth.train_count = config.train_count;
  synth.test_count = config.query_pool;
  synth.class_separation = 1.2;
  synth.noise_stddev = 0.25;
  synth.seed = seed ^ 0xd41f7ULL;
  auto split = data::generate_synthetic(synth);
  return std::move(split.test);
}

/// A new pipeline object serving the same stored bits as `base` after a
/// pass through a memory with the given bit-error rate (ber == 0 gives a
/// bit-identical clean twin — the blue-green flip target).
core::Pipeline rebuild_generation(const core::Pipeline& base, double ber,
                                  std::uint64_t seed) {
  const hdc::BinaryClassifier* binary = base.model().as_binary();
  util::ensures(binary != nullptr,
                "chaos scenarios require binary-classifier strategies");
  const auto& encoder =
      dynamic_cast<const hdc::RecordEncoder&>(base.encoder());
  util::Rng rng(seed);
  hdc::BinaryClassifier stored =
      ber > 0.0 ? robustness::corrupt_classifier(*binary, ber, rng)
                : *binary;
  return core::Pipeline::restore(base.config(), encoder.config(),
                                 std::move(stored));
}

struct TenantState {
  TenantSpec spec;
  data::Dataset queries;
  std::vector<int> truth;
  /// Model generations the scenario flips between; all generations of one
  /// tenant serve the same stored bits, so their predictions agree.
  std::vector<std::shared_ptr<const core::Pipeline>> generations;
  /// generations[0]'s predictions over the query pool (identical for all
  /// generations by construction).
  std::vector<int> predictions;
  std::size_t next_query = 0;

  /// Drift scenarios: the post-drift query pool (shifted prototypes),
  /// its ground truth and generations[0]'s predictions over it.
  data::Dataset drifted;
  std::vector<int> drifted_truth;
  std::vector<int> drifted_predictions;
  std::size_t next_drifted = 0;

  /// Online tenants get ground-truth feedback for served responses.
  bool online = false;
  std::size_t feedback_counter = 0;
  std::size_t feedback_offered = 0;
};

struct Submission {
  std::future<serve::Response> future;
  /// Filled mid-run by the feedback harvester (online scenarios only);
  /// accounting falls back to future.get() when not harvested.
  serve::Response response;
  bool harvested = false;
  std::size_t tenant_index = 0;
  std::size_t query_index = 0;
  std::uint64_t arrival_us = 0;
  /// Ground truth for this query (drift-aware).
  int truth = 0;
  /// generations[0]'s prediction, or -1 when not comparable (online
  /// tenants flip generations mid-run).
  int expected = -1;
};

std::vector<float> features_of(const data::Dataset& dataset,
                               std::size_t i) {
  const auto row = dataset.sample(i);
  return {row.begin(), row.end()};
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config,
                            std::span<const Invariant> invariants) {
  util::expects(!config.tenants.empty(),
                "a scenario needs at least one tenant");
  util::expects(config.query_pool > 0, "query_pool must be positive");
  util::expects(!invariants.empty(),
                "a scenario must assert at least one invariant");

  const bool drift = config.drift_at_us > 0;
  const bool online_enabled = !config.online_tenants.empty();
  if (drift) {
    util::expects(config.drift_at_us < config.arrivals.horizon_us,
                  "drift_at_us must fall inside the arrival horizon");
  }
  if (online_enabled) {
    util::expects(config.feedback_every > 0,
                  "feedback_every must be positive");
  }

  const ScopedMetricsEnabled metrics_on;
  ScenarioResult result;
  result.name = config.name;

  // ------------------------------------------------ tenants and models --
  const bool flips = config.rebind_every_us > 0;
  std::vector<TenantState> tenants;
  tenants.reserve(config.tenants.size());
  util::Rng master(config.seed);
  for (const TenantSpec& spec : config.tenants) {
    util::expects(serve::valid_tenant_id(spec.id),
                  "scenario tenant ids must be valid tenant ids");
    util::expects(spec.arrival_weight > 0.0,
                  "tenant arrival_weight must be positive");
    TenantState state;
    state.spec = spec;

    auto [base, queries] = build_tenant_model(config, spec.seed);
    state.queries = std::move(queries);
    state.truth.reserve(state.queries.size());
    for (std::size_t i = 0; i < state.queries.size(); ++i) {
      state.truth.push_back(state.queries.label(i));
    }
    if (drift) {
      state.drifted = drifted_pool(config, spec.seed);
      state.drifted_truth.reserve(state.drifted.size());
      for (std::size_t i = 0; i < state.drifted.size(); ++i) {
        state.drifted_truth.push_back(state.drifted.label(i));
      }
    }

    // One corruption seed per tenant, drawn in tenant order from the
    // master stream — deterministic, decorrelated across tenants.
    const std::uint64_t fault_seed = master.derive_seed(tenants.size());
    state.generations.push_back(std::make_shared<const core::Pipeline>(
        rebuild_generation(base, config.model_ber, fault_seed)));
    if (flips) {
      // The flip target serves the *same* stored bits from a distinct
      // object, so a mid-flight rebind swaps real pointers without
      // changing the expected labels.
      state.generations.push_back(std::make_shared<const core::Pipeline>(
          rebuild_generation(base, config.model_ber, fault_seed)));
    }
    state.predictions = state.generations[0]->predict_batch(state.queries);
    if (drift) {
      state.drifted_predictions =
          state.generations[0]->predict_batch(state.drifted);
    }
    tenants.push_back(std::move(state));
  }
  for (const std::string& id : config.online_tenants) {
    bool found = false;
    for (TenantState& tenant : tenants) {
      if (tenant.spec.id == id) {
        tenant.online = true;
        found = true;
      }
    }
    util::expects(found, "online_tenants entries must name scenario tenants");
  }

  // -------------------------------------------------- server (manual) --
  serve::FakeClock clock(0);
  serve::ModelRegistry registry;
  serve::ServerConfig server_config;
  server_config.batcher = config.batcher;
  server_config.default_tenant = tenants.front().spec.id;
  server_config.manual_dispatch = true;
  // Bind clean bases first, then inject the scenario generations through
  // the same public bind the hot-reload path uses — serving-time fault
  // injection, not construction-time.
  for (TenantState& tenant : tenants) {
    registry.bind(tenant.spec.id, tenant.generations[0]);
  }
  serve::InferenceServer server(registry, server_config, &clock);

  // Online tenants get the feedback→shadow-learner→flip sidecar, driven
  // in manual mode so every pump happens at a deterministic virtual time.
  std::unique_ptr<serve::OnlineSidecar> sidecar;
  if (online_enabled) {
    serve::OnlineSidecarConfig online_config = config.online;
    online_config.manual = true;
    sidecar = std::make_unique<serve::OnlineSidecar>(registry,
                                                     online_config, &clock);
    server.attach_online(sidecar.get());
    for (const TenantState& tenant : tenants) {
      if (tenant.online) {
        sidecar->enable(tenant.spec.id);
      }
    }
  }

  // ------------------------------------------------------- event loop --
  const std::vector<std::uint64_t> arrivals =
      arrival_times(config.arrivals);
  util::Rng route_rng(master.derive_seed(0xc4a05));
  double total_weight = 0.0;
  for (const TenantState& tenant : tenants) {
    total_weight += tenant.spec.arrival_weight;
  }

  std::vector<Submission> submissions;
  submissions.reserve(arrivals.size());

  // Online scenarios consume ready futures *during* the run (a real
  // client reacts to the response it received), offering ground truth
  // back as feedback and pumping the sidecar in virtual time. Index
  // order is preserved, so the feedback stream — and therefore the
  // learner and every flip — is bit-identical across runs.
  std::deque<std::size_t> unharvested;
  const auto harvest_feedback = [&] {
    if (sidecar == nullptr) {
      return;
    }
    for (auto it = unharvested.begin(); it != unharvested.end();) {
      Submission& submission = submissions[*it];
      if (submission.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++it;
        continue;
      }
      submission.response = submission.future.get();
      submission.harvested = true;
      TenantState& tenant = tenants[submission.tenant_index];
      if (tenant.online && submission.response.ok() &&
          ++tenant.feedback_counter % config.feedback_every == 0) {
        ++tenant.feedback_offered;
        (void)sidecar->offer_feedback(tenant.spec.id, *it,
                                      submission.truth);
      }
      it = unharvested.erase(it);
    }
    (void)sidecar->pump();
  };

  std::size_t next_arrival = 0;
  std::uint64_t next_rebind =
      flips ? config.rebind_every_us : serve::MicroBatcher::kNever;
  int generation_parity = 0;

  // Safety valve: every iteration consumes an arrival, a rebind or a due
  // batcher event, so this bound is never reached in a correct run.
  std::size_t iterations = 0;
  const std::size_t max_iterations = arrivals.size() * 4 + 1024;

  while (next_arrival < arrivals.size() || server.queue_depth() > 0) {
    if (++iterations > max_iterations) {
      result.violations.push_back(result.name +
                                  ": event loop stalled (runner bug)");
      break;
    }
    std::uint64_t t = serve::MicroBatcher::kNever;
    if (next_arrival < arrivals.size()) {
      t = std::min(t, arrivals[next_arrival]);
    }
    t = std::min(t, server.next_event_us());
    if (flips && next_rebind <= config.arrivals.horizon_us) {
      t = std::min(t, next_rebind);
    }
    if (t == serve::MicroBatcher::kNever) {
      break;
    }
    t = std::max(t, clock.now_us());
    clock.set_us(t);

    // Rebinds land before same-instant submits: bind-then-serve, the
    // blue-green order operators use.
    while (flips && next_rebind <= t) {
      generation_parity ^= 1;
      for (TenantState& tenant : tenants) {
        registry.bind(
            tenant.spec.id,
            tenant.generations[generation_parity %
                               tenant.generations.size()]);
      }
      next_rebind += config.rebind_every_us;
    }

    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival] <= t) {
      // Weighted tenant routing from the dedicated route stream.
      double pick = route_rng.next_double() * total_weight;
      std::size_t tenant_index = 0;
      for (; tenant_index + 1 < tenants.size(); ++tenant_index) {
        pick -= tenants[tenant_index].spec.arrival_weight;
        if (pick < 0.0) {
          break;
        }
      }
      TenantState& tenant = tenants[tenant_index];
      const std::uint64_t when = arrivals[next_arrival];
      // Past drift_at_us the synthetic generator has shifted: arrivals
      // draw from the re-drawn pool and carry its ground truth.
      const bool drifted = drift && when >= config.drift_at_us;
      const data::Dataset& pool = drifted ? tenant.drifted : tenant.queries;
      std::size_t& cursor = drifted ? tenant.next_drifted : tenant.next_query;
      const std::size_t query_index = cursor;
      cursor = (cursor + 1) % pool.size();

      const std::uint64_t deadline =
          config.deadline_budget_us == 0
              ? 0
              : t + config.deadline_budget_us;
      Submission submission;
      submission.tenant_index = tenant_index;
      submission.query_index = query_index;
      submission.arrival_us = when;
      submission.truth = drifted ? tenant.drifted_truth[query_index]
                                 : tenant.truth[query_index];
      // Online tenants flip generations mid-run, so generation-0
      // expectations stop being comparable for them.
      submission.expected =
          tenant.online ? -1
                        : (drifted ? tenant.drifted_predictions[query_index]
                                   : tenant.predictions[query_index]);
      if (sidecar != nullptr) {
        unharvested.push_back(submissions.size());
      }
      submission.future =
          server.submit(features_of(pool, query_index), deadline,
                        tenant.spec.id, submissions.size());
      submissions.push_back(std::move(submission));
      ++next_arrival;
    }

    server.run_until_idle();
    harvest_feedback();
  }
  // Let any remaining wait window elapse, then drain through the same
  // dispatch path (shutdown force-flushes; expired requests are shed).
  clock.advance_us(config.batcher.max_wait_us + 1);
  server.run_until_idle();
  harvest_feedback();
  server.shutdown();
  harvest_feedback();

  // ------------------------------------------------------- accounting --
  result.tenants.reserve(tenants.size());
  for (const TenantState& tenant : tenants) {
    TenantOutcome outcome;
    outcome.id = tenant.spec.id;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < tenant.predictions.size(); ++i) {
      correct += tenant.predictions[i] == tenant.truth[i] ? 1 : 0;
    }
    outcome.offline_accuracy =
        static_cast<double>(correct) /
        static_cast<double>(tenant.predictions.size());
    result.tenants.push_back(std::move(outcome));
  }

  // Register every typed reason up front so the report's metric set (and
  // therefore its bytes) does not depend on which sheds occurred.
  for (const serve::Reject reason :
       {serve::Reject::kQueueFull, serve::Reject::kDeadlineExceeded,
        serve::Reject::kShuttingDown, serve::Reject::kModelNotFound,
        serve::Reject::kBadRequest, serve::Reject::kUnknownCorrelation}) {
    result.reject_reasons[serve::reject_name(reason)] = 0;
  }

  obs::Registry local;
  obs::Counter& submitted_counter = local.counter("chaos.submitted");
  obs::Counter& served_counter = local.counter("chaos.served");
  obs::Counter& rejected_counter = local.counter("chaos.rejected");
  std::map<std::string, obs::Counter*> reason_counters;
  for (const auto& [reason, count] : result.reject_reasons) {
    reason_counters[reason] =
        &local.counter(std::string("chaos.rejected.") + reason);
  }
  obs::Histogram& latency_hist =
      local.histogram("chaos.latency_virtual_seconds");

  const std::size_t buckets = std::max<std::size_t>(config.curve_buckets, 1);
  const std::uint64_t horizon =
      std::max<std::uint64_t>(config.arrivals.horizon_us, 1);
  // Post-drift tail: the second half of the post-drift window, so the
  // learner gets the first half to adapt before recovery is judged.
  const std::uint64_t tail_start =
      config.drift_at_us + (horizon - config.drift_at_us) / 2;

  std::size_t served_correct = 0;
  std::size_t expected_correct = 0;
  std::size_t untyped = 0;
  std::vector<std::size_t> tenant_correct(tenants.size(), 0);
  std::vector<std::vector<std::size_t>> bucket_served(
      tenants.size(), std::vector<std::size_t>(buckets, 0));
  std::vector<std::vector<std::size_t>> bucket_correct(
      tenants.size(), std::vector<std::size_t>(buckets, 0));
  std::vector<std::size_t> pre_served(tenants.size(), 0);
  std::vector<std::size_t> pre_correct(tenants.size(), 0);
  std::vector<std::size_t> tail_served(tenants.size(), 0);
  std::vector<std::size_t> tail_correct(tenants.size(), 0);
  for (Submission& submission : submissions) {
    const std::size_t tenant_index = submission.tenant_index;
    TenantOutcome& outcome = result.tenants[tenant_index];
    ++result.submitted;
    ++outcome.submitted;
    submitted_counter.add();
    const serve::Response response = submission.harvested
                                         ? std::move(submission.response)
                                         : submission.future.get();
    if (response.ok()) {
      ++result.served;
      ++outcome.served;
      served_counter.add();
      latency_hist.observe(response.latency_seconds);
      if (submission.expected >= 0) {
        if (response.label != submission.expected) {
          ++outcome.label_mismatches;
        }
        expected_correct +=
            submission.expected == submission.truth ? 1 : 0;
      }
      const bool correct = response.label == submission.truth;
      if (correct) {
        ++served_correct;
        ++tenant_correct[tenant_index];
      }
      const std::size_t bucket = std::min(
          buckets - 1,
          static_cast<std::size_t>(submission.arrival_us * buckets /
                                   horizon));
      ++bucket_served[tenant_index][bucket];
      bucket_correct[tenant_index][bucket] += correct ? 1 : 0;
      if (drift) {
        if (submission.arrival_us < config.drift_at_us) {
          ++pre_served[tenant_index];
          pre_correct[tenant_index] += correct ? 1 : 0;
        } else if (submission.arrival_us >= tail_start) {
          ++tail_served[tenant_index];
          tail_correct[tenant_index] += correct ? 1 : 0;
        }
      }
    } else {
      ++result.rejected;
      ++outcome.rejected;
      rejected_counter.add();
      const auto status = static_cast<std::uint8_t>(response.error);
      if (status == 0 ||
          status > static_cast<std::uint8_t>(
                       serve::Reject::kUnknownCorrelation) ||
          response.label != -1) {
        ++untyped;
      } else {
        const char* reason = serve::reject_name(response.error);
        ++result.reject_reasons[reason];
        reason_counters[reason]->add();
      }
    }
  }
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    TenantOutcome& outcome = result.tenants[i];
    outcome.served_accuracy =
        outcome.served == 0
            ? 0.0
            : static_cast<double>(tenant_correct[i]) /
                  static_cast<double>(outcome.served);
    outcome.accuracy_curve.reserve(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      outcome.accuracy_curve.push_back(
          bucket_served[i][b] == 0
              ? 0.0
              : static_cast<double>(bucket_correct[i][b]) /
                    static_cast<double>(bucket_served[i][b]));
    }
    if (drift) {
      outcome.pre_drift_accuracy =
          pre_served[i] == 0 ? 0.0
                             : static_cast<double>(pre_correct[i]) /
                                   static_cast<double>(pre_served[i]);
      outcome.post_drift_accuracy =
          tail_served[i] == 0 ? 0.0
                              : static_cast<double>(tail_correct[i]) /
                                    static_cast<double>(tail_served[i]);
    }
    if (tenants[i].online && sidecar != nullptr) {
      outcome.feedback_accepted = sidecar->feedback_accepted(outcome.id);
      outcome.flips = sidecar->flips(outcome.id);
    }
  }

  result.peak_queue_depth = server.peak_queue_depth();
  result.served_accuracy =
      result.served == 0
          ? 0.0
          : static_cast<double>(served_correct) /
                static_cast<double>(result.served);
  result.offline_accuracy =
      result.served == 0
          ? 0.0
          : static_cast<double>(expected_correct) /
                static_cast<double>(result.served);

  // ------------------------------------------------- invariant checks --
  const auto violate = [&](Invariant invariant, const std::string& detail) {
    result.violations.push_back(std::string(invariant_name(invariant)) +
                                ": " + detail);
  };
  for (const Invariant invariant : invariants) {
    switch (invariant) {
      case Invariant::kBoundedQueueDepth:
        if (result.peak_queue_depth > config.batcher.queue_capacity) {
          violate(invariant,
                  "peak depth " + std::to_string(result.peak_queue_depth) +
                      " exceeds capacity " +
                      std::to_string(config.batcher.queue_capacity));
        }
        break;
      case Invariant::kTypedRejectsOnly:
        if (untyped > 0) {
          violate(invariant, std::to_string(untyped) +
                                 " responses with untyped/inconsistent "
                                 "reject state");
        }
        if (result.served + result.rejected != result.submitted) {
          violate(invariant, "submitted " +
                                 std::to_string(result.submitted) +
                                 " != served+rejected " +
                                 std::to_string(result.served +
                                                result.rejected));
        }
        break;
      case Invariant::kNoCrossTenantLeakage: {
        std::size_t mismatches = 0;
        for (const TenantOutcome& outcome : result.tenants) {
          mismatches += outcome.label_mismatches;
        }
        if (mismatches > 0) {
          violate(invariant,
                  std::to_string(mismatches) +
                      " served labels outside the tenant's own model");
        }
        break;
      }
      case Invariant::kNoAccuracyCliff:
        if (result.served == 0) {
          violate(invariant, "no requests served — accuracy unmeasurable");
        } else if (result.served_accuracy <
                   result.offline_accuracy -
                       config.accuracy_cliff_tolerance) {
          violate(invariant,
                  "served accuracy " +
                      std::to_string(result.served_accuracy) +
                      " fell below offline " +
                      std::to_string(result.offline_accuracy) +
                      " - tolerance " +
                      std::to_string(config.accuracy_cliff_tolerance));
        }
        break;
      case Invariant::kAllTenantsServed:
        for (const TenantOutcome& outcome : result.tenants) {
          if (outcome.submitted > 0 && outcome.served == 0) {
            violate(invariant,
                    "tenant " + outcome.id + " submitted " +
                        std::to_string(outcome.submitted) +
                        " requests and none were served");
          }
        }
        break;
      case Invariant::kDriftRecovery: {
        if (!drift || !online_enabled) {
          violate(invariant,
                  "asserted without drift_at_us and online tenants");
          break;
        }
        for (std::size_t i = 0; i < result.tenants.size(); ++i) {
          const TenantOutcome& outcome = result.tenants[i];
          if (tenants[i].online) {
            if (outcome.flips == 0) {
              violate(invariant, "online tenant " + outcome.id +
                                     " never flipped a generation");
            }
            if (outcome.post_drift_accuracy <
                config.drift_recovery_fraction *
                    outcome.pre_drift_accuracy) {
              violate(invariant,
                      "online tenant " + outcome.id +
                          " recovered to " +
                          std::to_string(outcome.post_drift_accuracy) +
                          ", below " +
                          std::to_string(config.drift_recovery_fraction) +
                          " of pre-drift " +
                          std::to_string(outcome.pre_drift_accuracy));
            }
          } else if (outcome.post_drift_accuracy >
                     outcome.pre_drift_accuracy - config.drift_decay_min) {
            violate(invariant,
                    "frozen tenant " + outcome.id + " did not decay: " +
                        std::to_string(outcome.post_drift_accuracy) +
                        " post-drift vs " +
                        std::to_string(outcome.pre_drift_accuracy) +
                        " pre-drift (the drift did not bite)");
          }
        }
        break;
      }
    }
  }

  // ------------------------------------------------------------ report --
  obs::Gauge& peak_gauge = local.gauge("chaos.peak_queue_depth");
  peak_gauge.set(static_cast<double>(result.peak_queue_depth));
  obs::Gauge& served_acc_gauge = local.gauge("chaos.served_accuracy");
  served_acc_gauge.set(result.served_accuracy);
  obs::Gauge& offline_acc_gauge = local.gauge("chaos.offline_accuracy");
  offline_acc_gauge.set(result.offline_accuracy);
  obs::Gauge& violations_gauge = local.gauge("chaos.invariant_violations");
  violations_gauge.set(static_cast<double>(result.violations.size()));
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    const TenantOutcome& outcome = result.tenants[i];
    local
        .counter(serve::tenant_metric_name("serve.tenant.requests",
                                           outcome.id))
        .add(outcome.submitted);
    local
        .counter(serve::tenant_metric_name("serve.tenant.responses",
                                           outcome.id))
        .add(outcome.served);
    local
        .counter(serve::tenant_metric_name("serve.tenant.rejected",
                                           outcome.id))
        .add(outcome.rejected);
    if (drift) {
      // The drift-recovery curve and its summary points, per tenant —
      // virtual-time quantities only, so the report stays byte-stable.
      local.gauge("chaos.drift.pre_accuracy." + outcome.id)
          .set(outcome.pre_drift_accuracy);
      local.gauge("chaos.drift.post_accuracy." + outcome.id)
          .set(outcome.post_drift_accuracy);
      local.counter("chaos.online.flips." + outcome.id)
          .add(outcome.flips);
      local.counter("chaos.online.feedback." + outcome.id)
          .add(outcome.feedback_accepted);
      for (std::size_t b = 0; b < outcome.accuracy_curve.size(); ++b) {
        local
            .gauge("chaos.drift.curve." + outcome.id + ".b" +
                   std::to_string(b))
            .set(outcome.accuracy_curve[b]);
      }
    }
  }

  obs::Json context = obs::Json::object();
  context.set("scenario", result.name);
  context.set("process",
              arrival_process_name(config.arrivals.process));
  context.set("seed", config.seed);
  context.set("tenant_count", config.tenants.size());
  context.set("horizon_us", config.arrivals.horizon_us);
  context.set("model_ber", config.model_ber);
  context.set("invariants_checked", invariants.size());
  if (drift) {
    context.set("drift_at_us", config.drift_at_us);
    context.set("online_tenants", config.online_tenants.size());
  }
  result.report = obs::metrics_snapshot(local, std::move(context));
  return result;
}

}  // namespace lehdc::chaos
