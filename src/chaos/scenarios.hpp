// The named chaos-scenario matrix.
//
// Each entry pairs a ScenarioConfig factory with the invariants that
// scenario must uphold. tests/test_chaos.cpp runs every entry and asserts
// zero violations; bench/chaos_matrix sweeps the same matrix at larger
// scale and publishes the reports. tools/lehdc_lint.py checks (via the
// LINT-SCENARIOS markers in scenarios.cpp) that no entry ships without
// invariants.
#pragma once

#include <string>
#include <vector>

#include "chaos/scenario.hpp"

namespace lehdc::chaos {

struct NamedScenario {
  std::string name;
  std::vector<Invariant> invariants;
  /// Builds the scenario config at the given load scale (1 = test-sized;
  /// the bench passes larger scales to stretch horizons and rates).
  ScenarioConfig (*configure)(double scale);
};

/// The full matrix, in fixed order (reports and bench output follow it).
[[nodiscard]] const std::vector<NamedScenario>& scenario_matrix();

/// Lookup by name; throws std::invalid_argument for unknown names.
[[nodiscard]] const NamedScenario& scenario_by_name(const std::string& name);

}  // namespace lehdc::chaos
