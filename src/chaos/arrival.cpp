#include "chaos/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::chaos {

const char* arrival_process_name(ArrivalProcess p) noexcept {
  switch (p) {
    case ArrivalProcess::kUniform:
      return "uniform";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
    case ArrivalProcess::kOverload:
      return "overload";
  }
  return "unknown";
}

namespace {

/// Instantaneous rate at virtual time `t_us`, in requests/second.
double rate_at(const ArrivalConfig& config, std::uint64_t t_us) {
  switch (config.process) {
    case ArrivalProcess::kUniform:
      return config.rate_per_sec;
    case ArrivalProcess::kOverload:
      return config.rate_per_sec * config.burst_factor;
    case ArrivalProcess::kBursty: {
      const std::uint64_t phase = t_us % config.period_us;
      return phase < config.period_us / 2
                 ? config.rate_per_sec * config.burst_factor
                 : config.rate_per_sec * 0.1;
    }
    case ArrivalProcess::kDiurnal: {
      const double phase =
          static_cast<double>(t_us % config.period_us) /
          static_cast<double>(config.period_us);
      // Raised cosine: 0 at phase 0, rate_per_sec at phase 0.5, back to 0.
      const double tide = 0.5 * (1.0 - std::cos(2.0 * 3.141592653589793 *
                                                phase));
      return config.rate_per_sec * tide;
    }
  }
  return config.rate_per_sec;
}

double peak_rate(const ArrivalConfig& config) {
  switch (config.process) {
    case ArrivalProcess::kBursty:
    case ArrivalProcess::kOverload:
      return config.rate_per_sec * std::max(config.burst_factor, 1.0);
    case ArrivalProcess::kUniform:
    case ArrivalProcess::kDiurnal:
      return config.rate_per_sec;
  }
  return config.rate_per_sec;
}

}  // namespace

std::vector<std::uint64_t> arrival_times(const ArrivalConfig& config) {
  util::expects(config.rate_per_sec > 0.0, "rate_per_sec must be positive");
  util::expects(config.horizon_us > 0, "horizon_us must be positive");
  util::expects(config.period_us > 0, "period_us must be positive");
  util::expects(config.burst_factor >= 1.0, "burst_factor must be >= 1");

  util::Rng rng(config.seed);
  const double peak = peak_rate(config);
  std::vector<std::uint64_t> times;
  times.reserve(static_cast<std::size_t>(
      peak * static_cast<double>(config.horizon_us) * 1e-6) + 16);

  // Poisson thinning against the constant peak envelope: exponential gaps
  // at the peak rate, each candidate kept with probability rate(t)/peak.
  double t_us = 0.0;
  while (true) {
    // next_double() < 1, so the log argument stays strictly positive.
    const double gap_s = -std::log(1.0 - rng.next_double()) / peak;
    t_us += gap_s * 1e6;
    if (t_us >= static_cast<double>(config.horizon_us)) {
      break;
    }
    const auto instant = static_cast<std::uint64_t>(t_us);
    if (rng.next_double() * peak <= rate_at(config, instant)) {
      times.push_back(instant);
    }
  }
  return times;  // construction order is already sorted
}

}  // namespace lehdc::chaos
