// Injectable time source for the serving stack.
//
// Every piece of serving time arithmetic — micro-batch flush deadlines,
// per-request deadlines, end-to-end latency — reads time through this
// interface instead of a clock syscall, so the batching logic is testable
// with a manually advanced FakeClock: tests assert flush decisions
// deterministically, with no sleeps and no real-time races.
#pragma once

#include <atomic>
#include <cstdint>

namespace lehdc::serve {

/// Monotonic microsecond clock. Implementations must be callable from
/// several threads concurrently.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary fixed epoch; never decreases.
  [[nodiscard]] virtual std::uint64_t now_us() = 0;
};

/// The process steady clock (same epoch family as obs::monotonic_seconds).
[[nodiscard]] Clock& system_clock();

/// Manually advanced clock for deterministic tests. Thread-safe: the time
/// is one atomic, so a test may advance it while a server worker reads it.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_us = 0) : now_(start_us) {}

  [[nodiscard]] std::uint64_t now_us() override {
    return now_.load(std::memory_order_relaxed);
  }

  void advance_us(std::uint64_t delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }

  void set_us(std::uint64_t now) {
    now_.store(now, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace lehdc::serve
