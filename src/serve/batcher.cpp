#include "serve/batcher.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lehdc::serve {

MicroBatcher::MicroBatcher(const BatcherConfig& config) : config_(config) {
  util::expects(config.max_batch > 0, "max_batch must be positive");
  util::expects(config.queue_capacity > 0, "queue_capacity must be positive");
}

Reject MicroBatcher::offer(PendingRequest&& request, std::uint64_t now_us) {
  if (closed_) {
    return Reject::kShuttingDown;
  }
  if (pending_.size() >= config_.queue_capacity) {
    return Reject::kQueueFull;
  }
  request.enqueue_us = now_us;
  pending_.push_back(std::move(request));
  return Reject::kNone;
}

MicroBatcher::Flush MicroBatcher::poll(std::uint64_t now_us, bool force) {
  Flush flush;

  // Cull expired requests first: a request past its deadline must never be
  // dispatched, even when a flush is due this very poll.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->deadline_us != 0 && it->deadline_us <= now_us) {
      flush.expired.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  if (pending_.empty()) {
    return flush;
  }
  const bool size_due = pending_.size() >= config_.max_batch;
  const bool time_due =
      now_us - pending_.front().enqueue_us >= config_.max_wait_us;
  if (!size_due && !time_due && !force) {
    return flush;
  }

  const std::size_t take = std::min(pending_.size(), config_.max_batch);
  flush.batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    flush.batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return flush;
}

std::uint64_t MicroBatcher::next_event_us() const {
  if (pending_.empty()) {
    return kNever;
  }
  std::uint64_t next = pending_.front().enqueue_us + config_.max_wait_us;
  for (const PendingRequest& request : pending_) {
    if (request.deadline_us != 0) {
      next = std::min(next, request.deadline_us);
    }
  }
  return next;
}

}  // namespace lehdc::serve
