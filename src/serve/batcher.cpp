#include "serve/batcher.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lehdc::serve {

MicroBatcher::MicroBatcher(const BatcherConfig& config) : config_(config) {
  util::expects(config.max_batch > 0, "max_batch must be positive");
  util::expects(config.queue_capacity > 0, "queue_capacity must be positive");
  util::expects(config.tenant_capacity <= config.queue_capacity,
                "tenant_capacity cannot exceed queue_capacity");
}

Reject MicroBatcher::offer(PendingRequest&& request, std::uint64_t now_us) {
  if (closed_) {
    return Reject::kShuttingDown;
  }
  if (depth_ >= config_.queue_capacity) {
    return Reject::kQueueFull;
  }
  if (config_.tenant_capacity != 0) {
    const auto it = queues_.find(request.tenant);
    if (it != queues_.end() && it->second.size() >= config_.tenant_capacity) {
      return Reject::kQueueFull;
    }
  }
  request.enqueue_us = now_us;
  queues_[request.tenant].push_back(std::move(request));
  ++depth_;
  return Reject::kNone;
}

MicroBatcher::Flush MicroBatcher::poll(std::uint64_t now_us, bool force) {
  Flush flush;

  // Cull expired requests first, across every tenant: a request past its
  // deadline must never be dispatched, even when a flush is due this very
  // poll.
  for (auto it = queues_.begin(); it != queues_.end();) {
    std::deque<PendingRequest>& queue = it->second;
    for (auto rit = queue.begin(); rit != queue.end();) {
      if (rit->deadline_us != 0 && rit->deadline_us <= now_us) {
        flush.expired.push_back(std::move(*rit));
        rit = queue.erase(rit);
        --depth_;
      } else {
        ++rit;
      }
    }
    it = queue.empty() ? queues_.erase(it) : std::next(it);
  }

  if (queues_.empty()) {
    return flush;
  }

  // Pick the next due tenant round-robin: scan map order starting strictly
  // after the cursor, wrapping once. Map order is deterministic, so so is
  // the rotation.
  const auto due = [&](const std::deque<PendingRequest>& queue) {
    return force || queue.size() >= config_.max_batch ||
           now_us - queue.front().enqueue_us >= config_.max_wait_us;
  };
  auto chosen = queues_.end();
  for (auto it = queues_.upper_bound(cursor_); it != queues_.end(); ++it) {
    if (due(it->second)) {
      chosen = it;
      break;
    }
  }
  if (chosen == queues_.end()) {
    for (auto it = queues_.begin();
         it != queues_.end() && it->first <= cursor_; ++it) {
      if (due(it->second)) {
        chosen = it;
        break;
      }
    }
  }
  if (chosen == queues_.end()) {
    return flush;
  }

  cursor_ = chosen->first;
  flush.tenant = chosen->first;
  std::deque<PendingRequest>& queue = chosen->second;
  const std::size_t take = std::min(queue.size(), config_.max_batch);
  flush.batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    flush.batch.push_back(std::move(queue.front()));
    queue.pop_front();
    --depth_;
  }
  if (queue.empty()) {
    queues_.erase(chosen);
  }
  return flush;
}

std::uint64_t MicroBatcher::next_event_us() const {
  std::uint64_t next = kNever;
  for (const auto& [tenant, queue] : queues_) {
    next = std::min(next, queue.front().enqueue_us + config_.max_wait_us);
    for (const PendingRequest& request : queue) {
      if (request.deadline_us != 0) {
        next = std::min(next, request.deadline_us);
      }
    }
  }
  return next;
}

std::size_t MicroBatcher::tenant_depth(const std::string& tenant) const {
  const auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace lehdc::serve
