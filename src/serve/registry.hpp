// Multi-tenant model registry with atomic hot reload.
//
// Each tenant id maps to one model generation; the server looks tenants up
// per batch, and operators (re)load checksummed v2 pipeline bundles
// (core/pipeline_io.hpp) under the same tenant without stopping traffic.
// A reload is an atomic shared_ptr swap: batches already holding the old
// pipeline finish on it (in-flight batches pin their generation via the
// shared_ptr), new batches see the new one, and a failed load (missing
// file, CRC mismatch) throws *before* the swap — the previous model keeps
// serving. Tenant ids are validated at bind time (serve/tenant.hpp), so
// every key in the map is also a legal per-tenant metric-name suffix.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::serve {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads the bundle at `path` and binds (or re-binds) `tenant` to it.
  /// Throws std::runtime_error on I/O failure or a corrupt file; the
  /// registry is unchanged in that case. Returns the loaded pipeline.
  std::shared_ptr<const core::Pipeline> load(const std::string& tenant,
                                             const std::string& path);

  /// Registers an already-fitted in-process pipeline (tests, benches).
  /// Precondition: pipeline.fitted().
  std::shared_ptr<const core::Pipeline> add(const std::string& tenant,
                                            core::Pipeline pipeline);

  /// Binds (or re-binds) `tenant` to an existing generation: the atomic
  /// swap behind load()/add(), exposed for rollbacks and blue-green flips
  /// between generations already in memory. Precondition:
  /// valid_tenant_id(tenant) and model != nullptr. Returns `model`.
  std::shared_ptr<const core::Pipeline> bind(
      const std::string& tenant,
      std::shared_ptr<const core::Pipeline> model);

  /// The pipeline currently bound to `tenant`; nullptr when absent. The
  /// returned pointer stays valid across reloads (the old model lives
  /// until its last in-flight batch releases it).
  [[nodiscard]] std::shared_ptr<const core::Pipeline> get(
      const std::string& tenant) const;

  /// Unbinds `tenant`; returns false when it was not registered.
  /// In-flight batches keep their pinned generation; new lookups see
  /// nullptr and the server sheds with kModelNotFound.
  bool evict(const std::string& tenant);

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::shared_ptr<const core::Pipeline>> models_
      LEHDC_GUARDED_BY(mutex_);
};

}  // namespace lehdc::serve
