// Named model registry with atomic hot reload.
//
// The server looks models up by name per batch; operators (re)load
// checksummed v2 pipeline bundles (core/pipeline_io.hpp) under the same
// name without stopping traffic. A reload is an atomic shared_ptr swap:
// batches already holding the old pipeline finish on it, new batches see
// the new one, and a failed load (missing file, CRC mismatch) throws
// *before* the swap — the previous model keeps serving.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace lehdc::serve {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads the bundle at `path` and binds (or re-binds) `name` to it.
  /// Throws std::runtime_error on I/O failure or a corrupt file; the
  /// registry is unchanged in that case. Returns the loaded pipeline.
  std::shared_ptr<const core::Pipeline> load(const std::string& name,
                                             const std::string& path);

  /// Registers an already-fitted in-process pipeline (tests, benches).
  /// Precondition: pipeline.fitted().
  std::shared_ptr<const core::Pipeline> add(const std::string& name,
                                            core::Pipeline pipeline);

  /// Binds (or re-binds) `name` to an existing generation: the atomic
  /// swap behind load()/add(), exposed for rollbacks and blue-green flips
  /// between generations already in memory. Returns `model`.
  std::shared_ptr<const core::Pipeline> bind(
      const std::string& name, std::shared_ptr<const core::Pipeline> model);

  /// The pipeline currently bound to `name`; nullptr when absent. The
  /// returned pointer stays valid across reloads (the old model lives
  /// until its last in-flight batch releases it).
  [[nodiscard]] std::shared_ptr<const core::Pipeline> get(
      const std::string& name) const;

  /// Unbinds `name`; returns false when it was not registered.
  bool remove(const std::string& name);

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const core::Pipeline>> models_;
};

}  // namespace lehdc::serve
