// Online learning sidecar: label feedback → shadow learner → blue-green
// flips.
//
// The serving hot path predicts; ground truth arrives later (if at all) as
// LSF2 feedback frames correlated by (tenant, request id). This sidecar
// turns that feedback into model improvement without ever blocking
// inference dispatch:
//
//   dispatch ──record()──► correlation ring   (features of served requests)
//   feedback ──offer()──► bounded queue ──worker──► shadow OnlineHdcLearner
//                                             │
//                           every K updates / T µs, gated on shadow-vs-live
//                           accuracy over a holdout ring
//                                             ▼
//                          binarize → Pipeline::restore → ModelRegistry::bind
//
// The shadow learner is a per-tenant core::OnlineHdcLearner (the streaming
// Eq. 3 rule) fed off the hot path: record() and offer_feedback() do O(1)
// map work under a mutex the learner never holds, and all learning happens
// on the sidecar's own worker thread (production) or inside pump()
// (manual mode — the chaos harness drives it in virtual time for
// deterministic drift scenarios). A flip publishes the binarized shadow as
// a new pipeline generation through the registry's atomic shared_ptr swap;
// in-flight batches keep their pinned generation, exactly like a hot
// reload. Optionally every Rth flip runs a background LeHDC refinement
// pass (the src/nn trainer) over the accumulated feedback set instead of
// a plain binarization.
//
// Metrics (lehdc.metrics.v1):
//   serve.online.feedback / rejected / updates / flips / refinements
//   serve.online.drift_alarm                                    counters
//   serve.online.queue_depth / shadow_accuracy                    gauges
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/online.hpp"
#include "serve/clock.hpp"
#include "serve/error.hpp"
#include "serve/registry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::serve {

struct OnlineSidecarConfig {
  /// Shadow learner update rule (core/online.hpp). Perceptron is the
  /// paper's Eq. 3 retraining rule in streaming form.
  core::OnlineMode mode = core::OnlineMode::kPerceptron;
  std::int32_t alpha = 1;
  std::size_t warmup_per_class = 3;
  /// Seeds the learner tie-break and the refinement pass.
  std::uint64_t seed = 1;

  /// Served predictions remembered per tenant for feedback correlation;
  /// oldest entries are evicted, and feedback for an evicted id is a
  /// typed kUnknownCorrelation.
  std::size_t correlation_capacity = 1024;
  /// Bounded feedback queue (all tenants); a full queue sheds feedback
  /// with kQueueFull instead of blocking the transport.
  std::size_t queue_capacity = 256;

  /// Every Nth accepted feedback is held out (never trained on) to gate
  /// flips; 0 disables the holdout and every feedback trains.
  std::size_t holdout_every = 4;
  /// Holdout ring size per tenant (oldest samples overwritten).
  std::size_t holdout_capacity = 64;
  /// Flips are suppressed until the holdout holds this many samples.
  std::size_t min_holdout = 8;

  /// Flip policy: attempt a blue-green flip every K shadow updates
  /// (0 disables the count trigger) ...
  std::size_t flip_every_updates = 64;
  /// ... or every T microseconds of Clock time with at least one update
  /// pending (0 disables the time trigger).
  std::uint64_t flip_every_us = 0;

  /// Every Rth flip runs a LeHDC refinement pass over the accumulated
  /// feedback set instead of plain binarization (0 = never refine).
  std::size_t refine_every_flips = 0;
  std::size_t refine_epochs = 5;
  /// Feedback samples retained for refinement (ring, oldest overwritten).
  std::size_t refine_capacity = 2048;

  /// Drift alarm: at every flip attempt, when the live generation's
  /// holdout accuracy trails the shadow's by at least this margin, the
  /// serve.online.drift_alarm counter fires — the live model has visibly
  /// drifted from what the feedback stream supports, even if the flip
  /// that usually follows repairs it. 0 disables the alarm.
  double drift_alarm_margin = 0.1;

  /// No worker thread; the owner drains feedback explicitly with pump().
  /// Combined with a FakeClock this makes flip timing deterministic — the
  /// chaos drift scenarios run this way.
  bool manual = false;
};

/// Per-tenant online-learning state machine. Thread-safe; one instance
/// serves every tenant of a registry. Construction starts the worker
/// unless config.manual.
class OnlineSidecar {
 public:
  /// `registry` must outlive the sidecar; `clock` == nullptr selects the
  /// system steady clock (share the server's FakeClock in tests).
  OnlineSidecar(ModelRegistry& registry, const OnlineSidecarConfig& config,
                Clock* clock = nullptr);
  ~OnlineSidecar();

  OnlineSidecar(const OnlineSidecar&) = delete;
  OnlineSidecar& operator=(const OnlineSidecar&) = delete;

  /// Enables online learning for `tenant`. The shadow learner's dimension
  /// and class count are taken from the currently bound pipeline, which
  /// must exist and export a binary classifier. Throws on violation.
  void enable(const std::string& tenant);
  [[nodiscard]] bool enabled(const std::string& tenant) const;

  /// Called by the dispatch path for every served prediction of an
  /// enabled tenant (no-op otherwise): remembers the request's features
  /// so later feedback can be correlated. O(1) under a mutex; never
  /// touches the learner.
  void record(const std::string& tenant, std::uint64_t id,
              std::vector<float> features);

  /// Offers one ground-truth label for a previously served request.
  /// kNone: accepted (the correlation record is consumed — a second
  /// feedback for the same id is unknown). kUnknownCorrelation: the
  /// tenant is not online-enabled, the id was never served for it, or
  /// its record was evicted. kBadRequest: label out of range.
  /// kQueueFull: the bounded feedback queue is at capacity.
  Reject offer_feedback(const std::string& tenant, std::uint64_t id,
                        std::int32_t label);

  /// Manual-mode drain: consumes every queued feedback item through the
  /// same learn/flip path the worker runs, returning the number consumed.
  std::size_t pump();

  /// Persists / restores a tenant's shadow accumulators (LHON file, see
  /// core/online.hpp) so a restarted server resumes bit-identically.
  void save_shadow(const std::string& tenant,
                   const std::string& path) const;
  void restore_shadow(const std::string& tenant, const std::string& path);

  // Introspection (tests, chaos invariants, CLI stats).
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t feedback_accepted(const std::string& tenant) const;
  [[nodiscard]] std::size_t updates(const std::string& tenant) const;
  [[nodiscard]] std::size_t flips(const std::string& tenant) const;
  [[nodiscard]] std::size_t refinements(const std::string& tenant) const;
  /// Shadow accuracy over the holdout at the last flip attempt (0 before).
  [[nodiscard]] double shadow_accuracy(const std::string& tenant) const;
  /// Drift alarms raised for the tenant (see drift_alarm_margin).
  [[nodiscard]] std::size_t drift_alarms(const std::string& tenant) const;

  [[nodiscard]] const OnlineSidecarConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Correlation {
    std::uint64_t seq = 0;
    std::vector<float> features;
  };

  struct TenantState;

  struct FeedbackItem {
    std::string tenant;
    std::vector<float> features;
    std::int32_t label = 0;
    std::uint64_t now_us = 0;
  };

  void worker_loop() LEHDC_EXCLUDES(mutex_, learn_mutex_);
  /// Encode → observe/holdout → flip check for one item. Takes the locks
  /// it needs (mutex_ then, after releasing it, learn_mutex_ — never both
  /// at once); caller holds none.
  void process(FeedbackItem item) LEHDC_EXCLUDES(mutex_, learn_mutex_);
  /// Flip policy + gate + bind. Caller holds learn_mutex_.
  void maybe_flip(TenantState& state, const std::string& tenant,
                  std::uint64_t now_us) LEHDC_REQUIRES(learn_mutex_);
  /// Looks a tenant up under mutex_ and lets the pointer escape the lock:
  /// safe because tenants_ values are never erased (the map only grows),
  /// so TenantState addresses are stable for the sidecar's lifetime.
  /// Callers must still take the side-appropriate mutex before touching
  /// the state's fields.
  [[nodiscard]] const TenantState* find(const std::string& tenant) const
      LEHDC_EXCLUDES(mutex_);
  [[nodiscard]] TenantState* find(const std::string& tenant)
      LEHDC_EXCLUDES(mutex_);

  ModelRegistry& registry_;
  OnlineSidecarConfig config_;
  Clock* clock_;

  /// Guards tenants_ (map shape + correlation rings), queue_ and stop_.
  /// Hot-path cost for record()/offer_feedback() is one lock + map op.
  /// Lock-order discipline (compiler-checked via the LEHDC_EXCLUDES
  /// annotations above): mutex_ and learn_mutex_ are never held at the
  /// same time — every path releases one before taking the other.
  mutable util::Mutex mutex_;
  util::CondVar work_ready_;
  /// Map shape is guarded by mutex_. The pointed-to TenantState is
  /// split-guarded: its correlation side under mutex_, its learning side
  /// under learn_mutex_ (see the section comments in online.cpp).
  std::map<std::string, std::unique_ptr<TenantState>> tenants_
      LEHDC_GUARDED_BY(mutex_);
  std::deque<FeedbackItem> queue_ LEHDC_GUARDED_BY(mutex_);
  bool stop_ LEHDC_GUARDED_BY(mutex_) = false;

  /// Guards every tenant's learner/holdout/flip state. Only the learning
  /// side (worker or pump) and introspection take it, so a slow
  /// refinement pass never delays record() on the dispatch path.
  mutable util::Mutex learn_mutex_;

  std::thread worker_;  // set in ctor, joined in dtor
};

}  // namespace lehdc::serve
