#include "serve/framing.hpp"

#include <cstring>
#include <stdexcept>

#include "serve/protocol.hpp"

namespace lehdc::serve {

namespace {

constexpr std::size_t kHeaderBytes = 8;  // 4-byte magic + u32 payload size

}  // namespace

FrameDecoder::FrameDecoder(const char magic_v1[4], const char magic_v2[4],
                           std::string context, const char* magic_extra)
    : context_(std::move(context)) {
  std::memcpy(magic_v1_, magic_v1, sizeof(magic_v1_));
  std::memcpy(magic_v2_, magic_v2, sizeof(magic_v2_));
  if (magic_extra != nullptr) {
    std::memcpy(magic_extra_, magic_extra, sizeof(magic_extra_));
    has_extra_ = true;
  }
}

void FrameDecoder::feed(std::string_view bytes) {
  // Compact the consumed prefix before growing: the buffer never holds
  // more than one partial frame plus whatever the transport just handed
  // over, so per-connection decode memory stays bounded by
  // kHeaderBytes + kMaxPayloadBytes + one read's worth of pipelined bytes.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

bool FrameDecoder::next(Frame* out) {
  const std::size_t available = buffer_.size() - pos_;
  if (available < kHeaderBytes) {
    return false;
  }
  const char* header = buffer_.data() + pos_;
  int version = 0;
  if (std::memcmp(header, magic_v1_, 4) == 0) {
    version = 1;
  } else if (std::memcmp(header, magic_v2_, 4) == 0) {
    version = 2;
  } else if (has_extra_ && std::memcmp(header, magic_extra_, 4) == 0) {
    version = kFeedbackFrameKind;
  } else {
    throw std::runtime_error("bad frame magic in " + context_);
  }
  std::uint32_t size = 0;
  std::memcpy(&size, header + 4, sizeof(size));
  if (size > kMaxPayloadBytes) {
    throw std::runtime_error("oversized frame (" + std::to_string(size) +
                             " bytes) in " + context_);
  }
  if (available < kHeaderBytes + size) {
    return false;
  }
  out->version = version;
  out->payload = std::string_view(header + kHeaderBytes, size);
  pos_ += kHeaderBytes + size;
  return true;
}

std::size_t FrameDecoder::bytes_needed() const noexcept {
  const std::size_t available = buffer_.size() - pos_;
  if (available < kHeaderBytes) {
    return kHeaderBytes - available;
  }
  std::uint32_t size = 0;
  std::memcpy(&size, buffer_.data() + pos_ + 4, sizeof(size));
  // An oversized or garbage header still reports a positive need; next()
  // raises the typed error when the caller actually parses it.
  const std::size_t want = kHeaderBytes + std::min<std::size_t>(
                                              size, kMaxPayloadBytes + 1);
  return want > available ? want - available : 0;
}

std::size_t FrameDecoder::buffered() const noexcept {
  return buffer_.size() - pos_;
}

void FrameDecoder::reset() noexcept {
  buffer_.clear();
  pos_ = 0;
}

FrameDecoder make_request_decoder(std::string context) {
  return {kRequestMagic, kRequestMagicV2, std::move(context),
          kFeedbackMagicV2};
}

FrameDecoder make_response_decoder(std::string context) {
  return {kResponseMagic, kResponseMagicV2, std::move(context)};
}

void FrameEncoder::push(std::string frame) {
  if (frame.empty()) {
    return;
  }
  backlog_ += frame.size();
  frames_.push_back(std::move(frame));
}

std::string_view FrameEncoder::pending() const noexcept {
  if (frames_.empty()) {
    return {};
  }
  const std::string& front = frames_.front();
  return std::string_view(front).substr(front_offset_);
}

void FrameEncoder::consume(std::size_t n) {
  if (n > pending().size()) {
    throw std::logic_error("FrameEncoder::consume past the pending run");
  }
  front_offset_ += n;
  backlog_ -= n;
  if (!frames_.empty() && front_offset_ == frames_.front().size()) {
    frames_.pop_front();
    front_offset_ = 0;
  }
}

}  // namespace lehdc::serve
