// Incremental wire framing: the transport-agnostic half of the protocol.
//
// protocol.hpp defines the frame grammar (magic | u32 size | payload, two
// live generations per direction); this header owns *delivery*: turning an
// arbitrary sequence of partial reads into whole frames (FrameDecoder) and
// a queue of whole frames into resumable partial writes (FrameEncoder).
// Neither class assumes a blocking stream — the epoll event loop feeds the
// decoder whatever recv() returned and drains the encoder by whatever
// write() accepted, while the blocking istream readers in protocol.cpp run
// the very same state machine with exact-sized reads (bytes_needed()), so
// there is exactly one framing implementation to harden and fuzz.
//
// Both sides reuse their buffers across frames: steady-state decode of
// small frames does no allocation beyond the first, and a connection's
// frame memory is bounded by 8 + kMaxPayloadBytes on the read side and the
// caller-enforced backlog cap on the write side. The 16 MiB payload cap
// and the magic check are enforced at header parse — before any payload
// byte is buffered — so a hostile length prefix or interleaved garbage is
// a typed std::runtime_error, never an allocation.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace lehdc::serve {

/// Reassembles whole frames from partial reads. Accepts the two magics of
/// one direction (request or response; see the factories below) and
/// reports which generation each frame arrived as.
class FrameDecoder {
 public:
  /// One complete frame. `payload` points into the decoder's buffer and
  /// is valid until the next feed()/next()/reset() call.
  struct Frame {
    int version = 0;
    std::string_view payload;
  };

  /// `context` names the byte source for error messages. `magic_extra`
  /// optionally accepts a third magic reported as version
  /// kFeedbackFrameKind — the request direction carries LSF2 feedback
  /// frames interleaved with LSRQ/LSR2 on the same stream.
  FrameDecoder(const char magic_v1[4], const char magic_v2[4],
               std::string context, const char* magic_extra = nullptr);

  /// Appends raw bytes from the transport. The decoder never rejects a
  /// feed; validation happens in next() at frame-header granularity.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame. Returns false when the buffered
  /// bytes end mid-frame (feed more and retry). Throws std::runtime_error
  /// on a bad magic or an oversized length — the stream cannot be
  /// re-synchronized past either, so the caller must drop the connection.
  [[nodiscard]] bool next(Frame* out);

  /// Minimum additional bytes that could complete the current frame: the
  /// rest of the 8-byte header, or the rest of a payload whose header has
  /// parsed. Lets a blocking reader issue exact-sized reads; an event
  /// loop just ignores it and feeds whatever arrived.
  [[nodiscard]] std::size_t bytes_needed() const noexcept;

  /// Bytes currently buffered (the partial frame, if any). EOF from the
  /// transport while mid_frame() is a truncated stream, not a clean close.
  [[nodiscard]] std::size_t buffered() const noexcept;
  [[nodiscard]] bool mid_frame() const noexcept { return buffered() > 0; }

  /// Drops all buffered bytes and returns to the frame boundary.
  void reset() noexcept;

 private:
  char magic_v1_[4];
  char magic_v2_[4];
  char magic_extra_[4];
  bool has_extra_ = false;
  std::string context_;
  std::string buffer_;
  /// Bytes of buffer_ already consumed by returned frames; compacted on
  /// the next feed() so returned payload views stay valid in between.
  std::size_t pos_ = 0;
};

/// Decoder for request frames (LSRQ / LSR2), plus LSF2 feedback frames
/// reported as version kFeedbackFrameKind.
[[nodiscard]] FrameDecoder make_request_decoder(std::string context);
/// Decoder for response frames (LSRS / LSS2).
[[nodiscard]] FrameDecoder make_response_decoder(std::string context);

/// Write-side backlog with short-write resume. Whole encoded frames go in
/// (push), the transport takes however many bytes the kernel accepts out
/// (pending + consume). Frames always leave in push order and are never
/// interleaved, so per-connection response ordering is the caller's only
/// concern. The encoder itself is unbounded; callers enforce their
/// backlog cap via backlog_bytes() *before* pushing (Connection sheds
/// with a typed reject instead of growing the queue).
class FrameEncoder {
 public:
  /// Queues one fully encoded frame (header + payload).
  void push(std::string frame);

  /// The next contiguous run of unwritten bytes (a suffix of the oldest
  /// pending frame); empty when nothing is queued. Valid until the next
  /// push()/consume() call.
  [[nodiscard]] std::string_view pending() const noexcept;

  /// Marks `n` bytes of pending() as written (n may be any amount the
  /// transport accepted, including 0). Throws std::logic_error if n
  /// exceeds the pending run.
  void consume(std::size_t n);

  /// Total unwritten bytes across all queued frames.
  [[nodiscard]] std::size_t backlog_bytes() const noexcept {
    return backlog_;
  }
  [[nodiscard]] bool empty() const noexcept { return backlog_ == 0; }

 private:
  std::deque<std::string> frames_;
  /// Bytes of frames_.front() already written.
  std::size_t front_offset_ = 0;
  std::size_t backlog_ = 0;
};

}  // namespace lehdc::serve
