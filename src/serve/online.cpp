#include "serve/online.hpp"

#include <algorithm>
#include <utility>

#include "core/lehdc_trainer.hpp"
#include "core/pipeline.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hdc/encoder.hpp"
#include "obs/metrics.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"

namespace lehdc::serve {

namespace {

obs::Counter& feedback_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.online.feedback");
  return c;
}

obs::Counter& rejected_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.online.rejected");
  return c;
}

obs::Counter& updates_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.online.updates");
  return c;
}

obs::Counter& flips_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.online.flips");
  return c;
}

obs::Counter& refinements_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.online.refinements");
  return c;
}

obs::Counter& drift_alarm_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.online.drift_alarm");
  return c;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("serve.online.queue_depth");
  return g;
}

obs::Gauge& shadow_accuracy_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("serve.online.shadow_accuracy");
  return g;
}

}  // namespace

struct OnlineSidecar::TenantState {
  explicit TenantState(const core::OnlineConfig& learner_config)
      : class_count(learner_config.class_count), learner(learner_config) {}

  // --- immutable after construction (readable under either mutex) ---
  /// Label range for admission checks. Duplicates learner.class_count():
  /// offer_feedback() validates labels under mutex_ and must not peek at
  /// the learn_mutex_-side learner to do so (restore_shadow() asserts the
  /// shape never changes, so this copy cannot go stale).
  const std::size_t class_count;

  // --- correlation side (guarded by OnlineSidecar::mutex_) ---
  std::unordered_map<std::uint64_t, Correlation> correlations;
  /// Insertion order as (id, seq); a re-served id leaves a stale entry
  /// that eviction skips by sequence mismatch, so the deque stays exact
  /// (one pop per push) and the map is bounded by correlation_capacity.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> order;
  std::uint64_t next_seq = 0;
  std::size_t accepted = 0;

  // --- learning side (guarded by OnlineSidecar::learn_mutex_) ---
  core::OnlineHdcLearner learner;
  /// Generation bound at enable(); pins the (immutable, generation-
  /// invariant) encoder and the PipelineConfig that flips restore with.
  std::shared_ptr<const core::Pipeline> base;
  hdc::RecordEncoderConfig encoder_config;

  std::vector<hv::BitVector> holdout_hv;
  std::vector<int> holdout_labels;
  std::size_t holdout_next = 0;

  std::vector<hv::BitVector> refine_hv;
  std::vector<int> refine_labels;
  std::size_t refine_next = 0;

  std::size_t feedback_seen = 0;
  std::size_t updates_at_last_check = 0;
  std::uint64_t last_check_us = 0;
  std::size_t flips = 0;
  std::size_t refinements = 0;
  double last_shadow_accuracy = 0.0;
  std::size_t drift_alarms = 0;
};

OnlineSidecar::OnlineSidecar(ModelRegistry& registry,
                             const OnlineSidecarConfig& config, Clock* clock)
    : registry_(registry),
      config_(config),
      clock_(clock != nullptr ? clock : &system_clock()) {
  util::expects(config.correlation_capacity > 0,
                "correlation_capacity must be positive");
  util::expects(config.queue_capacity > 0, "queue_capacity must be positive");
  if (!config_.manual) {
    worker_ = std::thread(&OnlineSidecar::worker_loop, this);
  }
}

OnlineSidecar::~OnlineSidecar() {
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void OnlineSidecar::enable(const std::string& tenant) {
  const auto live = registry_.get(tenant);
  util::expects(live != nullptr, "online enable: tenant has no bound model");
  const hdc::BinaryClassifier* binary = live->model().as_binary();
  util::expects(binary != nullptr,
                "online enable: bound model exports no binary classifier");
  const auto& encoder =
      dynamic_cast<const hdc::RecordEncoder&>(live->encoder());

  core::OnlineConfig learner_config;
  learner_config.dim = live->config().dim;
  learner_config.class_count = binary->class_count();
  learner_config.mode = config_.mode;
  learner_config.alpha = config_.alpha;
  learner_config.warmup_per_class = config_.warmup_per_class;
  learner_config.seed = config_.seed;

  auto state = std::make_unique<TenantState>(learner_config);
  state->base = live;
  state->encoder_config = encoder.config();
  state->last_check_us = clock_->now_us();

  const util::MutexLock lock(mutex_);
  util::expects(tenants_.find(tenant) == tenants_.end(),
                "online enable: tenant already enabled");
  tenants_.emplace(tenant, std::move(state));
}

bool OnlineSidecar::enabled(const std::string& tenant) const {
  const util::MutexLock lock(mutex_);
  return tenants_.find(tenant) != tenants_.end();
}

void OnlineSidecar::record(const std::string& tenant, std::uint64_t id,
                           std::vector<float> features) {
  const util::MutexLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return;
  }
  TenantState& state = *it->second;
  const std::uint64_t seq = state.next_seq++;
  state.correlations[id] = Correlation{seq, std::move(features)};
  state.order.emplace_back(id, seq);
  // One amortized pop per push keeps both containers bounded; stale
  // entries (the id was re-served under a newer seq) pop for free.
  while (state.order.size() > config_.correlation_capacity) {
    const auto [old_id, old_seq] = state.order.front();
    state.order.pop_front();
    const auto victim = state.correlations.find(old_id);
    if (victim != state.correlations.end() &&
        victim->second.seq == old_seq) {
      state.correlations.erase(victim);
    }
  }
}

Reject OnlineSidecar::offer_feedback(const std::string& tenant,
                                     std::uint64_t id, std::int32_t label) {
  Reject verdict = Reject::kNone;
  bool notify = false;
  {
    const util::MutexLock lock(mutex_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      verdict = Reject::kUnknownCorrelation;
    } else {
      TenantState& state = *it->second;
      const auto correlation = state.correlations.find(id);
      if (correlation == state.correlations.end()) {
        verdict = Reject::kUnknownCorrelation;
      } else if (label < 0 ||
                 static_cast<std::size_t>(label) >= state.class_count) {
        verdict = Reject::kBadRequest;
      } else if (queue_.size() >= config_.queue_capacity) {
        verdict = Reject::kQueueFull;
      } else {
        FeedbackItem item;
        item.tenant = tenant;
        item.features = std::move(correlation->second.features);
        item.label = label;
        item.now_us = clock_->now_us();
        state.correlations.erase(correlation);
        queue_.push_back(std::move(item));
        queue_depth_gauge().set(static_cast<double>(queue_.size()));
        ++state.accepted;
        notify = true;
      }
    }
  }
  if (verdict == Reject::kNone) {
    feedback_counter().add();
    if (notify) {
      work_ready_.notify_one();
    }
  } else {
    rejected_counter().add();
  }
  return verdict;
}

std::size_t OnlineSidecar::pump() {
  std::size_t consumed = 0;
  while (true) {
    FeedbackItem item;
    {
      const util::MutexLock lock(mutex_);
      if (queue_.empty()) {
        return consumed;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    process(std::move(item));
    ++consumed;
  }
}

void OnlineSidecar::worker_loop() {
  util::UniqueLock lock(mutex_);
  while (true) {
    if (queue_.empty()) {
      if (stop_) {
        return;  // accepted feedback is drained before shutdown
      }
      work_ready_.wait(lock);
      continue;
    }
    FeedbackItem item = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
    lock.unlock();
    process(std::move(item));
    lock.lock();
  }
}

void OnlineSidecar::process(FeedbackItem item) {
  TenantState* state = nullptr;
  std::shared_ptr<const core::Pipeline> base;
  {
    const util::MutexLock lock(mutex_);
    const auto it = tenants_.find(item.tenant);
    if (it == tenants_.end()) {
      return;
    }
    state = it->second.get();
    base = it->second->base;
  }
  // Encode outside both locks: the encoder is immutable and shared across
  // generations, and this is the expensive part of a feedback update.
  const hv::BitVector encoded = base->encoder().encode(item.features);

  const util::MutexLock lock(learn_mutex_);
  ++state->feedback_seen;
  const bool hold_out = config_.holdout_every > 0 &&
                        config_.holdout_capacity > 0 &&
                        state->feedback_seen % config_.holdout_every == 0;
  if (hold_out) {
    if (state->holdout_hv.size() < config_.holdout_capacity) {
      state->holdout_hv.push_back(encoded);
      state->holdout_labels.push_back(item.label);
    } else {
      state->holdout_hv[state->holdout_next] = encoded;
      state->holdout_labels[state->holdout_next] = item.label;
      state->holdout_next =
          (state->holdout_next + 1) % config_.holdout_capacity;
    }
  } else {
    const std::size_t before = state->learner.updates();
    state->learner.observe(encoded, item.label);
    const std::size_t applied = state->learner.updates() - before;
    if (applied > 0) {
      updates_counter().add(static_cast<std::uint64_t>(applied));
    }
    if (config_.refine_every_flips > 0 && config_.refine_capacity > 0) {
      if (state->refine_hv.size() < config_.refine_capacity) {
        state->refine_hv.push_back(encoded);
        state->refine_labels.push_back(item.label);
      } else {
        state->refine_hv[state->refine_next] = encoded;
        state->refine_labels[state->refine_next] = item.label;
        state->refine_next =
            (state->refine_next + 1) % config_.refine_capacity;
      }
    }
  }
  maybe_flip(*state, item.tenant, item.now_us);
}

void OnlineSidecar::maybe_flip(TenantState& state, const std::string& tenant,
                               std::uint64_t now_us) {
  const std::size_t since_check =
      state.learner.updates() - state.updates_at_last_check;
  const bool count_due = config_.flip_every_updates > 0 &&
                         since_check >= config_.flip_every_updates;
  const bool time_due = config_.flip_every_us > 0 && since_check > 0 &&
                        now_us - state.last_check_us >= config_.flip_every_us;
  if (!count_due && !time_due) {
    return;
  }
  state.updates_at_last_check = state.learner.updates();
  state.last_check_us = now_us;

  if (state.holdout_hv.size() < config_.min_holdout) {
    return;
  }

  // Gate: the shadow must match or beat the live generation over the
  // holdout, else the flip is skipped (the counters reset above keep the
  // cadence — the next attempt waits for K more updates).
  std::size_t shadow_correct = 0;
  for (std::size_t i = 0; i < state.holdout_hv.size(); ++i) {
    if (state.learner.predict(state.holdout_hv[i]) ==
        state.holdout_labels[i]) {
      ++shadow_correct;
    }
  }
  const double shadow_accuracy = static_cast<double>(shadow_correct) /
                                 static_cast<double>(state.holdout_hv.size());
  state.last_shadow_accuracy = shadow_accuracy;
  shadow_accuracy_gauge().set(shadow_accuracy);

  const auto live = registry_.get(tenant);
  if (live == nullptr) {
    return;  // evicted mid-run: nothing to flip against
  }
  std::vector<int> live_predictions(state.holdout_hv.size(), -1);
  live->predict_batch(state.holdout_hv, live_predictions);
  std::size_t live_correct = 0;
  for (std::size_t i = 0; i < live_predictions.size(); ++i) {
    if (live_predictions[i] == state.holdout_labels[i]) {
      ++live_correct;
    }
  }
  const double live_accuracy = static_cast<double>(live_correct) /
                               static_cast<double>(state.holdout_hv.size());
  // Drift detection (not just recovery): the live generation trailing the
  // shadow by the configured margin means the traffic the feedback stream
  // describes has moved away from what the live model was trained on.
  // Alarm before the flip gate so the event is visible even though the
  // flip below usually repairs it (and also when the margin is crossed
  // but the flip is later skipped, e.g. a refinement gate).
  if (config_.drift_alarm_margin > 0.0 &&
      live_accuracy + config_.drift_alarm_margin <= shadow_accuracy) {
    ++state.drift_alarms;
    drift_alarm_counter().add();
  }
  if (shadow_accuracy < live_accuracy) {
    return;
  }

  hdc::BinaryClassifier next_model = state.learner.snapshot();
  if (config_.refine_every_flips > 0 && !state.refine_hv.empty() &&
      (state.flips + 1) % config_.refine_every_flips == 0) {
    // Background LeHDC refinement: retrain on the accumulated feedback
    // set through the src/nn trainer. Deterministic given the seed, so
    // chaos runs stay byte-identical.
    hdc::EncodedDataset feedback_set(state.learner.dim(),
                                     state.learner.class_count());
    for (std::size_t i = 0; i < state.refine_hv.size(); ++i) {
      feedback_set.add(state.refine_hv[i], state.refine_labels[i]);
    }
    core::LeHdcConfig refine_config = state.base->config().lehdc;
    refine_config.epochs = config_.refine_epochs;
    const core::LeHdcTrainer trainer(refine_config);
    train::TrainOptions options;
    options.seed = config_.seed + state.flips;
    const train::TrainResult result = trainer.train(feedback_set, options);
    if (const hdc::BinaryClassifier* refined = result.model->as_binary()) {
      // Gate the refined candidate on the same holdout before it may
      // displace the shadow snapshot: the feedback ring spans the whole
      // stream, so right after a concept shift it still carries stale
      // labels and the retrained model can score far below the shadow.
      // Binding it anyway would wedge the tenant — a converged shadow
      // stops producing updates, so no later flip would repair the live
      // generation.
      std::size_t refined_correct = 0;
      for (std::size_t i = 0; i < state.holdout_hv.size(); ++i) {
        if (refined->predict(state.holdout_hv[i]) ==
            state.holdout_labels[i]) {
          ++refined_correct;
        }
      }
      if (refined_correct >= shadow_correct) {
        next_model = *refined;
        ++state.refinements;
        refinements_counter().add();
      }
    }
  }

  auto generation = std::make_shared<const core::Pipeline>(
      core::Pipeline::restore(state.base->config(), state.encoder_config,
                              std::move(next_model)));
  registry_.bind(tenant, std::move(generation));
  ++state.flips;
  flips_counter().add();
}

void OnlineSidecar::save_shadow(const std::string& tenant,
                                const std::string& path) const {
  const TenantState* state = find(tenant);
  util::expects(state != nullptr, "save_shadow: tenant not online-enabled");
  const util::MutexLock lock(learn_mutex_);
  state->learner.save(path);
}

void OnlineSidecar::restore_shadow(const std::string& tenant,
                                   const std::string& path) {
  TenantState* state = find(tenant);
  util::expects(state != nullptr,
                "restore_shadow: tenant not online-enabled");
  core::OnlineHdcLearner loaded = core::OnlineHdcLearner::load(path);
  const util::MutexLock lock(learn_mutex_);
  util::expects(loaded.dim() == state->learner.dim() &&
                    loaded.class_count() == state->learner.class_count(),
                "restore_shadow: saved state shape mismatch");
  state->learner = std::move(loaded);
}

const OnlineSidecar::TenantState* OnlineSidecar::find(
    const std::string& tenant) const {
  const util::MutexLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

OnlineSidecar::TenantState* OnlineSidecar::find(const std::string& tenant) {
  const util::MutexLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::size_t OnlineSidecar::queue_depth() const {
  const util::MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t OnlineSidecar::feedback_accepted(
    const std::string& tenant) const {
  const util::MutexLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->accepted;
}

std::size_t OnlineSidecar::updates(const std::string& tenant) const {
  const TenantState* state = find(tenant);
  if (state == nullptr) {
    return 0;
  }
  const util::MutexLock lock(learn_mutex_);
  return state->learner.updates();
}

std::size_t OnlineSidecar::flips(const std::string& tenant) const {
  const TenantState* state = find(tenant);
  if (state == nullptr) {
    return 0;
  }
  const util::MutexLock lock(learn_mutex_);
  return state->flips;
}

std::size_t OnlineSidecar::refinements(const std::string& tenant) const {
  const TenantState* state = find(tenant);
  if (state == nullptr) {
    return 0;
  }
  const util::MutexLock lock(learn_mutex_);
  return state->refinements;
}

double OnlineSidecar::shadow_accuracy(const std::string& tenant) const {
  const TenantState* state = find(tenant);
  if (state == nullptr) {
    return 0.0;
  }
  const util::MutexLock lock(learn_mutex_);
  return state->last_shadow_accuracy;
}

std::size_t OnlineSidecar::drift_alarms(const std::string& tenant) const {
  const TenantState* state = find(tenant);
  if (state == nullptr) {
    return 0;
  }
  const util::MutexLock lock(learn_mutex_);
  return state->drift_alarms;
}

}  // namespace lehdc::serve
