// Single-threaded epoll front-end over transport::Connection.
//
// One EventLoop multiplexes any number of listeners (AF_UNIX and TCP mix
// freely) and their accepted connections over a level-triggered epoll
// set, entirely non-blocking: accept loops until EAGAIN, reads stop at
// the per-connection budget (level-triggered epoll re-reports leftover
// bytes next turn, which is the fairness mechanism), writes take what the
// kernel accepts and resume on EPOLLOUT. The loop owns no protocol or
// shedding logic — that all lives in Connection — it only moves bytes,
// tracks epoll interest, and reaps connections that are done, failed or
// idle-expired.
//
// Interest tracking is the backpressure wiring: a connection whose
// inflight or write-backlog cap is hit reports wants_read() == false and
// its EPOLLIN interest is dropped (counted in serve.conn.read_stalls), so
// the kernel buffer — then the peer — absorbs the pressure; EPOLLOUT is
// registered only while the encoder holds unwritten bytes, with a short
// write (EAGAIN) counted in serve.conn.write_stalls.
//
// Drive it by calling poll_once() in a loop. Timing comes from the
// server's Clock, so a FakeClock makes idle-timeout behaviour
// deterministic in tests; with a manual-dispatch server the loop also
// pumps run_until_idle() each turn, letting a single thread be client,
// server and event loop in a test. epoll_wait blocking is clamped to
// stay responsive: zero while responses are in flight under manual
// dispatch, one millisecond under a worker thread, and never past the
// nearest idle deadline.
//
// Metrics (lehdc.metrics.v1): serve.conn.accepted / serve.conn.closed
// counters, serve.conn.active gauge, serve.conn.read_stalls /
// serve.conn.write_stalls counters, and per-connection lifetime byte
// histograms serve.conn.bytes_read / serve.conn.bytes_written observed
// at close.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>

#include "serve/transport/connection.hpp"

namespace lehdc::serve::transport {

struct EventLoopConfig {
  ConnectionConfig connection;
  /// Accepts beyond this are closed immediately (counted accepted and
  /// closed) — the listener stays drained so the backlog never wedges.
  std::size_t max_connections = 4096;
};

class EventLoop {
 public:
  /// `server` must outlive the loop. Its clock is the loop's clock.
  EventLoop(InferenceServer& server, const EventLoopConfig& config);

  /// Closes every connection and listener still registered.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a non-blocking listening socket (see socket.hpp) and takes
  /// ownership of the fd.
  void add_listener(int fd);

  /// One turn: pump ready responses, wait at most `max_wait_ms` for fd
  /// events (clamped as described above), service accepts/reads/writes,
  /// and reap finished or idle connections. Returns the number of
  /// responses written plus fd events handled — zero means the turn was
  /// pure waiting.
  std::size_t poll_once(int max_wait_ms);

  [[nodiscard]] std::size_t active_connections() const noexcept {
    return connections_.size();
  }
  /// Submitted-but-unanswered requests across every connection.
  [[nodiscard]] std::size_t inflight_total() const noexcept;
  [[nodiscard]] std::uint64_t accepted_total() const noexcept {
    return accepted_total_;
  }
  [[nodiscard]] std::uint64_t closed_total() const noexcept {
    return closed_total_;
  }

 private:
  struct ConnState {
    int fd = -1;
    std::uint32_t interest = 0;
    Connection conn;
    ConnState(int fd_in, std::uint64_t id, InferenceServer& server,
              const ConnectionConfig& config, std::uint64_t now_us)
        : fd(fd_in), conn(id, server, config, now_us) {}
  };

  [[nodiscard]] std::uint64_t now_us();
  void accept_ready(int listener_fd);
  void read_ready(ConnState& state);
  /// Writes until drained or EAGAIN; returns false when the connection
  /// died mid-write.
  bool write_ready(ConnState& state);
  /// Re-derives the epoll interest mask from the connection's state.
  void update_interest(ConnState& state);
  void close_connection(int fd, const char* reason);
  /// Computes the epoll timeout honouring inflight work + idle deadlines.
  [[nodiscard]] int clamp_wait(int max_wait_ms);

  InferenceServer& server_;
  EventLoopConfig config_;
  int epoll_fd_ = -1;
  std::set<int> listeners_;
  std::unordered_map<int, std::unique_ptr<ConnState>> connections_;
  std::uint64_t next_id_ = 1;
  std::uint64_t accepted_total_ = 0;
  std::uint64_t closed_total_ = 0;
};

}  // namespace lehdc::serve::transport
