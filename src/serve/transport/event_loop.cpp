#include "serve/transport/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace lehdc::serve::transport {

namespace {

/// Per-connection lifetime byte totals need byte-scaled bounds, not the
/// registry's default wall-time buckets: powers of four from 64 B to
/// 64 MiB (plus overflow).
constexpr std::array<double, 11> kByteBuckets = {
    64.0,      256.0,      1024.0,      4096.0,
    16384.0,   65536.0,    262144.0,    1048576.0,
    4194304.0, 16777216.0, 67108864.0,
};

struct ConnMetrics {
  obs::Counter& accepted;
  obs::Counter& closed;
  obs::Gauge& active;
  obs::Counter& read_stalls;
  obs::Counter& write_stalls;
  obs::Histogram& bytes_read;
  obs::Histogram& bytes_written;
};

ConnMetrics& conn_metrics() {
  auto& registry = obs::Registry::global();
  static ConnMetrics metrics{
      registry.counter("serve.conn.accepted"),
      registry.counter("serve.conn.closed"),
      registry.gauge("serve.conn.active"),
      registry.counter("serve.conn.read_stalls"),
      registry.counter("serve.conn.write_stalls"),
      registry.histogram("serve.conn.bytes_read", kByteBuckets),
      registry.histogram("serve.conn.bytes_written", kByteBuckets),
  };
  return metrics;
}

}  // namespace

EventLoop::EventLoop(InferenceServer& server, const EventLoopConfig& config)
    : server_(server), config_(config) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
}

EventLoop::~EventLoop() {
  for (const auto& [fd, state] : connections_) {
    ::close(fd);
  }
  for (const int fd : listeners_) {
    ::close(fd);
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

std::uint64_t EventLoop::now_us() { return server_.clock().now_us(); }

void EventLoop::add_listener(int fd) {
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
    throw std::runtime_error(std::string("epoll_ctl(listener): ") +
                             std::strerror(errno));
  }
  listeners_.insert(fd);
}

std::size_t EventLoop::inflight_total() const noexcept {
  std::size_t total = 0;
  for (const auto& [fd, state] : connections_) {
    total += state->conn.inflight_count();
  }
  return total;
}

int EventLoop::clamp_wait(int max_wait_ms) {
  int wait = std::max(0, max_wait_ms);
  if (inflight_total() > 0) {
    // Futures complete without an fd event; stay responsive. Under
    // manual dispatch virtual time only moves between turns, so never
    // block at all.
    wait = std::min(wait, server_.config().manual_dispatch ? 0 : 1);
  }
  if (wait == 0) {
    return 0;
  }
  std::uint64_t next_idle = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [fd, state] : connections_) {
    next_idle = std::min(next_idle, state->conn.idle_deadline_us());
  }
  if (next_idle != std::numeric_limits<std::uint64_t>::max()) {
    const std::uint64_t now = now_us();
    const std::uint64_t gap_ms =
        next_idle <= now ? 0 : (next_idle - now) / 1000 + 1;
    wait = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(wait), gap_ms));
  }
  return wait;
}

std::size_t EventLoop::poll_once(int max_wait_ms) {
  if (server_.config().manual_dispatch) {
    server_.run_until_idle();
  }

  // Phase 1: drain ready responses into write backlogs and flush what
  // the kernel will take right now, so a turn that produced results
  // doesn't wait a whole epoll round to ship them.
  std::size_t work = 0;
  std::vector<int> doomed;
  for (auto& [fd, state] : connections_) {
    work += state->conn.pump_responses(now_us());
    if (!state->conn.pending_write().empty() && !write_ready(*state)) {
      doomed.push_back(fd);
      continue;
    }
    if (state->conn.done()) {
      doomed.push_back(fd);
      continue;
    }
    update_interest(*state);
  }
  for (const int fd : doomed) {
    close_connection(fd, nullptr);
  }
  doomed.clear();

  // Phase 2: fd events.
  std::array<epoll_event, 64> events{};
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()),
                             clamp_wait(max_wait_ms));
  if (n < 0) {
    if (errno == EINTR) {
      return work;
    }
    throw std::runtime_error(std::string("epoll_wait: ") +
                             std::strerror(errno));
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
    if (listeners_.count(fd) != 0) {
      accept_ready(fd);
      ++work;
      continue;
    }
    const auto it = connections_.find(fd);
    if (it == connections_.end()) {
      continue;  // closed earlier this turn
    }
    ConnState& state = *it->second;
    ++work;
    if ((mask & (EPOLLERR | EPOLLHUP)) != 0 &&
        (mask & (EPOLLIN | EPOLLOUT)) == 0) {
      // Peer vanished with nothing left to read or write.
      close_connection(fd, "peer hung up");
      continue;
    }
    if ((mask & EPOLLIN) != 0) {
      read_ready(state);
      if (connections_.count(fd) == 0) {
        continue;
      }
    }
    if ((mask & EPOLLOUT) != 0 && !write_ready(state)) {
      close_connection(fd, "write failed");
      continue;
    }
    if (state.conn.done()) {
      close_connection(fd, nullptr);
      continue;
    }
    update_interest(state);
  }

  // Phase 3: manual dispatch may now have due work from this turn's
  // submissions; resolve it so the next pump pass ships the responses.
  if (server_.config().manual_dispatch) {
    server_.run_until_idle();
  }

  // Phase 4: idle sweep.
  const std::uint64_t now = now_us();
  for (const auto& [fd, state] : connections_) {
    if (state->conn.idle_expired(now)) {
      doomed.push_back(fd);
    }
  }
  for (const int fd : doomed) {
    close_connection(fd, "idle timeout");
  }
  return work;
}

void EventLoop::accept_ready(int listener_fd) {
  while (true) {
    const int fd = ::accept4(listener_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      // ECONNABORTED and friends: the would-be peer is already gone;
      // EMFILE/ENFILE: out of descriptors — either way keep serving the
      // connections we have.
      util::log_warn(std::string("accept: ") + std::strerror(errno));
      return;
    }
    ++accepted_total_;
    conn_metrics().accepted.add();
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      ++closed_total_;
      conn_metrics().closed.add();
      continue;
    }
    auto state = std::make_unique<ConnState>(
        fd, next_id_++, server_, config_.connection, now_us());
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      util::log_warn(std::string("epoll_ctl(add): ") +
                     std::strerror(errno));
      ::close(fd);
      ++closed_total_;
      conn_metrics().closed.add();
      continue;
    }
    state->interest = EPOLLIN;
    connections_.emplace(fd, std::move(state));
    conn_metrics().active.set(static_cast<double>(connections_.size()));
  }
}

void EventLoop::read_ready(ConnState& state) {
  std::array<char, 64 * 1024> buffer{};
  std::size_t budget = config_.connection.read_budget_bytes;
  while (budget > 0 && state.conn.wants_read()) {
    const std::size_t want = std::min(buffer.size(), budget);
    const ssize_t n = ::read(state.fd, buffer.data(), want);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      close_connection(state.fd, "read failed");
      return;
    }
    if (n == 0) {
      state.conn.on_eof();
      return;
    }
    budget -= static_cast<std::size_t>(n);
    if (!state.conn.on_bytes(
            {buffer.data(), static_cast<std::size_t>(n)}, now_us())) {
      util::log_warn("closing connection " +
                     std::to_string(state.conn.id()) + ": " +
                     state.conn.last_error());
      close_connection(state.fd, nullptr);
      return;
    }
    if (static_cast<std::size_t>(n) < want) {
      return;  // socket drained
    }
    // Budget exhausted with bytes possibly left: level-triggered epoll
    // re-reports this fd next turn, after every other connection has had
    // its own turn — that is the fairness bound.
  }
}

bool EventLoop::write_ready(ConnState& state) {
  while (true) {
    const std::string_view pending = state.conn.pending_write();
    if (pending.empty()) {
      return true;
    }
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE
    // here, not as a process-wide SIGPIPE.
    const ssize_t n = ::send(state.fd, pending.data(), pending.size(),
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn_metrics().write_stalls.add();
        return true;  // kernel buffer full; EPOLLOUT resumes us
      }
      return false;
    }
    state.conn.on_written(static_cast<std::size_t>(n), now_us());
  }
}

void EventLoop::update_interest(ConnState& state) {
  std::uint32_t want = 0;
  if (state.conn.wants_read()) {
    want |= EPOLLIN;
  }
  if (!state.conn.pending_write().empty()) {
    want |= EPOLLOUT;
  }
  if (want == state.interest) {
    return;
  }
  if ((state.interest & EPOLLIN) != 0 && (want & EPOLLIN) == 0 &&
      !state.conn.done()) {
    // Transition into read backpressure: caps hit, kernel (and then the
    // peer) hold the bytes until the backlog drains.
    conn_metrics().read_stalls.add();
  }
  epoll_event event{};
  event.events = want;
  event.data.fd = state.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, state.fd, &event) < 0) {
    util::log_warn(std::string("epoll_ctl(mod): ") + std::strerror(errno));
    return;
  }
  state.interest = want;
}

void EventLoop::close_connection(int fd, const char* reason) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  const Connection& conn = it->second->conn;
  if (reason != nullptr) {
    util::log_debug("closing connection " + std::to_string(conn.id()) +
                    ": " + reason);
  }
  conn_metrics().bytes_read.observe(static_cast<double>(conn.bytes_read()));
  conn_metrics().bytes_written.observe(
      static_cast<double>(conn.bytes_written()));
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  ++closed_total_;
  conn_metrics().closed.add();
  conn_metrics().active.set(static_cast<double>(connections_.size()));
}

}  // namespace lehdc::serve::transport
