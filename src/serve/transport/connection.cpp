#include "serve/transport/connection.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "serve/online.hpp"
#include "serve/protocol.hpp"
#include "serve/tenant.hpp"

namespace lehdc::serve::transport {

namespace {

/// Connection-level sheds land on the same typed-reject counter the
/// server's admission control uses: a client sees kQueueFull either way,
/// so the metric should not split by *where* the queue filled up.
obs::Counter& shed_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.rejected_queue_full");
  return c;
}

}  // namespace

Connection::Connection(std::uint64_t id, InferenceServer& server,
                       const ConnectionConfig& config, std::uint64_t now_us)
    : id_(id),
      server_(server),
      config_(config),
      decoder_(make_request_decoder("connection " + std::to_string(id))),
      last_activity_us_(now_us) {}

bool Connection::on_bytes(std::string_view bytes, std::uint64_t now_us) {
  if (failed_) {
    return false;
  }
  if (!bytes.empty()) {
    bytes_read_ += bytes.size();
    last_activity_us_ = now_us;
    decoder_.feed(bytes);
  }
  decode_pending(now_us);
  return !failed_;
}

void Connection::decode_pending(std::uint64_t now_us) {
  while (!failed_ && inflight_.size() < config_.max_inflight) {
    FrameDecoder::Frame frame;
    WireRequest request;
    try {
      if (!decoder_.next(&frame)) {
        return;  // mid-frame; wait for more bytes
      }
      if (frame.version == kFeedbackFrameKind) {
        const WireFeedback feedback = decode_feedback_payload(
            frame.payload, "connection " + std::to_string(id_));
        ++feedback_decoded_;
        acknowledge_feedback(feedback);
        continue;
      }
      request = decode_request_payload(frame.payload, frame.version,
                                       "connection " + std::to_string(id_));
    } catch (const std::runtime_error& e) {
      // Framing cannot re-synchronize past a bad header, and a malformed
      // payload means the peer is broken: fail hard, transport closes.
      failed_ = true;
      error_ = e.what();
      return;
    }
    ++requests_decoded_;
    if (encoder_.backlog_bytes() >= config_.write_backlog_max_bytes) {
      // Slow reader: the peer is not draining responses, so new work is
      // shed with the same typed reject admission control would produce.
      shed(request);
      continue;
    }
    const std::uint64_t deadline_us =
        request.deadline_budget_us == 0 ? 0
                                        : now_us + request.deadline_budget_us;
    Inflight entry;
    entry.version = request.version;
    entry.future = server_.submit(std::move(request.features), deadline_us,
                                  request.tenant, request.id);
    inflight_.push_back(std::move(entry));
  }
}

void Connection::shed(const WireRequest& request) {
  ++sheds_;
  shed_counter().add();
  Response response;
  response.id = request.id;
  response.error = Reject::kQueueFull;
  response.tenant = request.tenant.empty() ? server_.config().default_tenant
                                           : request.tenant;
  if (obs::enabled()) {
    tenant_metrics(response.tenant).rejected.add();
  }
  // The reject still travels through the in-flight FIFO (as an
  // already-ready future) so responses never leave out of request order.
  std::promise<Response> promise;
  promise.set_value(std::move(response));
  Inflight entry;
  entry.version = request.version;
  entry.future = promise.get_future();
  inflight_.push_back(std::move(entry));
}

void Connection::acknowledge_feedback(const WireFeedback& feedback) {
  Response ack;
  ack.id = feedback.id;
  ack.label = -1;  // an ack predicts nothing
  ack.tenant = feedback.tenant.empty() ? server_.config().default_tenant
                                       : feedback.tenant;
  if (encoder_.backlog_bytes() >= config_.write_backlog_max_bytes) {
    // Slow reader: shed the feedback exactly like a request would be.
    ++sheds_;
    shed_counter().add();
    ack.error = Reject::kQueueFull;
  } else {
    OnlineSidecar* online = server_.online();
    // Without a sidecar no correlation can exist, so the typed verdict is
    // the same a stale correlation would earn.
    ack.error = online == nullptr
                    ? Reject::kUnknownCorrelation
                    : online->offer_feedback(ack.tenant, feedback.id,
                                             feedback.label);
  }
  // The ack travels through the in-flight FIFO as an already-ready future
  // (the shed() pattern), preserving per-connection response order
  // between acks and in-flight predictions. LSF2 is v2-only, so the ack
  // is always an LSS2 frame.
  std::promise<Response> promise;
  promise.set_value(std::move(ack));
  Inflight entry;
  entry.version = 2;
  entry.future = promise.get_future();
  inflight_.push_back(std::move(entry));
}

std::size_t Connection::pump_responses(std::uint64_t now_us) {
  if (failed_) {
    return 0;
  }
  std::size_t encoded = 0;
  // Strictly front-first: a ready later response waits behind a pending
  // earlier one, preserving per-connection request order on the wire.
  while (!inflight_.empty() &&
         inflight_.front().future.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready) {
    Inflight entry = std::move(inflight_.front());
    inflight_.pop_front();
    encoder_.push(encode_response(entry.future.get(), entry.version));
    ++responses_sent_;
    ++encoded;
  }
  if (encoded > 0) {
    // Draining the FIFO may clear the inflight pause; frames the peer
    // already sent are sitting in the decoder waiting for this.
    decode_pending(now_us);
  }
  return encoded;
}

void Connection::on_written(std::size_t n, std::uint64_t now_us) {
  encoder_.consume(n);
  bytes_written_ += n;
  if (n > 0) {
    last_activity_us_ = now_us;
  }
}

bool Connection::wants_read() const noexcept {
  return !failed_ && !eof_ && inflight_.size() < config_.max_inflight &&
         encoder_.backlog_bytes() < config_.write_backlog_max_bytes;
}

bool Connection::done() const noexcept {
  // After EOF, everything decodable has been decoded whenever the caps
  // were clear, so once the FIFO and the backlog drain the only possible
  // leftover is a trailing partial frame — owed nothing.
  return failed_ || (eof_ && inflight_.empty() && encoder_.empty());
}

std::uint64_t Connection::idle_deadline_us() const noexcept {
  if (config_.idle_timeout_us == 0) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return last_activity_us_ + config_.idle_timeout_us;
}

}  // namespace lehdc::serve::transport
