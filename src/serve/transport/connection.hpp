// Transport-agnostic connection state machine.
//
// A Connection owns everything between raw bytes and the inference
// server: the incremental FrameDecoder on the read side, the ordered
// in-flight request queue in the middle, and the FrameEncoder write
// backlog on the way out. It never touches a file descriptor — the epoll
// EventLoop feeds it whatever recv() returned and drains whatever write()
// accepted, the chaos transport runner feeds it scripted chunks over
// virtual time, and both exercise identical admission, shedding and
// ordering code.
//
// State and resource bounds per connection:
//
//   read side   decoder buffer ≤ one partial frame (8 + 16 MiB cap) plus
//               one transport turn's worth of pipelined bytes — the
//               transport reads at most `read_budget_bytes` per turn and
//               stops entirely while wants_read() is false.
//   in flight   at most `max_inflight` submitted requests; when the cap
//               is reached the connection *pauses* decoding (bytes stay
//               buffered, wants_read() goes false) rather than shedding —
//               the requests are wanted, just not yet admissible.
//   write side  encoder backlog capped at `write_backlog_max_bytes`; a
//               request decoded while the peer is too slow to drain the
//               backlog is shed with a typed Reject::kQueueFull response
//               (the same shape the server's own admission control
//               produces), so a slow reader degrades loudly and cheaply
//               instead of growing the queue.
//
// Responses leave in request order per connection: a FIFO of futures is
// drained front-first, so a fast later request never overtakes a slow
// earlier one on the same connection (cross-connection order is
// unconstrained, as on any real transport). This is what makes the epoll
// path byte-comparable to the blocking one-request-at-a-time loop.
//
// Deadlines travel on the wire as budgets relative to server receipt;
// the connection converts them to absolute times against the *server's*
// clock at decode time, so FakeClock tests and production share one
// timeline.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <string_view>

#include "serve/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace lehdc::serve::transport {

struct ConnectionConfig {
  /// Most bytes the transport should read from this connection per loop
  /// turn (fairness bound; enforced by the caller, advertised here so
  /// every transport agrees on the number).
  std::size_t read_budget_bytes = 64 * 1024;
  /// Encoder backlog above which newly decoded requests are shed with
  /// Reject::kQueueFull instead of being submitted.
  std::size_t write_backlog_max_bytes = 1024 * 1024;
  /// Submitted-but-unanswered request cap; decoding pauses at the cap.
  std::size_t max_inflight = 256;
  /// Close after this long with no read/write progress (0 disables).
  std::uint64_t idle_timeout_us = 60 * 1000 * 1000;
};

class Connection {
 public:
  /// `server` must outlive the connection. `now_us` is the server-clock
  /// accept time (starts the idle window).
  Connection(std::uint64_t id, InferenceServer& server,
             const ConnectionConfig& config, std::uint64_t now_us);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Feeds raw bytes from the transport; decodes and submits every
  /// complete frame the caps allow. Returns false when the stream is
  /// fatally broken (bad magic, oversized frame, malformed payload) —
  /// the transport must close without flushing; see last_error().
  [[nodiscard]] bool on_bytes(std::string_view bytes, std::uint64_t now_us);

  /// Peer half-closed its write side. Pending responses still drain;
  /// done() turns true once everything owed has been handed over.
  void on_eof() noexcept { eof_ = true; }

  /// Moves every ready in-order response from the in-flight queue into
  /// the write backlog and resumes decoding if the inflight cap had
  /// paused it. Returns the number of responses encoded. Call once per
  /// loop turn (and after the server dispatches, in manual mode).
  std::size_t pump_responses(std::uint64_t now_us);

  /// Next contiguous run of bytes to write (empty when drained); valid
  /// until the next pump_responses()/on_written() call.
  [[nodiscard]] std::string_view pending_write() const noexcept {
    return encoder_.pending();
  }

  /// Records `n` bytes of pending_write() accepted by the transport.
  void on_written(std::size_t n, std::uint64_t now_us);

  /// False while the inflight cap or the write-backlog cap is hit (or
  /// the connection failed/half-closed) — the transport must stop
  /// reading, which is what turns peer pressure into bounded memory.
  [[nodiscard]] bool wants_read() const noexcept;

  /// True when the connection owes nothing more: failed, or peer EOF
  /// with no in-flight requests and an empty write backlog.
  [[nodiscard]] bool done() const noexcept;

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }

  /// Absolute server-clock time at which the idle timeout fires
  /// (UINT64_MAX when disabled). Any read/write progress pushes it out.
  [[nodiscard]] std::uint64_t idle_deadline_us() const noexcept;
  [[nodiscard]] bool idle_expired(std::uint64_t now_us) const noexcept {
    return now_us >= idle_deadline_us();
  }

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t inflight_count() const noexcept {
    return inflight_.size();
  }
  [[nodiscard]] std::size_t write_backlog_bytes() const noexcept {
    return encoder_.backlog_bytes();
  }
  [[nodiscard]] std::size_t buffered_read_bytes() const noexcept {
    return decoder_.buffered();
  }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t requests_decoded() const noexcept {
    return requests_decoded_;
  }
  [[nodiscard]] std::uint64_t feedback_decoded() const noexcept {
    return feedback_decoded_;
  }
  [[nodiscard]] std::uint64_t responses_sent() const noexcept {
    return responses_sent_;
  }
  [[nodiscard]] std::uint64_t sheds() const noexcept { return sheds_; }

  [[nodiscard]] const ConnectionConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Decodes + submits frames already buffered, until the caps pause it
  /// or the bytes run out. Sets failed_ on protocol errors.
  void decode_pending(std::uint64_t now_us);
  /// Queues an immediate typed-reject response for a shed request.
  void shed(const WireRequest& request);
  /// Resolves one LSF2 feedback frame through the server's online sidecar
  /// and queues the ack/reject through the same in-flight FIFO, so
  /// feedback acks never overtake earlier in-flight responses.
  void acknowledge_feedback(const WireFeedback& feedback);

  struct Inflight {
    std::future<Response> future;
    int version = 0;
  };

  std::uint64_t id_;
  InferenceServer& server_;
  ConnectionConfig config_;
  FrameDecoder decoder_;
  FrameEncoder encoder_;
  std::deque<Inflight> inflight_;
  std::uint64_t last_activity_us_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t requests_decoded_ = 0;
  std::uint64_t feedback_decoded_ = 0;
  std::uint64_t responses_sent_ = 0;
  std::uint64_t sheds_ = 0;
  bool eof_ = false;
  bool failed_ = false;
  std::string error_;
};

}  // namespace lehdc::serve::transport
