// Socket setup helpers shared by the serve tool, the bench load
// generator and the transport tests.
//
// Everything here is the boring-but-sharp part of BSD sockets: listener
// hygiene (unlink a stale AF_UNIX path before bind, SO_REUSEADDR on TCP,
// EINTR-safe calls, close-on-exec), explicit backlog, and non-blocking
// mode set at creation so an fd can go straight into the epoll loop.
// All functions throw std::runtime_error carrying strerror(errno) context
// on failure; none of them retries transient accept/read conditions —
// that is the event loop's job.
#pragma once

#include <cstdint>
#include <string>

namespace lehdc::serve::transport {

/// Creates a non-blocking AF_UNIX listener on `path`. Any stale socket
/// file at `path` is unlinked first, so a crashed previous server never
/// wedges the next bind.
[[nodiscard]] int listen_unix(const std::string& path, int backlog);

/// Creates a non-blocking AF_INET/AF_INET6 listener on host:port with
/// SO_REUSEADDR set (name resolution via getaddrinfo, so "localhost",
/// "0.0.0.0" and numeric IPv6 all work). `port` 0 lets the kernel pick;
/// read it back with local_port().
[[nodiscard]] int listen_tcp(const std::string& host, std::uint16_t port,
                             int backlog);

/// Port a bound socket actually listens on (for port-0 listeners).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Client-side connect; `nonblocking` selects O_NONBLOCK *after* the
/// connect completes, so callers never see EINPROGRESS.
[[nodiscard]] int connect_unix(const std::string& path,
                               bool nonblocking = false);
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port,
                              bool nonblocking = false);

/// Splits "HOST:PORT" (last colon wins, so bare IPv6 needs [brackets]).
/// Throws on a missing or non-numeric port.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};
[[nodiscard]] HostPort parse_host_port(const std::string& spec);

}  // namespace lehdc::serve::transport
