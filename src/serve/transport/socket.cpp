#include "serve/transport/socket.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace lehdc::serve::transport {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

void set_cloexec(int fd) {
  if (::fcntl(fd, F_SETFD, FD_CLOEXEC) < 0) {
    fail("fcntl(FD_CLOEXEC)");
  }
}

struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  int release() {
    const int out = fd;
    fd = -1;
    return out;
  }
};

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  FdGuard guard{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (guard.fd < 0) {
    fail("socket(AF_UNIX)");
  }
  set_cloexec(guard.fd);
  // A previous server that crashed leaves its socket file behind and
  // bind() would fail with EADDRINUSE forever; a fresh listener owns the
  // path, so removing the stale node is always correct here.
  ::unlink(path.c_str());
  if (::bind(guard.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    fail("bind(" + path + ")");
  }
  if (::listen(guard.fd, backlog) < 0) {
    fail("listen(" + path + ")");
  }
  set_nonblocking(guard.fd);
  return guard.release();
}

int listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &results);
  if (rc != 0) {
    throw std::runtime_error("getaddrinfo(" + host + "): " +
                             ::gai_strerror(rc));
  }
  std::string error = "no usable address for " + host;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    FdGuard guard{::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol)};
    if (guard.fd < 0) {
      continue;
    }
    set_cloexec(guard.fd);
    const int one = 1;
    ::setsockopt(guard.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(guard.fd, ai->ai_addr, ai->ai_addrlen) < 0 ||
        ::listen(guard.fd, backlog) < 0) {
      error = std::string("bind/listen(") + host + "): " +
              std::strerror(errno);
      continue;
    }
    set_nonblocking(guard.fd);
    ::freeaddrinfo(results);
    return guard.release();
  }
  ::freeaddrinfo(results);
  throw std::runtime_error(error);
}

std::uint16_t local_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  throw std::runtime_error("local_port: not an inet socket");
}

int connect_unix(const std::string& path, bool nonblocking) {
  const sockaddr_un addr = unix_address(path);
  FdGuard guard{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (guard.fd < 0) {
    fail("socket(AF_UNIX)");
  }
  set_cloexec(guard.fd);
  int rc = 0;
  do {
    rc = ::connect(guard.fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    fail("connect(" + path + ")");
  }
  if (nonblocking) {
    set_nonblocking(guard.fd);
  }
  return guard.release();
}

int connect_tcp(const std::string& host, std::uint16_t port,
                bool nonblocking) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc =
      ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    throw std::runtime_error("getaddrinfo(" + host + "): " +
                             ::gai_strerror(rc));
  }
  std::string error = "no usable address for " + host;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    FdGuard guard{::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol)};
    if (guard.fd < 0) {
      continue;
    }
    set_cloexec(guard.fd);
    int crc = 0;
    do {
      crc = ::connect(guard.fd, ai->ai_addr, ai->ai_addrlen);
    } while (crc < 0 && errno == EINTR);
    if (crc < 0) {
      error = "connect(" + host + ":" + service + "): " +
              std::strerror(errno);
      continue;
    }
    if (nonblocking) {
      set_nonblocking(guard.fd);
    }
    ::freeaddrinfo(results);
    return guard.release();
  }
  ::freeaddrinfo(results);
  throw std::runtime_error(error);
}

HostPort parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw std::runtime_error("expected HOST:PORT, got \"" + spec + "\"");
  }
  HostPort out;
  out.host = spec.substr(0, colon);
  if (out.host.size() >= 2 && out.host.front() == '[' &&
      out.host.back() == ']') {
    out.host = out.host.substr(1, out.host.size() - 2);
  }
  const std::string port = spec.substr(colon + 1);
  std::uint32_t value = 0;
  for (const char c : port) {
    if (c < '0' || c > '9' || value > 65535) {
      throw std::runtime_error("bad port in \"" + spec + "\"");
    }
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value == 0 || value > 65535) {
    throw std::runtime_error("bad port in \"" + spec + "\"");
  }
  out.port = static_cast<std::uint16_t>(value);
  return out;
}

}  // namespace lehdc::serve::transport
