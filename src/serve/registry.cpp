#include "serve/registry.hpp"

#include "core/pipeline_io.hpp"
#include "obs/metrics.hpp"
#include "serve/tenant.hpp"
#include "util/check.hpp"

namespace lehdc::serve {

std::shared_ptr<const core::Pipeline> ModelRegistry::load(
    const std::string& name, const std::string& path) {
  // Load (and therefore validate the checksum) before touching the map: a
  // failed load must leave the currently bound model serving.
  auto model =
      std::make_shared<const core::Pipeline>(core::load_pipeline(path));
  static obs::Counter& loads =
      obs::Registry::global().counter("serve.model_loads");
  loads.add();
  return bind(name, std::move(model));
}

std::shared_ptr<const core::Pipeline> ModelRegistry::add(
    const std::string& name, core::Pipeline pipeline) {
  util::expects(pipeline.fitted(),
                "only fitted pipelines can be registered for serving");
  return bind(name,
              std::make_shared<const core::Pipeline>(std::move(pipeline)));
}

std::shared_ptr<const core::Pipeline> ModelRegistry::bind(
    const std::string& name, std::shared_ptr<const core::Pipeline> model) {
  util::expects(model != nullptr, "cannot bind a null pipeline generation");
  util::expects(valid_tenant_id(name),
                "tenant id must be 1-64 chars of [a-z0-9_]");
  const util::MutexLock lock(mutex_);
  models_[name] = model;
  return model;
}

std::shared_ptr<const core::Pipeline> ModelRegistry::get(
    const std::string& name) const {
  const util::MutexLock lock(mutex_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::evict(const std::string& name) {
  const util::MutexLock lock(mutex_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
  const util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) {
    out.push_back(name);
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  const util::MutexLock lock(mutex_);
  return models_.size();
}

}  // namespace lehdc::serve
