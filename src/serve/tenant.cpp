#include "serve/tenant.hpp"

#include <map>
#include <memory>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::serve {

namespace {

// Mutex and the cache it guards live in one object so the guarded_by
// relation is expressible (function-local statics cannot carry
// LEHDC_GUARDED_BY). Handles reference registry-owned instruments, so
// caching them is safe for the process lifetime; the map only ever grows
// (tenants are few).
struct TenantMetricsCache {
  util::Mutex mutex;
  std::map<std::string, std::unique_ptr<TenantMetrics>> by_tenant
      LEHDC_GUARDED_BY(mutex);
};

TenantMetricsCache& metrics_cache() {
  static TenantMetricsCache cache;
  return cache;
}

}  // namespace

bool valid_tenant_id(std::string_view tenant) noexcept {
  if (tenant.empty() || tenant.size() > kMaxTenantIdBytes) {
    return false;
  }
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string tenant_metric_name(std::string_view base,
                               std::string_view tenant) {
  util::expects(valid_tenant_id(tenant),
                "tenant metric names require a valid tenant id");
  std::string name;
  name.reserve(base.size() + 1 + tenant.size());
  name.append(base);
  name.push_back('.');
  name.append(tenant);
  return name;
}

TenantMetrics& tenant_metrics(const std::string& tenant) {
  TenantMetricsCache& cache = metrics_cache();
  const util::MutexLock lock(cache.mutex);
  auto it = cache.by_tenant.find(tenant);
  if (it == cache.by_tenant.end()) {
    auto& registry = obs::Registry::global();
    auto metrics = std::make_unique<TenantMetrics>(TenantMetrics{
        registry.counter(tenant_metric_name("serve.tenant.requests", tenant)),
        registry.counter(
            tenant_metric_name("serve.tenant.responses", tenant)),
        registry.counter(tenant_metric_name("serve.tenant.rejected", tenant)),
        registry.gauge(
            tenant_metric_name("serve.tenant.queue_depth", tenant))});
    it = cache.by_tenant.emplace(tenant, std::move(metrics)).first;
  }
  return *it->second;
}

}  // namespace lehdc::serve
