// Length-prefixed binary wire protocol for lehdc_serve.
//
// One frame per message, same shape in both directions:
//
//   magic (4 bytes) | u32 payload_size | payload
//
// The magic doubles as the frame version. Two generations are live:
//
//   v1 "LSRQ" request payload :=
//     u64 id | u64 deadline_budget_us | u16 tenant_length
//     | tenant bytes | u32 feature_count | f32[feature_count]
//   v1 "LSRS" response payload :=
//     u64 id | u8 status (serve::Reject) | i32 label | u32 batch_size
//     | f64 latency_seconds
//   v2 "LSR2" request payload := identical to v1 (the tenant field *is*
//     the v1 model-name slot, formalized)
//   v2 "LSS2" response payload := the v1 layout followed by
//     u16 tenant_length | tenant bytes — the server echoes the tenant it
//     routed to, so clients can detect cross-tenant mixups on the wire.
//   v2 "LSF2" feedback payload :=
//     u64 id | u16 tenant_length | tenant bytes | i32 label — the true
//     label for an earlier prediction, correlated by (tenant, id);
//     acknowledged with a normal response frame (status kNone or
//     kUnknownCorrelation, label -1).
//
// Decoders accept both generations and record which one arrived in
// WireRequest::version / Response (responses are echoed at the request's
// version, so a v1 client never sees bytes it cannot parse). An empty
// tenant routes to the server's default tenant; a non-empty tenant must
// satisfy valid_tenant_id() or the frame is rejected as malformed.
//
// Integers are little-endian (the library's serial.hpp convention). The
// deadline travels as a *budget* relative to server receipt — absolute
// monotonic timestamps are meaningless across processes; 0 means no
// deadline. Frames are bounded (kMaxPayloadBytes) and every field is
// parsed through the bounds-checked util::PayloadReader, so a malformed
// or truncated frame raises a typed error before any oversized allocation
// — the same hardening discipline as the dataset loaders.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "serve/error.hpp"

namespace lehdc::serve {

inline constexpr char kRequestMagic[4] = {'L', 'S', 'R', 'Q'};
inline constexpr char kResponseMagic[4] = {'L', 'S', 'R', 'S'};
inline constexpr char kRequestMagicV2[4] = {'L', 'S', 'R', '2'};
inline constexpr char kResponseMagicV2[4] = {'L', 'S', 'S', '2'};
inline constexpr char kFeedbackMagicV2[4] = {'L', 'S', 'F', '2'};

/// FrameDecoder::Frame::version value for an LSF2 feedback frame on the
/// request stream (1 and 2 are the request generations).
inline constexpr int kFeedbackFrameKind = 3;

/// Upper bound on a frame payload (16 MiB ≈ 4M float features) — an
/// admission check against hostile length prefixes.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u * 1024u * 1024u;

/// Frame version carried by a request magic: 1 for "LSRQ", 2 for "LSR2",
/// 0 when the magic matches neither.
[[nodiscard]] int request_frame_version(const char magic[4]) noexcept;

struct WireRequest {
  std::uint64_t id = 0;
  /// Microseconds the client grants from server receipt; 0 = no deadline.
  std::uint64_t deadline_budget_us = 0;
  /// Target tenant id; empty selects the server's default tenant. (In v1
  /// frames this is the model-name slot — same bytes, same routing.)
  std::string tenant;
  std::vector<float> features;
  /// Frame generation this request arrived as (or should be emitted as).
  int version = 2;
};

/// Label feedback for an earlier prediction. Travels client→server as a
/// v2-only "LSF2" frame interleaved with requests on the same stream:
///
///   LSF2 payload := u64 id | u16 tenant_length | tenant bytes | i32 label
///
/// `id` + `tenant` must match a previously served request (the correlation
/// key is the pair, so one tenant can never relabel another's traffic).
/// The server acknowledges with a normal response frame: id echoed,
/// status kNone on acceptance or kUnknownCorrelation on a typed reject,
/// label -1 (a feedback ack predicts nothing).
struct WireFeedback {
  std::uint64_t id = 0;
  /// Tenant the original request was served under; empty selects the
  /// server's default tenant (matching request routing).
  std::string tenant;
  /// Ground-truth class label observed after the prediction.
  std::int32_t label = 0;
};

/// Serializes one complete frame (header + payload) at the message's
/// recorded version.
[[nodiscard]] std::string encode_request(const WireRequest& request);
[[nodiscard]] std::string encode_response(const Response& response,
                                          int version = 2);
[[nodiscard]] std::string encode_feedback(const WireFeedback& feedback);

/// Parses a frame payload (the bytes after the length prefix). `context`
/// names the source for error messages. Throws std::runtime_error on a
/// malformed payload.
[[nodiscard]] WireRequest decode_request_payload(std::string_view payload,
                                                 int version,
                                                 const std::string& context);
[[nodiscard]] Response decode_response_payload(std::string_view payload,
                                               int version,
                                               const std::string& context);
[[nodiscard]] WireFeedback decode_feedback_payload(
    std::string_view payload, const std::string& context);

/// One inbound message on the request stream: a request frame or a
/// feedback frame (clients interleave both on one connection).
struct ClientFrame {
  /// kFeedbackFrameKind selects `feedback`; 1 or 2 select `request`.
  int kind = 0;
  WireRequest request;
  WireFeedback feedback;

  [[nodiscard]] bool is_feedback() const noexcept {
    return kind == kFeedbackFrameKind;
  }
};

/// Reads one frame from a stream, accepting either protocol generation.
/// Returns false on clean EOF at a frame boundary; throws
/// std::runtime_error on a bad magic, an oversized length, or EOF
/// mid-frame.
bool read_request(std::istream& in, WireRequest* out,
                  const std::string& context);
bool read_response(std::istream& in, Response* out,
                   const std::string& context);
/// Like read_request but also accepts LSF2 feedback frames, reporting
/// which arrived via ClientFrame::kind.
bool read_client_frame(std::istream& in, ClientFrame* out,
                       const std::string& context);

/// Writes one frame; throws std::runtime_error when the stream fails.
/// Responses are written at `version` (echo the request's version).
void write_request(std::ostream& out, const WireRequest& request);
void write_response(std::ostream& out, const Response& response,
                    int version = 2);
void write_feedback(std::ostream& out, const WireFeedback& feedback);

}  // namespace lehdc::serve
