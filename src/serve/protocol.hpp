// Length-prefixed binary wire protocol for lehdc_serve.
//
// One frame per message, same shape in both directions:
//
//   magic (4 bytes) | u32 payload_size | payload
//
//   "LSRQ" request payload :=
//     u64 id | u64 deadline_budget_us | u16 model_name_length
//     | model_name bytes | u32 feature_count | f32[feature_count]
//   "LSRS" response payload :=
//     u64 id | u8 status (serve::Reject) | i32 label | u32 batch_size
//     | f64 latency_seconds
//
// Integers are little-endian (the library's serial.hpp convention). The
// deadline travels as a *budget* relative to server receipt — absolute
// monotonic timestamps are meaningless across processes; 0 means no
// deadline. Frames are bounded (kMaxPayloadBytes) and every field is
// parsed through the bounds-checked util::PayloadReader, so a malformed
// or truncated frame raises a typed error before any oversized allocation
// — the same hardening discipline as the dataset loaders.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "serve/error.hpp"

namespace lehdc::serve {

inline constexpr char kRequestMagic[4] = {'L', 'S', 'R', 'Q'};
inline constexpr char kResponseMagic[4] = {'L', 'S', 'R', 'S'};

/// Upper bound on a frame payload (16 MiB ≈ 4M float features) — an
/// admission check against hostile length prefixes.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u * 1024u * 1024u;

struct WireRequest {
  std::uint64_t id = 0;
  /// Microseconds the client grants from server receipt; 0 = no deadline.
  std::uint64_t deadline_budget_us = 0;
  /// Target model name; empty selects the server default.
  std::string model;
  std::vector<float> features;
};

/// Serializes one complete frame (header + payload).
[[nodiscard]] std::string encode_request(const WireRequest& request);
[[nodiscard]] std::string encode_response(const Response& response);

/// Parses a frame payload (the bytes after the length prefix). `context`
/// names the source for error messages. Throws std::runtime_error on a
/// malformed payload.
[[nodiscard]] WireRequest decode_request_payload(std::string_view payload,
                                                 const std::string& context);
[[nodiscard]] Response decode_response_payload(std::string_view payload,
                                               const std::string& context);

/// Reads one frame from a stream. Returns false on clean EOF at a frame
/// boundary; throws std::runtime_error on a bad magic, an oversized
/// length, or EOF mid-frame.
bool read_request(std::istream& in, WireRequest* out,
                  const std::string& context);
bool read_response(std::istream& in, Response* out,
                   const std::string& context);

/// Writes one frame; throws std::runtime_error when the stream fails.
void write_request(std::ostream& out, const WireRequest& request);
void write_response(std::ostream& out, const Response& response);

}  // namespace lehdc::serve
