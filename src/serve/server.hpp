// Asynchronous micro-batching inference front-end over core::Pipeline.
//
// Producers (socket handlers, the pipe loop, bench client threads) submit
// raw feature vectors and receive a std::future<Response>; one worker
// thread amortizes queued requests into single-tenant micro-batches
// (MicroBatcher flush policy, round-robin across tenants) and dispatches
// each batch through Pipeline::predict_batch — the fused encode+score
// path — so served predictions are bit-identical to a direct batched call
// on the same inputs. Admission control, per-request deadlines, typed
// shedding and tenant fairness are the batcher's; this class adds the
// thread, the tenant registry indirection (hot reload safe: a batch pins
// its pipeline via shared_ptr) and the obs instrumentation:
//
//   serve.requests / serve.responses / serve.batches        counters
//   serve.rejected_{queue_full,deadline,shutdown,
//                   model_not_found,bad_request}            counters
//   serve.queue_depth                                       gauge
//   serve.batch_size                                        histogram
//   serve.e2e_latency_seconds / serve.dispatch_seconds      histograms
//   serve.tenant.{requests,responses,rejected,queue_depth}.<tenant>
//                                                           per tenant
//
// Two drive modes. The default starts a worker thread that sleeps on a
// condition variable until the next flush is due — production shape. With
// `manual_dispatch` no thread is started and the owner pumps batches
// through run_until_idle(); combined with a FakeClock this makes batch
// composition, shedding and hot-reload interleaving fully deterministic —
// the chaos harness (src/chaos) runs every scenario this way over virtual
// time while still exercising the real admission/dispatch code.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/clock.hpp"
#include "serve/registry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::serve {

class OnlineSidecar;

struct ServerConfig {
  BatcherConfig batcher;
  /// Tenant id used when a request names no tenant.
  std::string default_tenant = "default";
  /// When true the server starts no worker thread; the owner pumps due
  /// batches explicitly with run_until_idle() (deterministic mode).
  bool manual_dispatch = false;
};

class InferenceServer {
 public:
  /// Starts the worker immediately (unless config.manual_dispatch).
  /// `registry` must outlive the server; `clock` == nullptr selects the
  /// system steady clock.
  InferenceServer(ModelRegistry& registry, const ServerConfig& config,
                  Clock* clock = nullptr);

  /// Drains and joins (equivalent to shutdown()).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one request. The future always becomes ready: with a
  /// prediction, or with a typed Reject (admission failure resolves it
  /// immediately; queued requests resolve at dispatch, deadline expiry or
  /// shutdown drain). `deadline_us` is an absolute Clock time (0 = none).
  std::future<Response> submit(std::vector<float> features,
                               std::uint64_t deadline_us = 0,
                               const std::string& tenant = {},
                               std::uint64_t id = 0);

  /// Blocking convenience wrapper around submit().
  [[nodiscard]] Response predict(std::vector<float> features,
                                 std::uint64_t deadline_us = 0,
                                 const std::string& tenant = {});

  /// Manual-dispatch pump: repeatedly polls the batcher at the current
  /// Clock time and dispatches/sheds everything due, returning the number
  /// of requests resolved. Returns 0 when nothing was due (requests may
  /// still be pending until more time passes or more requests arrive).
  /// Precondition: config.manual_dispatch.
  std::size_t run_until_idle();

  /// Earliest Clock time at which run_until_idle() could have new work
  /// (MicroBatcher::kNever when the queue is empty). Lets a virtual-time
  /// event loop step straight to the next flush or deadline.
  [[nodiscard]] std::uint64_t next_event_us() const;

  /// Stops admission, force-flushes the backlog through the scorer (queued
  /// requests are *served*, not dropped — only ones past their deadline
  /// are shed) and joins the worker. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t queue_depth() const;
  /// High-water mark of the queue depth since construction; the overload
  /// bench asserts this never exceeds queue_capacity.
  [[nodiscard]] std::size_t peak_queue_depth() const;

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] Clock& clock() noexcept { return *clock_; }
  [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }

  /// Attaches the online-learning sidecar (serve/online.hpp): every served
  /// prediction of an online-enabled tenant is recorded for feedback
  /// correlation just before its promise resolves. The sidecar must
  /// outlive the server; pass nullptr to detach. The pointer is atomic so
  /// attaching races cleanly with a running worker, but attaching before
  /// traffic is the intended shape.
  void attach_online(OnlineSidecar* sidecar) noexcept {
    online_.store(sidecar, std::memory_order_release);
  }
  [[nodiscard]] OnlineSidecar* online() const noexcept {
    return online_.load(std::memory_order_acquire);
  }

 private:
  void worker_loop() LEHDC_EXCLUDES(mutex_);
  /// Scores one single-tenant flushed batch and fulfils its promises.
  void dispatch(const std::string& tenant, std::vector<PendingRequest> batch)
      LEHDC_EXCLUDES(mutex_);
  void reject(PendingRequest&& request, Reject reason);
  /// Polls + dispatches everything currently due. Caller holds no lock.
  std::size_t pump(bool force) LEHDC_EXCLUDES(mutex_);

  ModelRegistry& registry_;
  ServerConfig config_;
  Clock* clock_;
  std::atomic<OnlineSidecar*> online_{nullptr};

  mutable util::Mutex mutex_;
  util::CondVar work_ready_;
  MicroBatcher batcher_ LEHDC_GUARDED_BY(mutex_);
  bool stop_ LEHDC_GUARDED_BY(mutex_) = false;
  std::size_t peak_depth_ LEHDC_GUARDED_BY(mutex_) = 0;
  std::thread worker_;  // set in ctor, joined by shutdown()
};

}  // namespace lehdc::serve
