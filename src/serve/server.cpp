#include "serve/server.hpp"

#include <algorithm>
#include <chrono>

#include "data/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "serve/online.hpp"
#include "serve/tenant.hpp"
#include "util/check.hpp"

namespace lehdc::serve {

namespace {

obs::Counter& reject_counter(Reject reason) {
  auto& registry = obs::Registry::global();
  switch (reason) {
    case Reject::kQueueFull: {
      static obs::Counter& c = registry.counter("serve.rejected_queue_full");
      return c;
    }
    case Reject::kDeadlineExceeded: {
      static obs::Counter& c = registry.counter("serve.rejected_deadline");
      return c;
    }
    case Reject::kShuttingDown: {
      static obs::Counter& c = registry.counter("serve.rejected_shutdown");
      return c;
    }
    case Reject::kModelNotFound: {
      static obs::Counter& c =
          registry.counter("serve.rejected_model_not_found");
      return c;
    }
    case Reject::kUnknownCorrelation: {
      // Feedback rejects are the sidecar's; routed here only if a caller
      // misuses the code for a request.
      static obs::Counter& c = registry.counter("serve.online.rejected");
      return c;
    }
    case Reject::kNone:
    case Reject::kBadRequest:
      break;
  }
  static obs::Counter& c = registry.counter("serve.rejected_bad_request");
  return c;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge =
      obs::Registry::global().gauge("serve.queue_depth");
  return gauge;
}

}  // namespace

InferenceServer::InferenceServer(ModelRegistry& registry,
                                 const ServerConfig& config, Clock* clock)
    : registry_(registry),
      config_(config),
      clock_(clock != nullptr ? clock : &system_clock()),
      batcher_(config.batcher) {
  util::expects(valid_tenant_id(config.default_tenant),
                "default_tenant must be a valid tenant id");
  if (!config_.manual_dispatch) {
    worker_ = std::thread(&InferenceServer::worker_loop, this);
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::reject(PendingRequest&& request, Reject reason) {
  reject_counter(reason).add();
  if (obs::enabled() && !request.tenant.empty()) {
    tenant_metrics(request.tenant).rejected.add();
  }
  Response response;
  response.id = request.id;
  response.error = reason;
  response.tenant = request.tenant;
  request.promise.set_value(response);
}

std::future<Response> InferenceServer::submit(std::vector<float> features,
                                              std::uint64_t deadline_us,
                                              const std::string& tenant,
                                              std::uint64_t id) {
  static obs::Counter& requests =
      obs::Registry::global().counter("serve.requests");
  requests.add();

  PendingRequest request;
  request.id = id;
  request.tenant = tenant.empty() ? config_.default_tenant : tenant;
  request.features = std::move(features);
  request.deadline_us = deadline_us;
  std::future<Response> future = request.promise.get_future();
  if (obs::enabled()) {
    tenant_metrics(request.tenant).requests.add();
  }

  // Admission-time validation: the tenant binding and the feature arity
  // are knowable now, so malformed requests never occupy queue capacity.
  // (The dispatch path re-validates — a hot reload may change either.)
  const auto pipeline = registry_.get(request.tenant);
  if (pipeline == nullptr) {
    reject(std::move(request), Reject::kModelNotFound);
    return future;
  }
  if (request.features.size() != pipeline->encoder().feature_count()) {
    reject(std::move(request), Reject::kBadRequest);
    return future;
  }

  const std::uint64_t now = clock_->now_us();
  Reject verdict = Reject::kNone;
  {
    const util::MutexLock lock(mutex_);
    // offer() consumes the request only on success, so a rejected request
    // can still carry its promise to reject() below.
    const std::string queue_tenant = request.tenant;
    verdict = batcher_.offer(std::move(request), now);
    if (verdict == Reject::kNone) {
      peak_depth_ = std::max(peak_depth_, batcher_.depth());
      queue_depth_gauge().set(static_cast<double>(batcher_.depth()));
      if (obs::enabled()) {
        tenant_metrics(queue_tenant)
            .queue_depth.set(
                static_cast<double>(batcher_.tenant_depth(queue_tenant)));
      }
    }
  }
  if (verdict != Reject::kNone) {
    reject(std::move(request), verdict);
    return future;
  }
  work_ready_.notify_one();
  return future;
}

Response InferenceServer::predict(std::vector<float> features,
                                  std::uint64_t deadline_us,
                                  const std::string& tenant) {
  return submit(std::move(features), deadline_us, tenant).get();
}

std::size_t InferenceServer::pump(bool force) {
  std::size_t resolved = 0;
  while (true) {
    MicroBatcher::Flush flush;
    {
      const util::MutexLock lock(mutex_);
      flush = batcher_.poll(clock_->now_us(), force || stop_);
      queue_depth_gauge().set(static_cast<double>(batcher_.depth()));
      if (obs::enabled() && !flush.tenant.empty()) {
        tenant_metrics(flush.tenant)
            .queue_depth.set(
                static_cast<double>(batcher_.tenant_depth(flush.tenant)));
      }
    }
    if (flush.batch.empty() && flush.expired.empty()) {
      return resolved;
    }
    resolved += flush.batch.size() + flush.expired.size();
    for (PendingRequest& expired : flush.expired) {
      reject(std::move(expired), Reject::kDeadlineExceeded);
    }
    if (!flush.batch.empty()) {
      dispatch(flush.tenant, std::move(flush.batch));
    }
  }
}

std::size_t InferenceServer::run_until_idle() {
  util::expects(config_.manual_dispatch,
                "run_until_idle requires manual_dispatch mode");
  return pump(/*force=*/false);
}

std::uint64_t InferenceServer::next_event_us() const {
  const util::MutexLock lock(mutex_);
  return batcher_.next_event_us();
}

void InferenceServer::worker_loop() {
  util::UniqueLock lock(mutex_);
  while (true) {
    MicroBatcher::Flush flush = batcher_.poll(clock_->now_us(), stop_);
    if (flush.batch.empty() && flush.expired.empty()) {
      if (stop_) {
        break;  // admission closed and the backlog is drained
      }
      const std::uint64_t next = batcher_.next_event_us();
      if (next == MicroBatcher::kNever) {
        work_ready_.wait(lock);
      } else {
        // Sleep until the nearest flush or per-request deadline; a
        // size-triggered flush is signalled by submit() instead.
        const std::uint64_t now = clock_->now_us();
        const std::uint64_t wait_us = next > now ? next - now : 0;
        work_ready_.wait_for(lock, std::chrono::microseconds(wait_us + 1));
      }
      continue;
    }
    queue_depth_gauge().set(static_cast<double>(batcher_.depth()));
    if (obs::enabled() && !flush.tenant.empty()) {
      tenant_metrics(flush.tenant)
          .queue_depth.set(
              static_cast<double>(batcher_.tenant_depth(flush.tenant)));
    }
    lock.unlock();
    for (PendingRequest& expired : flush.expired) {
      reject(std::move(expired), Reject::kDeadlineExceeded);
    }
    if (!flush.batch.empty()) {
      dispatch(flush.tenant, std::move(flush.batch));
    }
    lock.lock();
  }
}

void InferenceServer::dispatch(const std::string& tenant,
                               std::vector<PendingRequest> batch) {
  auto& metrics = obs::Registry::global();
  static obs::Counter& batches = metrics.counter("serve.batches");
  static obs::Counter& responses = metrics.counter("serve.responses");
  static obs::Histogram& batch_size_hist =
      metrics.histogram("serve.batch_size", obs::default_count_buckets());
  static obs::Histogram& dispatch_seconds =
      metrics.histogram("serve.dispatch_seconds");
  static obs::Histogram& latency_seconds =
      metrics.histogram("serve.e2e_latency_seconds");

  batches.add();
  batch_size_hist.observe(static_cast<double>(batch.size()));
  obs::ScopedTimer dispatch_timer(dispatch_seconds);
  const auto batch_size = static_cast<std::uint32_t>(batch.size());

  // Re-resolve the tenant's model per batch: this is what pins a
  // hot-reloaded pipeline for exactly one dispatch and no longer. Batches
  // are single-tenant by construction (the batcher queues per tenant).
  const auto pipeline = registry_.get(tenant);
  if (pipeline == nullptr) {
    for (PendingRequest& request : batch) {
      reject(std::move(request), Reject::kModelNotFound);
    }
    return;
  }
  const std::size_t feature_count = pipeline->encoder().feature_count();
  std::vector<std::size_t> valid;
  valid.reserve(batch.size());
  data::Dataset queries(feature_count, 2);
  for (std::size_t j = 0; j < batch.size(); ++j) {
    if (batch[j].features.size() != feature_count) {
      reject(std::move(batch[j]), Reject::kBadRequest);
      continue;
    }
    queries.add_sample(batch[j].features, 0);
    valid.push_back(j);
  }
  if (valid.empty()) {
    return;
  }

  const std::vector<int> labels = pipeline->predict_batch(queries);
  const std::uint64_t now = clock_->now_us();
  OnlineSidecar* online = online_.load(std::memory_order_acquire);
  for (std::size_t v = 0; v < valid.size(); ++v) {
    PendingRequest& request = batch[valid[v]];
    if (online != nullptr) {
      // Remember the served request for feedback correlation *before* the
      // promise resolves, so a client reacting instantly to its response
      // can never race an unrecorded prediction. add_sample() copied the
      // features above, so moving them out here is safe.
      online->record(request.tenant, request.id,
                     std::move(request.features));
    }
    Response response;
    response.id = request.id;
    response.label = labels[v];
    response.batch_size = batch_size;
    response.latency_seconds =
        static_cast<double>(now - request.enqueue_us) * 1e-6;
    response.tenant = request.tenant;
    latency_seconds.observe(response.latency_seconds);
    responses.add();
    if (obs::enabled()) {
      tenant_metrics(request.tenant).responses.add();
    }
    request.promise.set_value(response);
  }
}

void InferenceServer::shutdown() {
  {
    const util::MutexLock lock(mutex_);
    if (stop_ && !worker_.joinable()) {
      // Manual mode: already drained by a previous shutdown().
      if (config_.manual_dispatch) {
        return;
      }
    }
    stop_ = true;
    batcher_.close();
  }
  work_ready_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  } else if (config_.manual_dispatch) {
    // Deterministic drain: serve the backlog through the same dispatch
    // path the worker thread would use.
    pump(/*force=*/true);
  }
}

std::size_t InferenceServer::queue_depth() const {
  const util::MutexLock lock(mutex_);
  return batcher_.depth();
}

std::size_t InferenceServer::peak_queue_depth() const {
  const util::MutexLock lock(mutex_);
  return peak_depth_;
}

}  // namespace lehdc::serve
