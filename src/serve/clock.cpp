#include "serve/clock.hpp"

#include <chrono>

namespace lehdc::serve {

namespace {

class SystemClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_us() override {
    const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(since_epoch)
            .count());
  }
};

}  // namespace

Clock& system_clock() {
  static SystemClock clock;
  return clock;
}

}  // namespace lehdc::serve
