// Micro-batching request queue: the deterministic core of the server.
//
// MicroBatcher keeps one bounded FIFO per tenant plus the flush policy: a
// tenant's batch is released when `max_batch` of its requests are pending
// (size flush) or when its oldest pending request has waited `max_wait_us`
// (time flush), whichever comes first. Batches are single-tenant — tenants
// never share a dispatch — and when several tenants are due at once they
// are drained round-robin, so one flooding tenant cannot monopolize the
// dispatch loop. Admission control rejects offers beyond `queue_capacity`
// total (and beyond `tenant_capacity` for any one tenant) with a typed
// Reject — the queue can never grow without bound, so overload degrades
// to shedding, not to memory exhaustion.
//
// The class is deliberately thread-free and time-free: every method takes
// `now_us` from the caller's Clock, and callers provide their own
// synchronization (InferenceServer wraps it in a mutex + condition
// variable; unit tests and the chaos harness drive it directly with a
// FakeClock and assert each decision deterministically).
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "serve/error.hpp"

namespace lehdc::serve {

struct BatcherConfig {
  /// Flush as soon as this many requests of one tenant are pending (and
  /// cap every released batch at this size).
  std::size_t max_batch = 64;
  /// Flush when a tenant's oldest pending request has waited this long.
  std::uint64_t max_wait_us = 1000;
  /// Admission bound across all tenants: offers beyond this total depth
  /// are rejected kQueueFull.
  std::size_t queue_capacity = 1024;
  /// Per-tenant admission bound; 0 means "no separate per-tenant cap"
  /// (only the shared queue_capacity applies). A flooding tenant hits its
  /// own cap and is shed while other tenants keep admitting — the
  /// starvation firewall the chaos harness exercises.
  std::size_t tenant_capacity = 0;
};

/// One queued inference request. The promise is fulfilled by whoever
/// dispatches (or sheds) the request.
struct PendingRequest {
  std::uint64_t id = 0;
  /// Tenant id the request routes to ("" = the server's default tenant;
  /// the server resolves it before the request reaches the batcher).
  std::string tenant;
  std::vector<float> features;
  std::uint64_t enqueue_us = 0;
  /// Absolute Clock deadline; 0 means no deadline. A request whose
  /// deadline passes before dispatch is shed with kDeadlineExceeded.
  std::uint64_t deadline_us = 0;
  std::promise<Response> promise;
};

class MicroBatcher {
 public:
  /// Sentinel returned by next_event_us() when nothing is pending.
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  explicit MicroBatcher(const BatcherConfig& config);

  /// Admits the request or rejects it (kQueueFull / kShuttingDown). The
  /// request is consumed only on success.
  [[nodiscard]] Reject offer(PendingRequest&& request, std::uint64_t now_us);

  struct Flush {
    /// Tenant whose requests fill `batch` (single-tenant batches).
    std::string tenant;
    /// Requests to dispatch as one batch, in arrival order. At most
    /// max_batch; empty when no flush condition holds.
    std::vector<PendingRequest> batch;
    /// Requests whose deadline passed, across all tenants; shed them with
    /// kDeadlineExceeded.
    std::vector<PendingRequest> expired;
  };

  /// Culls expired requests from every tenant, then releases one tenant's
  /// batch if a flush is due (size reached, oldest waited max_wait_us, or
  /// `force`), picking among due tenants round-robin. Callers loop until
  /// both vectors come back empty: a backlog larger than max_batch drains
  /// in max_batch-sized chunks, rotating tenants between chunks.
  [[nodiscard]] Flush poll(std::uint64_t now_us, bool force = false);

  /// Earliest future time at which poll() could have new work: the oldest
  /// request's flush deadline or the nearest per-request deadline across
  /// all tenants, whichever is sooner. kNever when all queues are empty.
  /// (A size flush needs no timer: offer() makes it visible immediately.)
  [[nodiscard]] std::uint64_t next_event_us() const;

  /// Total pending requests across all tenants.
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  /// Pending requests for one tenant (0 when it has no queue).
  [[nodiscard]] std::size_t tenant_depth(const std::string& tenant) const;

  /// Stops admission (offers now return kShuttingDown). Already queued
  /// requests remain and are drained by poll(now, /*force=*/true).
  void close() noexcept { closed_ = true; }
  [[nodiscard]] bool closed() const noexcept { return closed_; }

  [[nodiscard]] const BatcherConfig& config() const noexcept {
    return config_;
  }

 private:
  BatcherConfig config_;
  /// Per-tenant FIFOs. A tenant's entry is erased when its queue drains,
  /// so the map is bounded by the number of tenants with pending work.
  std::map<std::string, std::deque<PendingRequest>> queues_;
  std::size_t depth_ = 0;
  /// Round-robin cursor: the tenant served by the previous poll(). The
  /// next due tenant strictly after it (wrapping) is served next.
  std::string cursor_;
  bool closed_ = false;
};

}  // namespace lehdc::serve
