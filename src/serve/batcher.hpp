// Micro-batching request queue: the deterministic core of the server.
//
// MicroBatcher is a bounded FIFO of pending requests plus the flush policy:
// a batch is released when `max_batch` requests are pending (size flush) or
// when the oldest pending request has waited `max_wait_us` (time flush),
// whichever comes first. Admission control rejects offers beyond
// `queue_capacity` with a typed Reject — the queue can never grow without
// bound, so overload degrades to shedding, not to memory exhaustion.
//
// The class is deliberately thread-free and time-free: every method takes
// `now_us` from the caller's Clock, and callers provide their own
// synchronization (InferenceServer wraps it in a mutex + condition
// variable; unit tests drive it directly with a FakeClock and assert each
// decision deterministically).
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "serve/error.hpp"

namespace lehdc::serve {

struct BatcherConfig {
  /// Flush as soon as this many requests are pending (and cap every
  /// released batch at this size).
  std::size_t max_batch = 64;
  /// Flush when the oldest pending request has waited this long.
  std::uint64_t max_wait_us = 1000;
  /// Admission bound: offers beyond this depth are rejected kQueueFull.
  std::size_t queue_capacity = 1024;
};

/// One queued inference request. The promise is fulfilled by whoever
/// dispatches (or sheds) the request.
struct PendingRequest {
  std::uint64_t id = 0;
  /// Registry key of the target model ("" = the server's default model).
  std::string model;
  std::vector<float> features;
  std::uint64_t enqueue_us = 0;
  /// Absolute Clock deadline; 0 means no deadline. A request whose
  /// deadline passes before dispatch is shed with kDeadlineExceeded.
  std::uint64_t deadline_us = 0;
  std::promise<Response> promise;
};

class MicroBatcher {
 public:
  /// Sentinel returned by next_event_us() when nothing is pending.
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  explicit MicroBatcher(const BatcherConfig& config);

  /// Admits the request or rejects it (kQueueFull / kShuttingDown). The
  /// request is consumed only on success.
  [[nodiscard]] Reject offer(PendingRequest&& request, std::uint64_t now_us);

  struct Flush {
    /// Requests to dispatch as one batch, in arrival order. At most
    /// max_batch; empty when no flush condition holds.
    std::vector<PendingRequest> batch;
    /// Requests whose deadline passed; shed them with kDeadlineExceeded.
    std::vector<PendingRequest> expired;
  };

  /// Culls expired requests, then releases a batch if a flush is due
  /// (size reached, oldest waited max_wait_us, or `force`). Callers loop
  /// until both vectors come back empty: a backlog larger than max_batch
  /// drains in max_batch-sized chunks.
  [[nodiscard]] Flush poll(std::uint64_t now_us, bool force = false);

  /// Earliest future time at which poll() could have new work: the oldest
  /// request's flush deadline or the nearest per-request deadline,
  /// whichever is sooner. kNever when the queue is empty. (A size flush
  /// needs no timer: offer() makes it visible immediately.)
  [[nodiscard]] std::uint64_t next_event_us() const;

  [[nodiscard]] std::size_t depth() const noexcept { return pending_.size(); }

  /// Stops admission (offers now return kShuttingDown). Already queued
  /// requests remain and are drained by poll(now, /*force=*/true).
  void close() noexcept { closed_ = true; }
  [[nodiscard]] bool closed() const noexcept { return closed_; }

  [[nodiscard]] const BatcherConfig& config() const noexcept {
    return config_;
  }

 private:
  BatcherConfig config_;
  std::deque<PendingRequest> pending_;
  bool closed_ = false;
};

}  // namespace lehdc::serve
