// Tenant identity and per-tenant observability for the serving stack.
//
// A tenant id is the routing key across the whole stack: the wire frame
// carries it, the registry binds a model generation to it, the batcher
// queues by it and the server dispatches single-tenant batches. Ids share
// the metric-name charset ([a-z0-9_], bounded length) so a tenant id can
// be spliced into a per-tenant metric name without escaping:
//
//   serve.tenant.requests.<tenant>     counter  admitted submissions
//   serve.tenant.responses.<tenant>    counter  served predictions
//   serve.tenant.rejected.<tenant>     counter  typed sheds, any reason
//   serve.tenant.queue_depth.<tenant>  gauge    per-tenant queue depth
//
// The composed names fall under the schema's reserved "serve.tenant."
// prefix (src/obs/schema.cpp); the base names are also listed verbatim in
// the LINT-METRICS table so tools/lehdc_lint.py can cross-check them.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace lehdc::serve {

/// Upper bound on a tenant id, matching the u16 length field on the wire
/// with lots of headroom and keeping composed metric names short.
inline constexpr std::size_t kMaxTenantIdBytes = 64;

/// True when `tenant` is a legal tenant id: non-empty, at most
/// kMaxTenantIdBytes bytes, characters from [a-z0-9_] only. The charset
/// is deliberately the metric-name charset minus '.', so ids never forge
/// metric-name structure.
[[nodiscard]] bool valid_tenant_id(std::string_view tenant) noexcept;

/// Composes the per-tenant metric name `<base>.<tenant>`. Precondition:
/// valid_tenant_id(tenant).
[[nodiscard]] std::string tenant_metric_name(std::string_view base,
                                             std::string_view tenant);

/// Cached per-tenant metric handles in the global obs registry. The first
/// lookup for a tenant registers its four instruments; later lookups are
/// one map find under a local mutex. Call only when obs::enabled() — the
/// server gates on that so the disabled hot path stays allocation-free.
struct TenantMetrics {
  obs::Counter& requests;
  obs::Counter& responses;
  obs::Counter& rejected;
  obs::Gauge& queue_depth;
};

[[nodiscard]] TenantMetrics& tenant_metrics(const std::string& tenant);

}  // namespace lehdc::serve
