#include "serve/error.hpp"

namespace lehdc::serve {

const char* reject_name(Reject reason) noexcept {
  switch (reason) {
    case Reject::kNone:
      return "ok";
    case Reject::kQueueFull:
      return "queue_full";
    case Reject::kDeadlineExceeded:
      return "deadline_exceeded";
    case Reject::kShuttingDown:
      return "shutting_down";
    case Reject::kModelNotFound:
      return "model_not_found";
    case Reject::kBadRequest:
      return "bad_request";
    case Reject::kUnknownCorrelation:
      return "unknown_correlation";
  }
  return "unknown";
}

}  // namespace lehdc::serve
