#include "serve/protocol.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "serve/framing.hpp"
#include "serve/tenant.hpp"
#include "util/serial.hpp"

namespace lehdc::serve {

namespace {

std::string frame(const char magic[4], const util::PayloadWriter& payload) {
  std::string out;
  out.reserve(8 + payload.size());
  out.append(magic, 4);
  const auto size = static_cast<std::uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&size), sizeof(size));
  out.append(payload.str());
  return out;
}

/// Reads one frame body into `payload`, accepting either of the two
/// magics and reporting which matched via `*version` (1 or 2). Returns
/// false on clean EOF before any header byte; throws on everything else
/// that is not a whole frame. Runs the incremental FrameDecoder with
/// exact-sized reads (bytes_needed()), so the blocking readers and the
/// event loop share one framing state machine — and the stream is left at
/// the following frame boundary, never over-read.
bool read_frame(std::istream& in, const char magic_v1[4],
                const char magic_v2[4], int* version, std::string* payload,
                const std::string& context,
                const char* magic_extra = nullptr) {
  FrameDecoder decoder(magic_v1, magic_v2, context, magic_extra);
  char header[8];
  in.read(header, sizeof(header));
  if (in.gcount() == 0 && in.eof()) {
    return false;
  }
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    throw std::runtime_error("truncated frame header in " + context);
  }
  decoder.feed({header, sizeof(header)});
  FrameDecoder::Frame frame;
  // next() validates magic + length from the header (typed errors), then
  // reports how many payload bytes remain; one exact read completes it.
  while (!decoder.next(&frame)) {
    const std::size_t need = decoder.bytes_needed();
    std::string chunk(need, '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(need));
    if (in.gcount() != static_cast<std::streamsize>(need)) {
      throw std::runtime_error("truncated frame payload in " + context);
    }
    decoder.feed(chunk);
  }
  *version = frame.version;
  payload->assign(frame.payload);
  return true;
}

void check_version(int version, const std::string& context) {
  if (version != 1 && version != 2) {
    throw std::runtime_error("unknown frame version " +
                             std::to_string(version) + " in " + context);
  }
}

void check_tenant(const std::string& tenant, const std::string& context) {
  // An empty tenant routes to the server default; anything else must be a
  // well-formed id so it can never smuggle bytes into logs or metric names.
  if (!tenant.empty() && !valid_tenant_id(tenant)) {
    throw std::runtime_error("invalid tenant id in " + context);
  }
}

}  // namespace

int request_frame_version(const char magic[4]) noexcept {
  if (std::memcmp(magic, kRequestMagic, 4) == 0) {
    return 1;
  }
  if (std::memcmp(magic, kRequestMagicV2, 4) == 0) {
    return 2;
  }
  return 0;
}

std::string encode_request(const WireRequest& request) {
  check_version(request.version, "encode_request");
  check_tenant(request.tenant, "encode_request");
  util::PayloadWriter payload;
  payload.pod<std::uint64_t>(request.id);
  payload.pod<std::uint64_t>(request.deadline_budget_us);
  payload.pod<std::uint16_t>(
      static_cast<std::uint16_t>(request.tenant.size()));
  payload.bytes(request.tenant.data(), request.tenant.size());
  payload.pod<std::uint32_t>(
      static_cast<std::uint32_t>(request.features.size()));
  payload.bytes(request.features.data(),
                request.features.size() * sizeof(float));
  return frame(request.version == 1 ? kRequestMagic : kRequestMagicV2,
               payload);
}

std::string encode_feedback(const WireFeedback& feedback) {
  check_tenant(feedback.tenant, "encode_feedback");
  util::PayloadWriter payload;
  payload.pod<std::uint64_t>(feedback.id);
  payload.pod<std::uint16_t>(
      static_cast<std::uint16_t>(feedback.tenant.size()));
  payload.bytes(feedback.tenant.data(), feedback.tenant.size());
  payload.pod<std::int32_t>(feedback.label);
  return frame(kFeedbackMagicV2, payload);
}

std::string encode_response(const Response& response, int version) {
  check_version(version, "encode_response");
  util::PayloadWriter payload;
  payload.pod<std::uint64_t>(response.id);
  payload.pod<std::uint8_t>(static_cast<std::uint8_t>(response.error));
  payload.pod<std::int32_t>(response.label);
  payload.pod<std::uint32_t>(response.batch_size);
  payload.pod<double>(response.latency_seconds);
  if (version == 1) {
    return frame(kResponseMagic, payload);
  }
  check_tenant(response.tenant, "encode_response");
  payload.pod<std::uint16_t>(
      static_cast<std::uint16_t>(response.tenant.size()));
  payload.bytes(response.tenant.data(), response.tenant.size());
  return frame(kResponseMagicV2, payload);
}

WireRequest decode_request_payload(std::string_view payload, int version,
                                   const std::string& context) {
  check_version(version, context);
  util::PayloadReader reader(payload, context);
  WireRequest request;
  request.version = version;
  request.id = reader.pod<std::uint64_t>();
  request.deadline_budget_us = reader.pod<std::uint64_t>();
  const auto tenant_length = reader.pod<std::uint16_t>();
  if (tenant_length > kMaxTenantIdBytes) {
    throw std::runtime_error("oversized tenant id in " + context);
  }
  request.tenant.resize(tenant_length);
  reader.bytes(request.tenant.data(), tenant_length);
  check_tenant(request.tenant, context);
  const auto feature_count = reader.pod<std::uint32_t>();
  // The reader bounds-checks the bulk read, so a lying feature_count can
  // never trigger an allocation beyond the (already bounded) payload.
  if (static_cast<std::size_t>(feature_count) * sizeof(float) >
      reader.remaining()) {
    throw std::runtime_error("feature count overruns payload in " + context);
  }
  request.features.resize(feature_count);
  reader.bytes(request.features.data(), feature_count * sizeof(float));
  reader.expect_done();
  return request;
}

Response decode_response_payload(std::string_view payload, int version,
                                 const std::string& context) {
  check_version(version, context);
  util::PayloadReader reader(payload, context);
  Response response;
  response.id = reader.pod<std::uint64_t>();
  const auto status = reader.pod<std::uint8_t>();
  if (status > static_cast<std::uint8_t>(Reject::kUnknownCorrelation)) {
    throw std::runtime_error("unknown response status in " + context);
  }
  response.error = static_cast<Reject>(status);
  response.label = reader.pod<std::int32_t>();
  response.batch_size = reader.pod<std::uint32_t>();
  response.latency_seconds = reader.pod<double>();
  if (version == 2) {
    const auto tenant_length = reader.pod<std::uint16_t>();
    if (tenant_length > kMaxTenantIdBytes) {
      throw std::runtime_error("oversized tenant id in " + context);
    }
    response.tenant.resize(tenant_length);
    reader.bytes(response.tenant.data(), tenant_length);
    check_tenant(response.tenant, context);
  }
  reader.expect_done();
  return response;
}

WireFeedback decode_feedback_payload(std::string_view payload,
                                     const std::string& context) {
  util::PayloadReader reader(payload, context);
  WireFeedback feedback;
  feedback.id = reader.pod<std::uint64_t>();
  const auto tenant_length = reader.pod<std::uint16_t>();
  if (tenant_length > kMaxTenantIdBytes) {
    throw std::runtime_error("oversized tenant id in " + context);
  }
  feedback.tenant.resize(tenant_length);
  reader.bytes(feedback.tenant.data(), tenant_length);
  check_tenant(feedback.tenant, context);
  feedback.label = reader.pod<std::int32_t>();
  reader.expect_done();
  return feedback;
}

bool read_request(std::istream& in, WireRequest* out,
                  const std::string& context) {
  std::string payload;
  int version = 0;
  if (!read_frame(in, kRequestMagic, kRequestMagicV2, &version, &payload,
                  context)) {
    return false;
  }
  *out = decode_request_payload(payload, version, context);
  return true;
}

bool read_client_frame(std::istream& in, ClientFrame* out,
                       const std::string& context) {
  std::string payload;
  int version = 0;
  if (!read_frame(in, kRequestMagic, kRequestMagicV2, &version, &payload,
                  context, kFeedbackMagicV2)) {
    return false;
  }
  out->kind = version;
  if (version == kFeedbackFrameKind) {
    out->feedback = decode_feedback_payload(payload, context);
  } else {
    out->request = decode_request_payload(payload, version, context);
  }
  return true;
}

bool read_response(std::istream& in, Response* out,
                   const std::string& context) {
  std::string payload;
  int version = 0;
  if (!read_frame(in, kResponseMagic, kResponseMagicV2, &version, &payload,
                  context)) {
    return false;
  }
  *out = decode_response_payload(payload, version, context);
  return true;
}

void write_request(std::ostream& out, const WireRequest& request) {
  const std::string bytes = encode_request(request);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("failed to write request frame");
  }
}

void write_response(std::ostream& out, const Response& response,
                    int version) {
  const std::string bytes = encode_response(response, version);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("failed to write response frame");
  }
}

void write_feedback(std::ostream& out, const WireFeedback& feedback) {
  const std::string bytes = encode_feedback(feedback);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("failed to write feedback frame");
  }
}

}  // namespace lehdc::serve
