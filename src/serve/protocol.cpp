#include "serve/protocol.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/serial.hpp"

namespace lehdc::serve {

namespace {

std::string frame(const char magic[4], const util::PayloadWriter& payload) {
  std::string out;
  out.reserve(8 + payload.size());
  out.append(magic, 4);
  const auto size = static_cast<std::uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&size), sizeof(size));
  out.append(payload.str());
  return out;
}

/// Reads one frame body into `payload`. Returns false on clean EOF before
/// any header byte; throws on everything else that is not a whole frame.
bool read_frame(std::istream& in, const char expected_magic[4],
                std::string* payload, const std::string& context) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() == 0 && in.eof()) {
    return false;
  }
  if (in.gcount() != sizeof(magic)) {
    throw std::runtime_error("truncated frame header in " + context);
  }
  if (std::memcmp(magic, expected_magic, sizeof(magic)) != 0) {
    throw std::runtime_error("bad frame magic in " + context);
  }
  std::uint32_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (in.gcount() != sizeof(size)) {
    throw std::runtime_error("truncated frame length in " + context);
  }
  if (size > kMaxPayloadBytes) {
    throw std::runtime_error("oversized frame (" + std::to_string(size) +
                             " bytes) in " + context);
  }
  payload->resize(size);
  in.read(payload->data(), static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    throw std::runtime_error("truncated frame payload in " + context);
  }
  return true;
}

}  // namespace

std::string encode_request(const WireRequest& request) {
  util::PayloadWriter payload;
  payload.pod<std::uint64_t>(request.id);
  payload.pod<std::uint64_t>(request.deadline_budget_us);
  payload.pod<std::uint16_t>(static_cast<std::uint16_t>(request.model.size()));
  payload.bytes(request.model.data(), request.model.size());
  payload.pod<std::uint32_t>(
      static_cast<std::uint32_t>(request.features.size()));
  payload.bytes(request.features.data(),
                request.features.size() * sizeof(float));
  return frame(kRequestMagic, payload);
}

std::string encode_response(const Response& response) {
  util::PayloadWriter payload;
  payload.pod<std::uint64_t>(response.id);
  payload.pod<std::uint8_t>(static_cast<std::uint8_t>(response.error));
  payload.pod<std::int32_t>(response.label);
  payload.pod<std::uint32_t>(response.batch_size);
  payload.pod<double>(response.latency_seconds);
  return frame(kResponseMagic, payload);
}

WireRequest decode_request_payload(std::string_view payload,
                                   const std::string& context) {
  util::PayloadReader reader(payload, context);
  WireRequest request;
  request.id = reader.pod<std::uint64_t>();
  request.deadline_budget_us = reader.pod<std::uint64_t>();
  const auto model_length = reader.pod<std::uint16_t>();
  request.model.resize(model_length);
  reader.bytes(request.model.data(), model_length);
  const auto feature_count = reader.pod<std::uint32_t>();
  // The reader bounds-checks the bulk read, so a lying feature_count can
  // never trigger an allocation beyond the (already bounded) payload.
  if (static_cast<std::size_t>(feature_count) * sizeof(float) >
      reader.remaining()) {
    throw std::runtime_error("feature count overruns payload in " + context);
  }
  request.features.resize(feature_count);
  reader.bytes(request.features.data(), feature_count * sizeof(float));
  reader.expect_done();
  return request;
}

Response decode_response_payload(std::string_view payload,
                                 const std::string& context) {
  util::PayloadReader reader(payload, context);
  Response response;
  response.id = reader.pod<std::uint64_t>();
  const auto status = reader.pod<std::uint8_t>();
  if (status > static_cast<std::uint8_t>(Reject::kBadRequest)) {
    throw std::runtime_error("unknown response status in " + context);
  }
  response.error = static_cast<Reject>(status);
  response.label = reader.pod<std::int32_t>();
  response.batch_size = reader.pod<std::uint32_t>();
  response.latency_seconds = reader.pod<double>();
  reader.expect_done();
  return response;
}

bool read_request(std::istream& in, WireRequest* out,
                  const std::string& context) {
  std::string payload;
  if (!read_frame(in, kRequestMagic, &payload, context)) {
    return false;
  }
  *out = decode_request_payload(payload, context);
  return true;
}

bool read_response(std::istream& in, Response* out,
                   const std::string& context) {
  std::string payload;
  if (!read_frame(in, kResponseMagic, &payload, context)) {
    return false;
  }
  *out = decode_response_payload(payload, context);
  return true;
}

void write_request(std::ostream& out, const WireRequest& request) {
  const std::string bytes = encode_request(request);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("failed to write request frame");
  }
}

void write_response(std::ostream& out, const Response& response) {
  const std::string bytes = encode_response(response);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("failed to write response frame");
  }
}

}  // namespace lehdc::serve
