// Typed serving outcomes.
//
// Graceful shedding is part of the serving contract: a request that cannot
// be served is rejected with a machine-readable reason (queue full, deadline
// exceeded, shutdown, ...) instead of an exception string or — worse —
// unbounded queue growth. The same codes travel over the wire protocol, so
// a remote client sees exactly what an in-process caller sees.
#pragma once

#include <cstdint>
#include <string>

namespace lehdc::serve {

/// Why a request was not served. kNone means success.
enum class Reject : std::uint8_t {
  kNone = 0,
  /// The bounded request queue was at capacity (admission control shed the
  /// request; the client may retry with backoff).
  kQueueFull = 1,
  /// The request's deadline passed before its batch was dispatched.
  kDeadlineExceeded = 2,
  /// The server is shutting down and no longer admits requests.
  kShuttingDown = 3,
  /// No model with the requested name is registered.
  kModelNotFound = 4,
  /// The request is malformed (e.g. feature count does not match the
  /// model's encoder).
  kBadRequest = 5,
  /// A feedback frame referenced a request id the server has no record of
  /// for that tenant — the correlation window expired, the id was never
  /// served, or the feedback named a different tenant than the request.
  kUnknownCorrelation = 6,
};

/// Stable lowercase identifier ("queue_full", ...) for logs and metrics.
[[nodiscard]] const char* reject_name(Reject reason) noexcept;

/// One served (or shed) request's outcome.
struct Response {
  std::uint64_t id = 0;
  Reject error = Reject::kNone;
  /// Predicted class label; -1 when the request was rejected.
  int label = -1;
  /// Size of the micro-batch this request was served in; 0 on rejection.
  std::uint32_t batch_size = 0;
  /// Server-side end-to-end latency (enqueue to fulfilment) in seconds.
  double latency_seconds = 0.0;
  /// Tenant the request was routed to (the resolved id, never empty on a
  /// served response). v2 response frames echo it on the wire so clients
  /// can detect cross-tenant mixups; v1 frames drop it.
  std::string tenant;

  [[nodiscard]] bool ok() const noexcept { return error == Reject::kNone; }
};

}  // namespace lehdc::serve
