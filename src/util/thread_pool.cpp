#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace lehdc::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // With a single worker all work runs inline on the calling thread; no
  // threads are spawned at all.
  if (workers == 1) {
    return;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  expects(begin <= end, "parallel_for: begin must not exceed end");
  if (begin == end) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t workers = worker_count();
  if (workers == 1 || n == 1) {
    fn(begin, end);
    return;
  }

  const std::size_t chunks = std::min(n, workers);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    auto task = [&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(done_mutex);
        done.notify_one();
      }
    };
    {
      const std::scoped_lock lock(mutex_);
      tasks_.emplace(std::move(task));
    }
    task_ready_.notify_one();
  }

  std::unique_lock lock(done_mutex);
  done.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace lehdc::util
