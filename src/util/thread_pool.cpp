#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/check.hpp"

namespace lehdc::util {

namespace {

// The pool whose worker_loop is running on this thread, if any. Used to
// detect nested parallel_for calls: a worker that blocks waiting for chunks
// it enqueued on its own pool can deadlock once every worker does the same,
// so nested calls run inline instead.
thread_local const ThreadPool* current_worker_pool = nullptr;

// Global-pool sizing request; read once when the global pool is built.
std::atomic<std::size_t> global_workers_request{0};
std::atomic<bool> global_pool_built{false};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // With a single worker all work runs inline on the calling thread; no
  // threads are spawned at all.
  if (workers == 1) {
    return;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      // Explicit wait loop (not a predicate lambda): the guarded reads of
      // stopping_/tasks_ must happen in this annotated scope, where the
      // analysis can see the lock is held.
      while (!stopping_ && tasks_.empty()) {
        task_ready_.wait(lock);
      }
      if (stopping_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  expects(begin <= end, "parallel_for: begin must not exceed end");
  if (begin == end) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t workers = worker_count();
  // Nested use: a worker enqueueing onto its own pool and then blocking
  // would occupy a worker slot while waiting — with every slot doing the
  // same the pool stalls. Run the nested range inline instead.
  if (workers == 1 || n == 1 || current_worker_pool == this) {
    fn(begin, end);
    return;
  }

  const std::size_t chunks = std::min(n, workers);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  Mutex error_mutex;
  Mutex done_mutex;
  CondVar done;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    auto task = [&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const MutexLock lock(done_mutex);
        done.notify_one();
      }
    };
    {
      const MutexLock lock(mutex_);
      tasks_.emplace(std::move(task));
    }
    task_ready_.notify_one();
  }

  UniqueLock lock(done_mutex);
  while (remaining.load(std::memory_order_acquire) != 0) {
    done.wait(lock);
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool = [] {
    global_pool_built.store(true, std::memory_order_release);
    std::size_t workers = global_workers_request.load();
    if (workers == 0) {
      workers = parse_worker_count(std::getenv("LEHDC_THREADS"));
    }
    return ThreadPool(workers);
  }();
  return pool;
}

bool ThreadPool::configure_global(std::size_t workers) {
  if (global_pool_built.load(std::memory_order_acquire)) {
    return false;
  }
  global_workers_request.store(workers);
  return true;
}

std::size_t parse_worker_count(const char* text) noexcept {
  if (text == nullptr || *text == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value <= 0) {
    return 0;
  }
  return static_cast<std::size_t>(value);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace lehdc::util
