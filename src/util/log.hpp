// Minimal leveled logging with an injectable sink (default: stderr).
//
// The harnesses print their primary results on stdout; diagnostic progress
// (epoch counters, timing) goes through this logger so it can be silenced
// or captured. Tests install a capturing sink via set_log_sink; the CLI
// keeps the default so stdout stays machine-parseable even when
// `--metrics-out -` claims it for the metrics JSON.
#pragma once

#include <functional>
#include <string_view>

namespace lehdc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Receives every message that clears the threshold. The level is passed
/// through so a sink can route or tag; `message` is the raw text without
/// the "[level] " prefix or trailing newline.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the global sink; an empty function restores the stderr
/// default. Returns the previously installed sink ({} when the default
/// was active) so callers can restore it. Thread-safe.
LogSink set_log_sink(LogSink sink);

/// Emits "[level] message\n" through the installed sink (stderr by
/// default) when level >= threshold.
void log(LogLevel level, std::string_view message);

void log_debug(std::string_view message);
void log_info(std::string_view message);
void log_warn(std::string_view message);
void log_error(std::string_view message);

}  // namespace lehdc::util
