// Minimal leveled logging to stderr.
//
// The harnesses print their primary results on stdout; diagnostic progress
// (epoch counters, timing) goes through this logger so it can be silenced.
#pragma once

#include <string_view>

namespace lehdc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits "[level] message\n" to stderr when level >= threshold.
void log(LogLevel level, std::string_view message);

void log_debug(std::string_view message);
void log_info(std::string_view message);
void log_warn(std::string_view message);
void log_error(std::string_view message);

}  // namespace lehdc::util
