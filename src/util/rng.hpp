// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Xoshiro256** generator so that all experiments are reproducible. SplitMix64
// is used to expand a single 64-bit seed into a full generator state, and to
// derive decorrelated child seeds (one stream per item memory, per trainer,
// per trial, ...).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace lehdc::util {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Primarily used to seed
/// Xoshiro256** and to derive independent child seeds from a master seed.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the library's workhorse generator. Satisfies
/// std::uniform_random_bit_generator, so it composes with <random>
/// distributions when convenient; the members below cover the hot paths
/// without distribution overhead.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x1e4dc0de5eedULL) noexcept;

  result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform float in [0, 1) with 24 bits of precision.
  float next_float() noexcept;

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5) noexcept;

  /// Standard normal draw (Box–Muller; caches the second variate).
  double next_gaussian() noexcept;

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) noexcept;

  /// Derives a decorrelated child seed; stream_id distinguishes children.
  std::uint64_t derive_seed(std::uint64_t stream_id) noexcept;

  /// The full generator state — everything needed to resume the stream
  /// bit-identically (training checkpoints persist this).
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;

    bool operator==(const State&) const noexcept = default;
  };

  [[nodiscard]] State state() const noexcept {
    return State{state_, cached_gaussian_, has_cached_gaussian_};
  }

  /// Restores a previously captured state; the next draws continue the
  /// captured stream exactly. Precondition: state.words is not all-zero
  /// (never produced by state()).
  void set_state(const State& state) noexcept {
    state_ = state.words;
    cached_gaussian_ = state.cached_gaussian;
    has_cached_gaussian_ = state.has_cached_gaussian;
  }

  /// Fisher–Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) noexcept {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = next_below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace lehdc::util
