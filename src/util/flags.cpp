#include "util/flags.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace lehdc::util {

FlagParser::FlagParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

FlagParser::Entry& FlagParser::declare(std::string_view name, Kind kind,
                                       std::string_view help) {
  expects(!name.empty() && name.substr(0, 2) != "--",
          "flag names are declared without the leading --");
  auto [it, inserted] = entries_.try_emplace(std::string(name));
  expects(inserted, "duplicate flag declaration");
  order_.emplace_back(name);
  it->second.kind = kind;
  it->second.help = std::string(help);
  return it->second;
}

void FlagParser::add_int(std::string_view name, std::int64_t default_value,
                         std::string_view help) {
  Entry& entry = declare(name, Kind::kInt, help);
  entry.int_value = default_value;
  entry.default_text = std::to_string(default_value);
}

void FlagParser::add_double(std::string_view name, double default_value,
                            std::string_view help) {
  Entry& entry = declare(name, Kind::kDouble, help);
  entry.double_value = default_value;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", default_value);
  entry.default_text = buffer;
}

void FlagParser::add_string(std::string_view name,
                            std::string_view default_value,
                            std::string_view help) {
  Entry& entry = declare(name, Kind::kString, help);
  entry.string_value = std::string(default_value);
  entry.default_text = std::string(default_value);
}

void FlagParser::add_flag(std::string_view name, std::string_view help) {
  Entry& entry = declare(name, Kind::kBool, help);
  entry.bool_value = false;
  entry.default_text = "false";
}

void FlagParser::assign(Entry& entry, std::string_view name,
                        std::string_view value) {
  switch (entry.kind) {
    case Kind::kInt: {
      std::int64_t parsed = 0;
      const auto* end = value.data() + value.size();
      const auto result = std::from_chars(value.data(), end, parsed);
      if (result.ec != std::errc{} || result.ptr != end) {
        throw std::invalid_argument("invalid integer for --" +
                                    std::string(name) + ": " +
                                    std::string(value));
      }
      entry.int_value = parsed;
      break;
    }
    case Kind::kDouble: {
      try {
        std::size_t consumed = 0;
        const std::string text(value);
        entry.double_value = std::stod(text, &consumed);
        if (consumed != text.size()) {
          throw std::invalid_argument("trailing characters");
        }
      } catch (const std::exception&) {
        throw std::invalid_argument("invalid number for --" +
                                    std::string(name) + ": " +
                                    std::string(value));
      }
      break;
    }
    case Kind::kString:
      entry.string_value = std::string(value);
      break;
    case Kind::kBool:
      if (value == "true" || value == "1") {
        entry.bool_value = true;
      } else if (value == "false" || value == "0") {
        entry.bool_value = false;
      } else {
        throw std::invalid_argument("invalid boolean for --" +
                                    std::string(name) + ": " +
                                    std::string(value));
      }
      break;
  }
}

void FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      // --help output is the one place a library routine owns stdout: help
      // text is the program's contractual reply, not diagnostics.
      std::fputs(usage().c_str(), stdout);  // lehdc-lint: allow(stdout-in-library)
      std::exit(0);
    }
    if (arg.substr(0, 2) != "--") {
      throw std::invalid_argument("unexpected positional argument: " +
                                  std::string(arg));
    }
    arg.remove_prefix(2);

    std::string_view name = arg;
    std::string_view value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }

    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown flag: --" + std::string(name));
    }
    Entry& entry = it->second;

    if (entry.kind == Kind::kBool && !has_value) {
      entry.bool_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" +
                                    std::string(name));
      }
      value = argv[++i];
    }
    assign(entry, name, value);
  }
}

const FlagParser::Entry& FlagParser::lookup(std::string_view name,
                                            Kind kind) const {
  const auto it = entries_.find(name);
  expects(it != entries_.end(), "flag was never declared");
  expects(it->second.kind == kind, "flag accessed with the wrong type");
  return it->second;
}

std::int64_t FlagParser::get_int(std::string_view name) const {
  return lookup(name, Kind::kInt).int_value;
}

double FlagParser::get_double(std::string_view name) const {
  return lookup(name, Kind::kDouble).double_value;
}

const std::string& FlagParser::get_string(std::string_view name) const {
  return lookup(name, Kind::kString).string_value;
}

bool FlagParser::get_flag(std::string_view name) const {
  return lookup(name, Kind::kBool).bool_value;
}

std::string FlagParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Entry& entry = entries_.at(name);
    out += "  --" + name;
    out += " (default: " + entry.default_text + ")\n      " + entry.help +
           "\n";
  }
  out += "  --help\n      print this message\n";
  return out;
}

}  // namespace lehdc::util
