// A fixed-size thread pool with a chunked parallel_for.
//
// Training at paper scale (D = 10,000, tens of thousands of samples) is
// embarrassingly parallel over hypervector dimensions and over samples.
// The pool degrades gracefully to inline execution when constructed with a
// single worker (e.g. on one-core CI machines).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lehdc::util {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.empty() ? 1 : threads_.size();
  }

  /// Runs fn(begin..end) split into contiguous chunks across the pool and
  /// blocks until all chunks complete. fn receives [chunk_begin, chunk_end).
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace lehdc::util
