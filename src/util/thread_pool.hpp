// A fixed-size thread pool with a chunked parallel_for.
//
// Training at paper scale (D = 10,000, tens of thousands of samples) is
// embarrassingly parallel over hypervector dimensions and over samples.
// The pool degrades gracefully to inline execution when constructed with a
// single worker (e.g. on one-core CI machines), and a parallel_for issued
// from inside one of the pool's own workers runs inline instead of
// enqueueing — nested parallelism (e.g. a batched predict inside an already
// parallel evaluation loop) therefore cannot stall the pool.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::util {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.empty() ? 1 : threads_.size();
  }

  /// Runs fn(begin..end) split into contiguous chunks across the pool and
  /// blocks until all chunks complete. fn receives [chunk_begin, chunk_end).
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  /// Reentrancy-safe: when called from inside one of this pool's workers,
  /// the whole range runs inline on the calling thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool; created on first use. Sized by, in order of
  /// precedence: configure_global(), the LEHDC_THREADS environment
  /// variable, std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Requests `workers` threads (0 = hardware) for the global pool. Must be
  /// called before the first global() use; returns false (and changes
  /// nothing) once the global pool exists.
  static bool configure_global(std::size_t workers);

 private:
  void worker_loop() LEHDC_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;  // written only in ctor, joined in dtor
  Mutex mutex_;
  CondVar task_ready_;
  std::queue<std::function<void()>> tasks_ LEHDC_GUARDED_BY(mutex_);
  bool stopping_ LEHDC_GUARDED_BY(mutex_) = false;
};

/// Parses a worker-count override such as the LEHDC_THREADS value: returns
/// the parsed positive count, or 0 (meaning "hardware") for null, empty,
/// non-numeric or non-positive input.
[[nodiscard]] std::size_t parse_worker_count(const char* text) noexcept;

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace lehdc::util
