// Durable file IO primitives for model artifacts and checkpoints.
//
// Two building blocks every persisted format in this library relies on:
//
//  * crc32 — the CRC-32/ISO-HDLC checksum (the zlib polynomial), used to
//    detect bit rot and partial writes in LHDC/LHDE/LHDP payloads and in
//    training checkpoints.
//  * atomic_write_file — write-to-temp-then-rename. A crash (or an
//    exception) at any point before the final rename leaves the target
//    path untouched: either the old file survives intact or no file
//    exists; a torn half-written artifact is never observable at `path`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace lehdc::util {

/// CRC-32 (reflected, polynomial 0xEDB88320) of `size` bytes at `data`.
/// Pass the previous return value as `seed` to checksum incrementally.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

/// Convenience overload over a byte string.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes,
                                  std::uint32_t seed = 0) noexcept;

/// Writes `payload` to `path` atomically: the bytes go to a sibling
/// temporary file (`path` + ".tmp.<suffix>"), are flushed, and the temp
/// file is renamed over `path` only after every byte landed. Throws
/// std::runtime_error on any failure, in which case the temporary file is
/// removed and the previous content of `path` (if any) is left untouched.
void atomic_write_file(const std::string& path, std::string_view payload);

/// Callback form: `writer` streams the payload into the temporary file.
/// If `writer` throws or leaves the stream in a failed state, the temp
/// file is removed, `path` is untouched, and the error propagates
/// (std::runtime_error for stream failures). Used by formats too large to
/// buffer and by tests simulating a crash mid-save.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Reads the whole file into a byte string; throws std::runtime_error if
/// the file cannot be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

/// Writes the checksum framing shared by all version >= 2 artifact
/// formats: `u64 payload_size | payload | u32 crc32(payload)`. The caller
/// writes magic and version first.
void write_framed_payload(std::ostream& out, std::string_view payload);

/// Reads back the framing of write_framed_payload and verifies the CRC.
/// Throws std::runtime_error (naming `context`) on truncation, on a
/// declared size above `max_size` (guards corrupt headers from triggering
/// absurd allocations), or on a checksum mismatch — i.e. any bit error in
/// the payload is detected here.
[[nodiscard]] std::string read_framed_payload(std::istream& in,
                                              std::size_t max_size,
                                              const std::string& context);

}  // namespace lehdc::util
