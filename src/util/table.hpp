// Console table and CSV output used by the table/figure harnesses.
//
// TextTable renders aligned, boxed tables on stdout (the harnesses print the
// same rows the paper's tables report); CsvWriter persists figure series so
// they can be re-plotted.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lehdc::util {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Number formatting convenience: fixed precision.
  [[nodiscard]] static std::string cell(double value, int precision = 2);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows to a CSV file; cells containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  void* file_;  // std::FILE*, kept opaque to avoid <cstdio> in the header
};

/// Escapes one CSV cell (exposed for testing).
[[nodiscard]] std::string csv_escape(std::string_view cell);

}  // namespace lehdc::util
