#include "util/stats.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace lehdc::util {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::string Summary::to_string(int precision) const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f ±%.*f", precision, mean,
                precision, stddev);
  return buffer;
}

Summary summarize(std::span<const double> values) {
  RunningStats stats;
  for (const double v : values) {
    stats.add(v);
  }
  return Summary{.count = stats.count(),
                 .mean = stats.mean(),
                 .stddev = stats.stddev(),
                 .min = stats.min(),
                 .max = stats.max()};
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  expects(xs.size() == ys.size() && !xs.empty(),
          "pearson requires equal-length, non-empty inputs");
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace lehdc::util
