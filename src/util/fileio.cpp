#include "util/fileio.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace lehdc::util {

namespace {

/// CRC-32 lookup table for the reflected polynomial 0xEDB88320, built once.
std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

/// Temp-file sibling of `path`. Deterministic per-path (a crashed writer's
/// stale temp is simply overwritten by the next save attempt).
std::string temp_sibling(const std::string& path) {
  return path + ".tmp.lehdc";
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) noexcept {
  return crc32(bytes.data(), bytes.size(), seed);
}

void atomic_write_file(const std::string& path, std::string_view payload) {
  atomic_write_file(path, [&](std::ostream& out) {
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  });
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string temp = temp_sibling(path);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open temporary file for writing: " +
                               temp);
    }
    try {
      writer(out);
    } catch (...) {
      out.close();
      std::remove(temp.c_str());
      throw;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(temp.c_str());
      throw std::runtime_error("failed writing temporary file: " + temp);
    }
  }
  // Publish: POSIX rename atomically replaces `path`, so a reader (or a
  // crash) sees either the complete old file or the complete new one.
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("cannot rename " + temp + " over " + path);
  }
}

void write_framed_payload(std::ostream& out, std::string_view payload) {
  const auto size = static_cast<std::uint64_t>(payload.size());
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint32_t checksum = crc32(payload);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
}

std::string read_framed_payload(std::istream& in, std::size_t max_size,
                                const std::string& context) {
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in) {
    throw std::runtime_error("truncated payload header in " + context);
  }
  if (size > max_size) {
    throw std::runtime_error("implausible payload size (" +
                             std::to_string(size) + " bytes) in " + context);
  }
  std::string payload(size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  if (!in) {
    throw std::runtime_error("truncated payload in " + context);
  }
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in) {
    throw std::runtime_error("missing checksum in " + context);
  }
  if (crc32(payload) != stored) {
    throw std::runtime_error("checksum mismatch in " + context +
                             " — the payload is corrupt");
  }
  return payload;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open file: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("failed reading file: " + path);
  }
  return bytes;
}

}  // namespace lehdc::util
