// In-memory payload (de)serialization for the checksummed file formats.
//
// Every durable artifact in this library (LHDC/LHDE models, LHDP pipeline
// bundles, LHCK training checkpoints) is laid out as
//
//   magic | u32 version | u64 payload_size | payload | u32 crc32(payload)
//
// The payload is built in memory with PayloadWriter (so the CRC can be
// computed before any byte hits disk) and parsed with PayloadReader (which
// bounds-checks every read and reports the offending offset). Integers are
// written little-endian via memcpy of the native representation; the
// library targets little-endian platforms, matching the pre-existing v1
// formats.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace lehdc::util {

/// Appends POD values and raw byte runs to a growing byte buffer.
class PayloadWriter {
 public:
  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    buffer_.append(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  [[nodiscard]] const std::string& str() const noexcept { return buffer_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Sequentially parses a byte buffer; every read is bounds-checked and a
/// short buffer throws std::runtime_error naming the context (usually the
/// file path) and the byte offset where data ran out.
class PayloadReader {
 public:
  PayloadReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  template <typename T>
  [[nodiscard]] T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    bytes(&value, sizeof(T));
    return value;
  }

  void bytes(void* out, std::size_t size) {
    if (size > data_.size() - pos_) {
      throw std::runtime_error("truncated payload in " + context_ +
                               " (need " + std::to_string(size) +
                               " bytes at offset " + std::to_string(pos_) +
                               ", have " +
                               std::to_string(data_.size() - pos_) + ")");
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  /// Remaining unread bytes as a view (used to hand an embedded blob to a
  /// nested parser).
  [[nodiscard]] std::string_view rest() const noexcept {
    return data_.substr(pos_);
  }

  /// Declares parsing complete; trailing garbage means a malformed file.
  void expect_done() const {
    if (pos_ != data_.size()) {
      throw std::runtime_error(
          "malformed payload in " + context_ + ": " +
          std::to_string(data_.size() - pos_) +
          " unexpected trailing bytes at offset " + std::to_string(pos_));
    }
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace lehdc::util
