#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Mutex and the sink it guards live in one object so the guarded_by
// relation is expressible (function-local statics cannot carry
// LEHDC_GUARDED_BY).
struct SinkState {
  Mutex mutex;
  LogSink sink LEHDC_GUARDED_BY(mutex);  // empty = stderr default
};

SinkState& sink_state() {
  static SinkState state;
  return state;
}

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

LogSink set_log_sink(LogSink sink) {
  SinkState& state = sink_state();
  const MutexLock lock(state.mutex);
  LogSink previous = std::move(state.sink);
  state.sink = std::move(sink);
  return previous;
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) {
    return;
  }
  {
    SinkState& state = sink_state();
    const MutexLock lock(state.mutex);
    if (const LogSink& sink = state.sink; sink) {
      sink(level, message);
      return;
    }
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void log_debug(std::string_view message) { log(LogLevel::kDebug, message); }
void log_info(std::string_view message) { log(LogLevel::kInfo, message); }
void log_warn(std::string_view message) { log(LogLevel::kWarn, message); }
void log_error(std::string_view message) { log(LogLevel::kError, message); }

}  // namespace lehdc::util
