#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace lehdc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

std::mutex& sink_mutex() {
  static std::mutex mutex;
  return mutex;
}

LogSink& sink_slot() {
  static LogSink sink;  // empty = stderr default
  return sink;
}

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

LogSink set_log_sink(LogSink sink) {
  const std::scoped_lock lock(sink_mutex());
  LogSink previous = std::move(sink_slot());
  sink_slot() = std::move(sink);
  return previous;
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) {
    return;
  }
  {
    const std::scoped_lock lock(sink_mutex());
    if (const LogSink& sink = sink_slot(); sink) {
      sink(level, message);
      return;
    }
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void log_debug(std::string_view message) { log(LogLevel::kDebug, message); }
void log_info(std::string_view message) { log(LogLevel::kInfo, message); }
void log_warn(std::string_view message) { log(LogLevel::kWarn, message); }
void log_error(std::string_view message) { log(LogLevel::kError, message); }

}  // namespace lehdc::util
