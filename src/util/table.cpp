#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace lehdc::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  expects(!header_.empty(), "table header must have at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  expects(cells.size() == header_.size(),
          "row width does not match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  const auto print_rule = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string csv_escape(std::string_view cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quoting) {
    return std::string(cell);
  }
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char ch : cell) {
    if (ch == '"') {
      out.push_back('"');
    }
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw std::runtime_error("cannot open CSV file for writing: " + path);
  }
  file_ = file;
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
  }
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  auto* file = static_cast<std::FILE*>(file_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      std::fputc(',', file);
    }
    const std::string escaped = csv_escape(cells[i]);
    std::fwrite(escaped.data(), 1, escaped.size(), file);
  }
  std::fputc('\n', file);
}

}  // namespace lehdc::util
