// Precondition / invariant checking helpers.
//
// Following the C++ Core Guidelines (I.6, E.12) these are plain functions
// rather than macros; they throw typed exceptions so callers can distinguish
// interface misuse (std::invalid_argument) from broken internal state
// (std::logic_error).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace lehdc::util {

/// Error thrown when an internal invariant is violated (a bug in this
/// library rather than in the caller).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[nodiscard]] std::string locate(std::string_view message,
                                 const std::source_location& loc);
}  // namespace detail

/// Validates a function precondition; throws std::invalid_argument on
/// failure. Use for misuse of a public interface by the caller.
inline void expects(bool condition, std::string_view message,
                    const std::source_location loc =
                        std::source_location::current()) {
  if (!condition) {
    throw std::invalid_argument(detail::locate(message, loc));
  }
}

/// Validates an internal invariant or postcondition; throws InvariantError
/// on failure. Use for conditions that should be unreachable.
inline void ensures(bool condition, std::string_view message,
                    const std::source_location loc =
                        std::source_location::current()) {
  if (!condition) {
    throw InvariantError(detail::locate(message, loc));
  }
}

}  // namespace lehdc::util
