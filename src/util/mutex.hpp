// Capability-annotated lock primitives.
//
// libstdc++'s std::mutex / std::lock_guard / std::unique_lock carry no
// thread-safety attributes, so clang's -Wthread-safety analysis cannot see
// which lock a scope holds when code uses them directly. These thin
// wrappers attach the capability annotations (util/thread_annotations.hpp)
// to the exact same primitives: `Mutex` IS a std::mutex the analysis can
// name in LEHDC_GUARDED_BY, `MutexLock`/`UniqueLock` are the RAII scopes
// it tracks, and `CondVar` waits on a `UniqueLock` without confusing the
// analysis (a cv wait releases and reacquires internally — a false
// negative the analysis accepts by design; see DESIGN.md §5k).
//
// The wrapper method *bodies* are excluded from analysis
// (LEHDC_NO_THREAD_SAFETY_ANALYSIS) because they manipulate the
// unannotated std primitives; their *declarations* carry the acquire/
// release contracts the analysis enforces at every call site.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace lehdc::util {

/// std::mutex with thread-safety capability annotations. Same cost, same
/// semantics; lock sites should prefer MutexLock/UniqueLock over calling
/// lock()/unlock() directly.
class LEHDC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LEHDC_ACQUIRE() LEHDC_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() LEHDC_RELEASE() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }
  bool try_lock() LEHDC_TRY_ACQUIRE(true) LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }

  /// The wrapped std::mutex, for interop with std APIs that need one
  /// (e.g. std::condition_variable). Callers are responsible for keeping
  /// the analysis honest — prefer CondVar, which does.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations (reader/writer). Not yet
/// used by the serving stack but provided so new code never has to reach
/// for the unannotated std type.
class LEHDC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LEHDC_ACQUIRE() LEHDC_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() LEHDC_RELEASE() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }
  void lock_shared() LEHDC_ACQUIRE_SHARED() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock_shared();
  }
  void unlock_shared() LEHDC_RELEASE_SHARED() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped lock over one Mutex: the std::lock_guard analogue. Acquires in
/// the constructor, releases in the destructor, no unlock/relock.
class LEHDC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LEHDC_ACQUIRE(mu)
      LEHDC_NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() LEHDC_RELEASE() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped shared (reader) lock over a SharedMutex.
class LEHDC_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) LEHDC_ACQUIRE_SHARED(mu)
      LEHDC_NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() LEHDC_RELEASE() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock_shared();
  }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Relockable scoped lock: the std::unique_lock analogue, for worker loops
/// that drop the lock around task execution and for CondVar waits. Starts
/// locked.
class LEHDC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) LEHDC_ACQUIRE(mu)
      LEHDC_NO_THREAD_SAFETY_ANALYSIS : lock_(mu.native()) {}
  ~UniqueLock() LEHDC_RELEASE() LEHDC_NO_THREAD_SAFETY_ANALYSIS {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() LEHDC_ACQUIRE() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    lock_.lock();
  }
  void unlock() LEHDC_RELEASE() LEHDC_NO_THREAD_SAFETY_ANALYSIS {
    lock_.unlock();
  }

  /// The wrapped std::unique_lock, used by CondVar.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with UniqueLock. Waits release and reacquire
/// the lock internally, which the analysis does not model — guarded state
/// read in a wait *predicate lambda* would be analyzed as an unlocked
/// function, so wait sites must use explicit `while (!cond) cv.wait(lk);`
/// loops where the condition reads happen in the (annotated) caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold the lock; it is held again when wait returns.
  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.native(), d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lehdc::util
