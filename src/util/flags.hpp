// A small typed command-line flag parser for the bench harnesses and
// examples: `--name value`, `--name=value`, and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lehdc::util {

/// Declares flags, parses argv, and answers typed lookups with defaults.
///
/// Usage:
///   FlagParser flags("bench_table1", "Regenerates Table 1.");
///   flags.add_int("dim", 2000, "hypervector dimension");
///   flags.add_flag("full", "run at full paper scale");
///   flags.parse(argc, argv);           // exits(0) after printing --help
///   const int dim = flags.get_int("dim");
class FlagParser {
 public:
  FlagParser(std::string program, std::string description);

  void add_int(std::string_view name, std::int64_t default_value,
               std::string_view help);
  void add_double(std::string_view name, double default_value,
                  std::string_view help);
  void add_string(std::string_view name, std::string_view default_value,
                  std::string_view help);
  /// Boolean flag, false unless present.
  void add_flag(std::string_view name, std::string_view help);

  /// Parses argv. Throws std::invalid_argument on unknown flags or
  /// malformed values. Prints usage and std::exit(0)s on --help.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] const std::string& get_string(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };

  struct Entry {
    Kind kind;
    std::string help;
    std::string default_text;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Entry& declare(std::string_view name, Kind kind, std::string_view help);
  const Entry& lookup(std::string_view name, Kind kind) const;
  void assign(Entry& entry, std::string_view name, std::string_view value);

  std::string program_;
  std::string description_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<std::string> order_;
};

}  // namespace lehdc::util
