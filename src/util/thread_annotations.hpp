// Portable Clang thread-safety-analysis capability macros.
//
// Clang's `-Wthread-safety` analysis proves locking invariants at compile
// time: a field marked LEHDC_GUARDED_BY(mu) may only be touched while `mu`
// is held, a function marked LEHDC_REQUIRES(mu) may only be called with
// `mu` held, and the RAII wrappers in util/mutex.hpp tell the analysis
// exactly which acquisitions each scope performs. On non-clang compilers
// (the container's gcc toolchain included) every macro expands to nothing,
// so annotated code builds everywhere while clang builds — CI's
// thread-safety job runs with -Werror=thread-safety — enforce the
// invariants as hard errors. See DESIGN.md §5k.
//
// The macro set mirrors the attribute names of the upstream analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed so the
// expansion can never collide with another library's shim.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define LEHDC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LEHDC_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a type as a capability ("mutex" in diagnostics). Only the lock
/// wrapper types in util/mutex.hpp should need this.
#define LEHDC_CAPABILITY(x) LEHDC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define LEHDC_SCOPED_CAPABILITY LEHDC_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define LEHDC_GUARDED_BY(x) LEHDC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define LEHDC_PT_GUARDED_BY(x) LEHDC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capabilities to be held on entry (and still held
/// on exit).
#define LEHDC_REQUIRES(...) \
  LEHDC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LEHDC_REQUIRES_SHARED(...) \
  LEHDC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capabilities (not held on entry, held on exit).
#define LEHDC_ACQUIRE(...) \
  LEHDC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LEHDC_ACQUIRE_SHARED(...) \
  LEHDC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capabilities (held on entry, released on exit).
#define LEHDC_RELEASE(...) \
  LEHDC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LEHDC_RELEASE_SHARED(...) \
  LEHDC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire and reports success as `b`.
#define LEHDC_TRY_ACQUIRE(...) \
  LEHDC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (catches self-deadlock at call
/// sites the analysis can prove).
#define LEHDC_EXCLUDES(...) LEHDC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that the capability is held at this point (runtime-checked
/// escape hatch for flows the analysis cannot follow).
#define LEHDC_ASSERT_CAPABILITY(x) \
  LEHDC_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define LEHDC_RETURN_CAPABILITY(x) LEHDC_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function body. Reserved for the lock
/// wrapper implementations themselves (their bodies manipulate the
/// underlying std primitives the analysis cannot see) and for
/// condition-variable internals; never use it to silence a real finding —
/// that is what `lehdc-callgraph: allow(...)` style baselines are for.
#define LEHDC_NO_THREAD_SAFETY_ANALYSIS \
  LEHDC_THREAD_ANNOTATION(no_thread_safety_analysis)
