#include "util/check.hpp"

namespace lehdc::util::detail {

std::string locate(std::string_view message, const std::source_location& loc) {
  std::string out;
  out.reserve(message.size() + 64);
  out.append(loc.file_name());
  out.push_back(':');
  out.append(std::to_string(loc.line()));
  out.append(": ");
  out.append(message);
  return out;
}

}  // namespace lehdc::util::detail
