// Streaming and batch summary statistics.
//
// Used by the experiment harness to report "mean ± std" rows exactly as
// Table 1 of the paper does, and by tests to validate statistical
// properties of hypervector generation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace lehdc::util {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double value) noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Immutable summary of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Formats as "mean ± std" with the given precision, mirroring the
  /// paper's Table 1 cell format.
  [[nodiscard]] std::string to_string(int precision = 2) const;
};

/// Summarizes a batch of values.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Mean of a batch; 0 for an empty batch.
[[nodiscard]] double mean_of(std::span<const double> values) noexcept;

/// Pearson correlation coefficient; requires equal-length, non-empty spans.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

}  // namespace lehdc::util
