#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace lehdc::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return std::rotl(x, k);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  for (auto& word : state_) {
    word = mixer();
  }
  // Xoshiro's all-zero state is a fixed point; SplitMix64 cannot emit four
  // consecutive zeros, but guard anyway for defense in depth.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = next();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float Rng::next_float() noexcept {
  return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

bool Rng::next_bool(double p) noexcept { return next_double() < p; }

double Rng::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = next_double();
  // Avoid log(0).
  while (u1 <= 0.0) {
    u1 = next_double();
  }
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::next_range(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::derive_seed(std::uint64_t stream_id) noexcept {
  SplitMix64 mixer(next() ^ (stream_id * 0xd1342543de82ef95ULL));
  return mixer();
}

}  // namespace lehdc::util
