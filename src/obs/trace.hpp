// Lightweight trace spans exportable as Chrome trace_event JSON
// (chrome://tracing, Perfetto, speedscope all load it).
//
// The buffer is a fixed-capacity array filled through an atomic cursor:
// recording a span is two clock reads plus one fetch_add and a handful of
// stores — no locks, no allocation. When the buffer fills, further spans
// are counted as dropped rather than blocking the hot path. Span names
// must be string literals (or otherwise outlive the buffer); only the
// pointer is stored.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace lehdc::obs {

/// Tracing switch, independent of the metrics switch (tracing costs more
/// per event, so it is opt-in separately). Off by default.
[[nodiscard]] bool trace_enabled() noexcept;
/// Enabling allocates the buffer on first use. Do not resize mid-trace.
void set_trace_enabled(bool on);

struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  double ts_us = 0.0;   // start, microseconds since process trace epoch
  double dur_us = 0.0;  // duration, microseconds
  std::uint32_t tid = 0;
};

class TraceBuffer {
 public:
  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  [[nodiscard]] static TraceBuffer& global();

  /// Preallocates space for `capacity` events, discarding any recorded
  /// ones. Must not race with recording.
  void reserve(std::size_t capacity);

  /// Lock-free append; drops (and counts) the event when full.
  void append(const TraceEvent& event) noexcept;

  /// Recorded events in record order. Not safe against concurrent appends.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return storage_.size();
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Empties the buffer (keeps capacity). Must not race with recording.
  void reset() noexcept;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  std::vector<TraceEvent> storage_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Small dense id for the calling thread (assigned on first use),
/// used as the Chrome trace "tid".
[[nodiscard]] std::uint32_t trace_thread_id() noexcept;

/// RAII complete-event span ("ph":"X"). Inert when tracing is disabled at
/// construction. `name` and `category` must be string literals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     const char* category = "lehdc") noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_;  // nullptr when inert
  const char* category_;
  double start_us_;
};

}  // namespace lehdc::obs
