// A minimal JSON document model with a strict parser and a deterministic
// writer — just enough for metrics snapshots, Chrome traces and their
// schema validation (no external dependency allowed in this repo).
//
// Objects preserve insertion order so dumps are deterministic and diffs of
// two snapshots line up. Numbers are doubles; integral values round-trip
// losslessly up to 2^53 (metric counters far beyond that are not a
// realistic concern for run reports).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace lehdc::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kNumber), number_(value) {}
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Json(T value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Json(std::string_view value) : kind_(Kind::kString), string_(value) {}

  [[nodiscard]] static Json array(Array items = {});
  [[nodiscard]] static Json object(Object members = {});

  /// Strict parse of a complete document; throws std::runtime_error with
  /// a byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member lookup; returns nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Like find, but throws std::runtime_error when the key is missing.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Appends/overwrites an object member (keeps first-set order).
  void set(std::string key, Json value);
  /// Appends an array element.
  void push_back(Json value);

  /// Serializes the document. indent == 0 emits one compact line;
  /// indent > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  [[nodiscard]] bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace lehdc::obs
