#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace lehdc::obs {

namespace {

std::atomic<bool> g_enabled{false};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Atomic double accumulation via CAS on the bit pattern (std::atomic
/// fetch_add on doubles is C++20 but this keeps us independent of the
/// library's lowering and of -ffast-math surprises).
void atomic_add(std::atomic<std::uint64_t>& bits, double delta) noexcept {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(expected) + delta;
    if (bits.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(updated),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_min(std::atomic<std::uint64_t>& bits, double v) noexcept {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) > v) {
    if (bits.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_max(std::atomic<std::uint64_t>& bits, double v) noexcept {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) < v) {
    if (bits.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

// ~2.5 steps per decade from 1 µs to 60 s; wall times outside that land in
// the first bucket / overflow bucket but keep exact count/sum/min/max.
constexpr std::array<double, 25> kTimeBuckets = {
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
    1.0,  2.5,    5.0,  10.0, 20.0,   40.0, 60.0};

// Powers of two 1..4096: batch sizes, queue depths and similar small
// discrete counts fall on exact bucket edges.
constexpr std::array<double, 13> kCountBuckets = {
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0, 4096.0};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Gauge::to_bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

double Gauge::from_bits(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

std::span<const double> default_time_buckets() noexcept {
  return {kTimeBuckets.data(), kTimeBuckets.size()};
}

std::span<const double> default_count_buckets() noexcept {
  return {kCountBuckets.data(), kCountBuckets.size()};
}

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_(std::move(name)),
      bounds_(bounds.begin(), bounds.end()),
      min_bits_(std::bit_cast<std::uint64_t>(kInf)),
      max_bits_(std::bit_cast<std::uint64_t>(-kInf)) {
  if (bounds_.empty()) {
    const auto defaults = default_time_buckets();
    bounds_.assign(defaults.begin(), defaults.end());
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("histogram bounds must be strictly ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) {
    return;
  }
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_bits_, v);
  atomic_min(min_bits_, v);
  atomic_max(max_bits_, v);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<std::uint64_t>(kInf),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(-kInf),
                  std::memory_order_relaxed);
}

double Histogram::quantile(const std::vector<std::uint64_t>& counts,
                           std::uint64_t total, double q,
                           double observed_min, double observed_max) const {
  if (total == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (static_cast<double>(cumulative + counts[i]) < target) {
      cumulative += counts[i];
      continue;
    }
    // Interpolate within bucket i. Edges are clamped to the observed
    // min/max so estimates never leave the data's range (and the overflow
    // bucket has a finite upper edge).
    const double lo =
        std::max(observed_min, i == 0 ? observed_min : bounds_[i - 1]);
    const double hi =
        std::min(observed_max, i < bounds_.size() ? bounds_[i] : observed_max);
    if (counts[i] == 0 || hi <= lo) {
      return std::clamp(lo, observed_min, observed_max);
    }
    const double within =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
  }
  return observed_max;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += counts[i];
  }
  snap.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  double raw_min =
      std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  double raw_max =
      std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  // A record is four independent relaxed updates (bucket, count, sum,
  // min/max); a snapshot straddling one can see the bucket increment
  // before the min/max publication and read the ±infinity sentinels. Fall
  // back to the edges of the populated buckets so the exported min/max —
  // and the quantiles clamped to them — stay finite.
  if (snap.count > 0 && !(raw_min <= raw_max)) {
    std::size_t first = 0;
    while (first < counts.size() && counts[first] == 0) {
      ++first;
    }
    std::size_t last = counts.size();
    while (last > 0 && counts[last - 1] == 0) {
      --last;
    }
    raw_min = first == 0 ? 0.0 : bounds_[first - 1];
    raw_max = last <= bounds_.size() && last > 0 ? bounds_[last - 1]
                                                 : bounds_.back();
  }
  snap.min = snap.count > 0 ? raw_min : 0.0;
  snap.max = snap.count > 0 ? raw_max : 0.0;
  snap.p50 = quantile(counts, snap.count, 0.50, snap.min, snap.max);
  snap.p95 = quantile(counts, snap.count, 0.95, snap.min, snap.max);
  snap.p99 = quantile(counts, snap.count, 0.99, snap.min, snap.max);
  snap.buckets.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    snap.buckets.push_back(
        {i < bounds_.size() ? bounds_[i] : kInf, counts[i]});
  }
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    if (it->second.kind != Kind::kCounter) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another kind");
    }
    return *counters_[it->second.index];
  }
  counters_.push_back(std::unique_ptr<Counter>(new Counter(std::string(name))));
  by_name_.emplace(std::string(name),
                   Entry{Kind::kCounter, counters_.size() - 1});
  return *counters_.back();
}

Gauge& Registry::gauge(std::string_view name) {
  const util::MutexLock lock(mutex_);
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    if (it->second.kind != Kind::kGauge) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another kind");
    }
    return *gauges_[it->second.index];
  }
  gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(std::string(name))));
  by_name_.emplace(std::string(name), Entry{Kind::kGauge, gauges_.size() - 1});
  return *gauges_.back();
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  const util::MutexLock lock(mutex_);
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    if (it->second.kind != Kind::kHistogram) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another kind");
    }
    return *histograms_[it->second.index];
  }
  histograms_.push_back(
      std::unique_ptr<Histogram>(new Histogram(std::string(name), bounds)));
  by_name_.emplace(std::string(name),
                   Entry{Kind::kHistogram, histograms_.size() - 1});
  return *histograms_.back();
}

void Registry::visit_counters(
    const std::function<void(const Counter&)>& fn) const {
  const util::MutexLock lock(mutex_);
  for (const auto& counter : counters_) {
    fn(*counter);
  }
}

void Registry::visit_gauges(const std::function<void(const Gauge&)>& fn) const {
  const util::MutexLock lock(mutex_);
  for (const auto& gauge : gauges_) {
    fn(*gauge);
  }
}

void Registry::visit_histograms(
    const std::function<void(const Histogram&)>& fn) const {
  const util::MutexLock lock(mutex_);
  for (const auto& histogram : histograms_) {
    fn(*histogram);
  }
}

void Registry::reset() {
  const util::MutexLock lock(mutex_);
  for (const auto& counter : counters_) {
    counter->reset();
  }
  for (const auto& gauge : gauges_) {
    gauge->reset();
  }
  for (const auto& histogram : histograms_) {
    histogram->reset();
  }
}

}  // namespace lehdc::obs
