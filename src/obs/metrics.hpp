// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms (with p50/p95/p99 estimation), the core of the observability
// subsystem.
//
// Design constraints (see DESIGN.md §5d):
//  - Allocation-free on the hot path. Instrumentation sites resolve their
//    metric once (registration takes the registry mutex) and then touch
//    only lock-free atomics. Handles returned by the registry are stable
//    for the life of the process.
//  - No-op when disabled. Collection is off by default; every record path
//    is gated on one relaxed atomic load, so instrumented binaries pay a
//    single predictable branch when metrics are off. BatchScorer
//    throughput must be unaffected (bench/inference_throughput measures
//    the overhead with metrics on and off).
//  - Deterministic export. Metrics serialize in registration order, so
//    snapshots of identical runs diff cleanly.
//
// Naming scheme: `<subsystem>.<operation>[_<unit>]`, lowercase
// [a-z0-9_.] only — e.g. `score.chunk_seconds`, `train.epochs`,
// `io.pipeline_save_seconds`, `bench.inference.batch_all_threads.b1024_qps`.
// Every name recorded from src/ must be registered in the
// lehdc.metrics.v1 schema (src/obs/schema.cpp); tools/lehdc_lint.py
// enforces this at ctest time.
//
// Memory ordering — the intended contract, exercised by
// tests/test_concurrency_stress.cpp under `scripts/check.sh tsan`:
//
//  - Hot-path loads and stores are all std::memory_order_relaxed. Metrics
//    are monotonic event counts and last-write-wins samples; no reader
//    derives control flow from one metric having observed another
//    metric's write, so record sites and snapshot readers need no
//    acquire/release pairing — only per-word atomicity.
//  - Registration synchronizes through the registry mutex: a thread that
//    obtains a handle from Registry::counter()/gauge()/histogram() is
//    ordered after the metric's construction (including a histogram's
//    bucket array), so handles may be cached once and then used lock-free
//    from any thread for the life of the process.
//  - Snapshots are racy-by-design but torn-free. Every word is read with
//    a single atomic load, so a snapshot taken during a storm of records
//    observes some interleaving of whole updates, never a torn value. A
//    histogram record is four independent relaxed updates (bucket, count,
//    sum, min/max); a snapshot straddling one may see the bucket
//    increment before the min/max publication — Histogram::snapshot()
//    detects that window and substitutes bucket edges so exported
//    min/max/quantiles stay finite.
//  - Registry::reset() zeroes each word independently while holding the
//    registry mutex; records running concurrently land before or after
//    each individual zero. Callers that need an exact zero (tests,
//    benches between phases) quiesce their recording threads first.
//
// The mutex-guarded registration structures carry clang thread-safety
// annotations (LEHDC_GUARDED_BY; DESIGN.md §5k), so the "cold path locks,
// hot path is lock-free atomics" split above is compiler-enforced, not
// just documented: any new Registry code touching the maps without the
// mutex fails the -Werror=thread-safety build.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace lehdc::obs {

/// Global metrics switch. Off by default: instrumented code paths cost one
/// relaxed load. Enabled by the CLI (--metrics-out / --trace-out), the
/// LEHDC_METRICS environment variable, benches and tests.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count (queries scored, epochs run,
/// checkpoints written, ...).
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double (a measured rate, a final accuracy, a config
/// dimension worth exporting alongside the run).
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (enabled()) {
      bits_.store(to_bits(v), std::memory_order_relaxed);
    }
  }

  [[nodiscard]] double value() const noexcept {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept { bits_.store(to_bits(0.0), std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  static std::uint64_t to_bits(double v) noexcept;
  static double from_bits(std::uint64_t bits) noexcept;

  std::string name_;
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram. Bucket bounds are upper edges in ascending
/// order; one implicit overflow bucket catches everything above the last
/// bound. Records are lock-free atomic increments; quantiles (p50/p95/p99)
/// are estimated at snapshot time by linear interpolation inside the
/// bucket that crosses the target rank — the standard fixed-bucket
/// estimator, exact to bucket resolution.
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  struct Bucket {
    double upper_bound;  // +infinity for the overflow bucket
    std::uint64_t count;
  };

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::vector<Bucket> buckets;
  };

  /// Consistent-enough snapshot: counts are read once each; concurrent
  /// observes may straddle the read but never corrupt it. When a
  /// straddling record has bumped a bucket but not yet published min/max,
  /// the snapshot falls back to the populated buckets' edges, so min, max
  /// and the quantiles are always finite whenever count > 0.
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept;

 private:
  friend class Registry;
  Histogram(std::string name, std::span<const double> bounds);

  [[nodiscard]] double quantile(
      const std::vector<std::uint64_t>& counts, std::uint64_t total,
      double q, double observed_min, double observed_max) const;

  std::string name_;
  std::vector<double> bounds_;  // ascending upper edges
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 cells
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // CAS-accumulated double
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
};

/// Default histogram bounds for wall-time observations in seconds:
/// roughly logarithmic from 1 µs to 60 s (26 buckets incl. overflow).
[[nodiscard]] std::span<const double> default_time_buckets() noexcept;

/// Histogram bounds for small discrete counts (batch sizes, queue depths):
/// powers of two from 1 to 4096 (14 buckets incl. overflow).
[[nodiscard]] std::span<const double> default_count_buckets() noexcept;

/// Owns every metric. Lookup-or-create takes a mutex (cold path, done once
/// per instrumentation site); returned references stay valid until
/// process exit. Re-requesting a name returns the same object, so
/// independent call sites share one metric. A name may only be used for
/// one metric kind; mixing kinds throws std::invalid_argument.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name)
      LEHDC_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(std::string_view name) LEHDC_EXCLUDES(mutex_);
  /// `bounds` applies only on first creation; empty selects
  /// default_time_buckets().
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> bounds = {})
      LEHDC_EXCLUDES(mutex_);

  /// Visits metrics in registration order (snapshot/export path).
  void visit_counters(const std::function<void(const Counter&)>& fn) const
      LEHDC_EXCLUDES(mutex_);
  void visit_gauges(const std::function<void(const Gauge&)>& fn) const
      LEHDC_EXCLUDES(mutex_);
  void visit_histograms(const std::function<void(const Histogram&)>& fn) const
      LEHDC_EXCLUDES(mutex_);

  /// Zeroes every metric (keeps registrations). Benches use this between
  /// phases; tests use it for isolation.
  void reset() LEHDC_EXCLUDES(mutex_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the matching vector below
  };

  mutable util::Mutex mutex_;
  std::map<std::string, Entry, std::less<>> by_name_ LEHDC_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Counter>> counters_ LEHDC_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Gauge>> gauges_ LEHDC_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Histogram>> histograms_
      LEHDC_GUARDED_BY(mutex_);
};

}  // namespace lehdc::obs
