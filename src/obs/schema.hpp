// Canonical metric-name schema for lehdc.metrics.v1.
//
// Every metric an instrumentation site registers in src/ must be declared
// here (exact name) or fall under a registered dynamic prefix (bench.*
// for benchmark-composed names, test.* for test registries). Two consumers
// enforce this:
//   - tools/metrics_schema_check rejects snapshot documents containing
//     names outside the schema (exit non-zero, not a warning), and
//   - tools/lehdc_lint.py cross-checks every metric-name string literal in
//     src/ against the table in schema.cpp (it parses the block between
//     the LINT-METRICS markers), so an unregistered name fails the build's
//     lint gate before it can ever reach a snapshot.
// Adding a metric therefore means adding one line to schema.cpp — which is
// exactly the property the pair of checkers exists to force.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace lehdc::obs {

/// Exact metric names in the lehdc.metrics.v1 schema, sorted.
[[nodiscard]] std::span<const std::string_view> known_metric_names() noexcept;

/// Dynamic-name prefixes the schema reserves (e.g. "bench.", "test.").
[[nodiscard]] std::span<const std::string_view>
known_metric_prefixes() noexcept;

/// True when `name` is an exact schema name or carries a reserved prefix.
[[nodiscard]] bool is_known_metric(std::string_view name) noexcept;

/// Names present in a parsed metrics snapshot (any section) that the
/// schema does not know. Empty for a fully registered document. The
/// document is expected to already be shape-valid (validate_metrics_json);
/// non-conforming nodes are ignored here rather than reported twice.
[[nodiscard]] std::vector<std::string> unknown_metric_names(const Json& root);

}  // namespace lehdc::obs
