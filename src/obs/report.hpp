// Structured run reports: the flat metrics JSON snapshot (one schema shared
// by the CLI, the benches and CI artifact checks), the Chrome trace export,
// schema validation, and LEHDC_METRICS environment wiring.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lehdc::obs {

/// Version tag stamped into (and required from) every metrics snapshot.
[[nodiscard]] const char* metrics_schema_version() noexcept;

/// Serializes the registry: `{"schema": "lehdc.metrics.v1", "context": {…},
/// "counters": […], "gauges": […], "histograms": […]}`. `context` carries
/// caller-supplied run identification (bench name, dim, kernel, …) and may
/// be an empty object. Histogram min/max/sum/quantiles are numbers; the
/// overflow bucket's upper bound serializes as the string "+Inf".
[[nodiscard]] Json metrics_snapshot(
    const Registry& registry = Registry::global(), Json context = Json::object());

/// Writes the snapshot to `path` ("-" streams to stdout, which then carries
/// nothing but the JSON document). Throws std::runtime_error on IO failure.
void write_metrics_json(const std::string& path,
                        const Registry& registry = Registry::global(),
                        Json context = Json::object());

/// Validates a parsed metrics snapshot against the v1 schema. Returns an
/// empty string when valid, else a human-readable description of the first
/// violation. Checked: schema tag, section shapes, metric name charset,
/// name uniqueness, histogram bucket-count consistency and quantile
/// ordering.
[[nodiscard]] std::string validate_metrics_json(const Json& root);

/// Serializes the trace buffer as a Chrome trace_event document
/// (`{"traceEvents": [...]}`, "ph":"X" complete events).
[[nodiscard]] Json trace_snapshot(
    const TraceBuffer& buffer = TraceBuffer::global());

/// Writes the trace to `path` ("-" streams to stdout).
void write_trace_json(const std::string& path,
                      const TraceBuffer& buffer = TraceBuffer::global());

/// Reads LEHDC_METRICS: unset/empty/"0" leaves metrics alone; any other
/// value enables collection. A value that is not "1" is additionally
/// treated as a snapshot output path and returned so the caller can write
/// it on exit ("" when no path was requested).
std::string init_from_env();

}  // namespace lehdc::obs
