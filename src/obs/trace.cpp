#include "obs/trace.hpp"

#include <chrono>

namespace lehdc::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

using Clock = std::chrono::steady_clock;

/// One fixed origin for all trace timestamps (and timer.hpp's
/// monotonic_seconds), captured at first use.
Clock::time_point process_epoch() noexcept {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

double now_us() noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   process_epoch())
      .count();
}

std::atomic<std::uint32_t> g_next_thread_id{1};

}  // namespace

double monotonic_seconds() noexcept { return now_us() * 1e-6; }

std::uint32_t trace_thread_id() noexcept {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  if (on) {
    TraceBuffer& buffer = TraceBuffer::global();
    if (buffer.capacity() == 0) {
      buffer.reserve(TraceBuffer::kDefaultCapacity);
    }
    (void)process_epoch();
  }
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::reserve(std::size_t capacity) {
  storage_.assign(capacity, TraceEvent{});
  cursor_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceBuffer::append(const TraceEvent& event) noexcept {
  const std::size_t slot = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= storage_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  storage_[slot] = event;
}

std::size_t TraceBuffer::size() const noexcept {
  const std::size_t cursor = cursor_.load(std::memory_order_relaxed);
  return cursor < storage_.size() ? cursor : storage_.size();
}

std::vector<TraceEvent> TraceBuffer::events() const {
  return {storage_.begin(),
          storage_.begin() + static_cast<std::ptrdiff_t>(size())};
}

void TraceBuffer::reset() noexcept {
  cursor_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name, const char* category) noexcept
    : name_(trace_enabled() ? name : nullptr),
      category_(category),
      start_us_(name_ != nullptr ? now_us() : 0.0) {}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) {
    return;
  }
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.ts_us = start_us_;
  event.dur_us = now_us() - start_us_;
  event.tid = trace_thread_id();
  TraceBuffer::global().append(event);
}

}  // namespace lehdc::obs
