// RAII scoped timers feeding wall-time observations into histograms.
//
// A ScopedTimer is allocation-free and, when metrics are disabled, costs a
// single relaxed load — the clock is never read. This is the only sanctioned
// way to time hot-path blocks (scoring chunks, encode blocks): it guarantees
// the disabled path is branch-plus-nothing.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace lehdc::obs {

/// Monotonic seconds since an arbitrary fixed process epoch (shared with
/// the trace clock, so timer observations and trace spans line up).
[[nodiscard]] double monotonic_seconds() noexcept;

/// Records the scope's wall time into a histogram on destruction. When
/// metrics are disabled at construction, the timer is inert (no clock
/// reads, nothing recorded at destruction even if metrics get enabled
/// mid-scope).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(enabled() ? &histogram : nullptr),
        start_(histogram_ != nullptr ? Clock::now() : Clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records now instead of at scope exit; further stops are no-ops.
  /// Returns the elapsed seconds (0 when inert).
  double stop() noexcept {
    if (histogram_ == nullptr) {
      return 0.0;
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start_).count();
    histogram_->observe(elapsed);
    histogram_ = nullptr;
    return elapsed;
  }

  [[nodiscard]] bool active() const noexcept { return histogram_ != nullptr; }

 private:
  using Clock = std::chrono::steady_clock;

  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace lehdc::obs
