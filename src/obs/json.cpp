#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lehdc::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Json(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Json(nullptr);
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return object;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return array;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences — good enough for
          // metric names, which are ASCII by convention).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no infinity/NaN; snapshots encode them as strings upstream,
    // so reaching this means a plain number slipped through — emit null.
    out += "null";
    return;
  }
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

Json Json::array(Array items) {
  Json json;
  json.kind_ = Kind::kArray;
  json.array_ = std::move(items);
  return json;
}

Json Json::object(Object members) {
  Json json;
  json.kind_ = Kind::kObject;
  json.object_ = std::move(members);
  return json;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) {
    throw std::runtime_error("json value is not a bool");
  }
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw std::runtime_error("json value is not a number");
  }
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::runtime_error("json value is not a string");
  }
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error("json value is not an array");
  }
  return array_;
}

Json::Array& Json::as_array() {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error("json value is not an array");
  }
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error("json value is not an object");
  }
  return object_;
}

Json::Object& Json::as_object() {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error("json value is not an object");
  }
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json object has no member '" +
                             std::string(key) + "'");
  }
  return *value;
}

void Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kObject;
  }
  if (kind_ != Kind::kObject) {
    throw std::runtime_error("set() on a non-object json value");
  }
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kArray;
  }
  if (kind_ != Kind::kArray) {
    throw std::runtime_error("push_back() on a non-array json value");
  }
  array_.push_back(std::move(value));
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * level), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      append_number(out, number_);
      return;
    case Kind::kString:
      append_escaped(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (indent > 0) {
          out.push_back(' ');
        }
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) {
    return false;
  }
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kObject:
      return object_ == other.object_;
  }
  return false;
}

}  // namespace lehdc::obs
