#include "obs/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <stdexcept>

namespace lehdc::obs {

namespace {

constexpr const char* kSchemaVersion = "lehdc.metrics.v1";

bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

void write_document(const std::string& path, const Json& document) {
  const std::string text = document.dump(2) + "\n";
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !close_ok) {
    throw std::runtime_error("short write to '" + path + "'");
  }
}

Json bucket_bound(double upper) {
  if (std::isinf(upper)) {
    return Json("+Inf");
  }
  return Json(upper);
}

}  // namespace

const char* metrics_schema_version() noexcept { return kSchemaVersion; }

Json metrics_snapshot(const Registry& registry, Json context) {
  Json root = Json::object();
  root.set("schema", Json(kSchemaVersion));
  if (!context.is_object()) {
    context = Json::object();
  }
  root.set("context", std::move(context));

  Json counters = Json::array();
  registry.visit_counters([&](const Counter& counter) {
    Json item = Json::object();
    item.set("name", Json(counter.name()));
    item.set("value", Json(counter.value()));
    counters.push_back(std::move(item));
  });
  root.set("counters", std::move(counters));

  Json gauges = Json::array();
  registry.visit_gauges([&](const Gauge& gauge) {
    Json item = Json::object();
    item.set("name", Json(gauge.name()));
    item.set("value", Json(gauge.value()));
    gauges.push_back(std::move(item));
  });
  root.set("gauges", std::move(gauges));

  Json histograms = Json::array();
  registry.visit_histograms([&](const Histogram& histogram) {
    const Histogram::Snapshot snap = histogram.snapshot();
    Json item = Json::object();
    item.set("name", Json(histogram.name()));
    item.set("count", Json(snap.count));
    item.set("sum", Json(snap.sum));
    item.set("min", Json(snap.min));
    item.set("max", Json(snap.max));
    item.set("p50", Json(snap.p50));
    item.set("p95", Json(snap.p95));
    item.set("p99", Json(snap.p99));
    Json buckets = Json::array();
    for (const Histogram::Bucket& bucket : snap.buckets) {
      Json cell = Json::object();
      cell.set("le", bucket_bound(bucket.upper_bound));
      cell.set("count", Json(bucket.count));
      buckets.push_back(std::move(cell));
    }
    item.set("buckets", std::move(buckets));
    histograms.push_back(std::move(item));
  });
  root.set("histograms", std::move(histograms));
  return root;
}

void write_metrics_json(const std::string& path, const Registry& registry,
                        Json context) {
  write_document(path, metrics_snapshot(registry, std::move(context)));
}

std::string validate_metrics_json(const Json& root) {
  if (!root.is_object()) {
    return "document root is not an object";
  }
  const Json* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return "missing string member 'schema'";
  }
  if (schema->as_string() != kSchemaVersion) {
    return "unknown schema '" + schema->as_string() + "' (expected " +
           kSchemaVersion + ")";
  }
  const Json* context = root.find("context");
  if (context != nullptr && !context->is_object()) {
    return "'context' is present but not an object";
  }

  std::set<std::string> seen;
  const auto check_name = [&seen](const Json& item,
                                  const char* section) -> std::string {
    const Json* name = item.find("name");
    if (name == nullptr || !name->is_string()) {
      return std::string(section) + " entry missing string 'name'";
    }
    if (!valid_metric_name(name->as_string())) {
      return std::string(section) + " name '" + name->as_string() +
             "' violates [a-z0-9_.]+";
    }
    if (!seen.insert(name->as_string()).second) {
      return "duplicate metric name '" + name->as_string() + "'";
    }
    return {};
  };

  for (const char* section : {"counters", "gauges"}) {
    const Json* list = root.find(section);
    if (list == nullptr || !list->is_array()) {
      return std::string("missing array member '") + section + "'";
    }
    for (const Json& item : list->as_array()) {
      if (!item.is_object()) {
        return std::string(section) + " entry is not an object";
      }
      if (std::string err = check_name(item, section); !err.empty()) {
        return err;
      }
      const Json* value = item.find("value");
      if (value == nullptr || !value->is_number()) {
        return std::string(section) + " entry '" +
               item.at("name").as_string() + "' missing numeric 'value'";
      }
    }
  }

  const Json* histograms = root.find("histograms");
  if (histograms == nullptr || !histograms->is_array()) {
    return "missing array member 'histograms'";
  }
  for (const Json& item : histograms->as_array()) {
    if (!item.is_object()) {
      return "histograms entry is not an object";
    }
    if (std::string err = check_name(item, "histograms"); !err.empty()) {
      return err;
    }
    const std::string& name = item.at("name").as_string();
    for (const char* field : {"count", "sum", "min", "max", "p50", "p95",
                              "p99"}) {
      const Json* value = item.find(field);
      if (value == nullptr || !value->is_number()) {
        return "histogram '" + name + "' missing numeric '" + field + "'";
      }
    }
    const Json* buckets = item.find("buckets");
    if (buckets == nullptr || !buckets->is_array() ||
        buckets->as_array().empty()) {
      return "histogram '" + name + "' missing non-empty 'buckets'";
    }
    double previous_bound = -std::numeric_limits<double>::infinity();
    double bucket_total = 0.0;
    const auto& cells = buckets->as_array();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Json& cell = cells[i];
      if (!cell.is_object()) {
        return "histogram '" + name + "' bucket is not an object";
      }
      const Json* le = cell.find("le");
      const Json* count = cell.find("count");
      if (le == nullptr || count == nullptr || !count->is_number()) {
        return "histogram '" + name + "' bucket missing 'le'/'count'";
      }
      const bool last = i + 1 == cells.size();
      if (last) {
        if (!le->is_string() || le->as_string() != "+Inf") {
          return "histogram '" + name + "' last bucket 'le' must be \"+Inf\"";
        }
      } else {
        if (!le->is_number()) {
          return "histogram '" + name + "' non-final bucket 'le' must be a number";
        }
        if (le->as_number() <= previous_bound) {
          return "histogram '" + name + "' bucket bounds not ascending";
        }
        previous_bound = le->as_number();
      }
      if (count->as_number() < 0.0) {
        return "histogram '" + name + "' bucket count is negative";
      }
      bucket_total += count->as_number();
    }
    if (bucket_total != item.at("count").as_number()) {
      return "histogram '" + name + "' bucket counts do not sum to 'count'";
    }
    const double p50 = item.at("p50").as_number();
    const double p95 = item.at("p95").as_number();
    const double p99 = item.at("p99").as_number();
    if (!(p50 <= p95 && p95 <= p99)) {
      return "histogram '" + name + "' quantiles not ordered (p50<=p95<=p99)";
    }
  }
  return {};
}

Json trace_snapshot(const TraceBuffer& buffer) {
  Json events = Json::array();
  for (const TraceEvent& event : buffer.events()) {
    Json item = Json::object();
    item.set("name", Json(event.name != nullptr ? event.name : ""));
    item.set("cat", Json(event.category != nullptr ? event.category : ""));
    item.set("ph", Json("X"));
    item.set("ts", Json(event.ts_us));
    item.set("dur", Json(event.dur_us));
    item.set("pid", Json(1));
    item.set("tid", Json(static_cast<std::uint64_t>(event.tid)));
    events.push_back(std::move(item));
  }
  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", Json("ms"));
  if (buffer.dropped() != 0) {
    Json meta = Json::object();
    meta.set("droppedEvents", Json(buffer.dropped()));
    root.set("metadata", std::move(meta));
  }
  return root;
}

void write_trace_json(const std::string& path, const TraceBuffer& buffer) {
  write_document(path, trace_snapshot(buffer));
}

std::string init_from_env() {
  const char* raw = std::getenv("LEHDC_METRICS");
  if (raw == nullptr || raw[0] == '\0') {
    return {};
  }
  const std::string value(raw);
  if (value == "0") {
    return {};
  }
  set_enabled(true);
  if (value == "1") {
    return {};
  }
  return value;
}

}  // namespace lehdc::obs
