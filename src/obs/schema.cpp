#include "obs/schema.hpp"

#include <algorithm>
#include <array>

namespace lehdc::obs {

namespace {

// The lehdc.metrics.v1 name table. Keep sorted; one name per line.
// tools/lehdc_lint.py parses the block between the LINT-METRICS markers —
// do not reformat entries onto shared lines.
constexpr std::array kKnownNames = {
    // LINT-METRICS-BEGIN
    std::string_view{"encode.block_seconds"},
    std::string_view{"encode.bytes_per_sample"},
    std::string_view{"encode.materialized_samples"},
    std::string_view{"encode.rematerialized_samples"},
    std::string_view{"encode.samples"},
    std::string_view{"io.model_load_seconds"},
    std::string_view{"io.model_save_seconds"},
    std::string_view{"io.pipeline_load_seconds"},
    std::string_view{"io.pipeline_save_seconds"},
    std::string_view{"pipeline.batch_queries"},
    std::string_view{"score.chunk_seconds"},
    std::string_view{"score.queries"},
    std::string_view{"serve.batch_size"},
    std::string_view{"serve.batches"},
    std::string_view{"serve.conn.accepted"},
    std::string_view{"serve.conn.active"},
    std::string_view{"serve.conn.bytes_read"},
    std::string_view{"serve.conn.bytes_written"},
    std::string_view{"serve.conn.closed"},
    std::string_view{"serve.conn.read_stalls"},
    std::string_view{"serve.conn.write_stalls"},
    std::string_view{"serve.dispatch_seconds"},
    std::string_view{"serve.e2e_latency_seconds"},
    std::string_view{"serve.model_loads"},
    std::string_view{"serve.online.drift_alarm"},
    std::string_view{"serve.online.feedback"},
    std::string_view{"serve.online.flips"},
    std::string_view{"serve.online.queue_depth"},
    std::string_view{"serve.online.refinements"},
    std::string_view{"serve.online.rejected"},
    std::string_view{"serve.online.shadow_accuracy"},
    std::string_view{"serve.online.updates"},
    std::string_view{"serve.queue_depth"},
    std::string_view{"serve.rejected_bad_request"},
    std::string_view{"serve.rejected_deadline"},
    std::string_view{"serve.rejected_model_not_found"},
    std::string_view{"serve.rejected_queue_full"},
    std::string_view{"serve.rejected_shutdown"},
    std::string_view{"serve.requests"},
    std::string_view{"serve.responses"},
    std::string_view{"serve.tenant.queue_depth"},
    std::string_view{"serve.tenant.rejected"},
    std::string_view{"serve.tenant.requests"},
    std::string_view{"serve.tenant.responses"},
    std::string_view{"train.lehdc.checkpoint_seconds"},
    std::string_view{"train.lehdc.checkpoints"},
    std::string_view{"train.lehdc.epoch_seconds"},
    std::string_view{"train.lehdc.epochs"},
    std::string_view{"train.lehdc.loss"},
    std::string_view{"train.lehdc.test_accuracy"},
    std::string_view{"train.lehdc.train_accuracy"},
    std::string_view{"train.retrain.iterations"},
    std::string_view{"train.retrain.updates"},
    // LINT-METRICS-END
};

// Benchmarks compose names from profile/strategy/batch parameters
// (bench.inference.batch_all_threads.b1024_qps, bench.table1.mnist.lehdc_mean,
// ...); tests register throwaway names under test.*; the chaos harness
// (src/chaos) composes per-scenario names under chaos.*; the server
// appends a validated tenant id to the serve.tenant.* base names listed
// above. These namespaces are reserved wholesale rather than enumerated.
constexpr std::array kKnownPrefixes = {
    std::string_view{"bench."},
    std::string_view{"chaos."},
    std::string_view{"serve.tenant."},
    std::string_view{"test."},
};

static_assert(std::is_sorted(kKnownNames.begin(), kKnownNames.end()),
              "keep the schema name table sorted");

void collect_unknown(const Json& root, const char* section,
                     std::vector<std::string>& unknown) {
  const Json* list = root.find(section);
  if (list == nullptr || !list->is_array()) {
    return;
  }
  for (const Json& item : list->as_array()) {
    if (!item.is_object()) {
      continue;
    }
    const Json* name = item.find("name");
    if (name == nullptr || !name->is_string()) {
      continue;
    }
    if (!is_known_metric(name->as_string())) {
      unknown.push_back(name->as_string());
    }
  }
}

}  // namespace

std::span<const std::string_view> known_metric_names() noexcept {
  return {kKnownNames.data(), kKnownNames.size()};
}

std::span<const std::string_view> known_metric_prefixes() noexcept {
  return {kKnownPrefixes.data(), kKnownPrefixes.size()};
}

bool is_known_metric(std::string_view name) noexcept {
  if (std::binary_search(kKnownNames.begin(), kKnownNames.end(), name)) {
    return true;
  }
  for (const std::string_view prefix : kKnownPrefixes) {
    if (name.substr(0, prefix.size()) == prefix) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> unknown_metric_names(const Json& root) {
  std::vector<std::string> unknown;
  if (!root.is_object()) {
    return unknown;
  }
  collect_unknown(root, "counters", unknown);
  collect_unknown(root, "gauges", unknown);
  collect_unknown(root, "histograms", unknown);
  return unknown;
}

}  // namespace lehdc::obs
