// Straight-through-estimator binarization (Eq. 8 and the two-copy scheme of
// Sec. 4).
//
// Training keeps the latent non-binary weights C_nb; the forward pass uses
// C = sgn(C_nb). Gradients flow to C_nb unchanged (the straight-through
// estimator); optionally C_nb is clipped to [−clip, clip] after each update,
// the standard BNN trick that keeps latent weights responsive to gradient
// sign changes.
#pragma once

#include "hv/bitvector.hpp"
#include "nn/matrix.hpp"

namespace lehdc::nn {

/// out[i][j] = sgn(latent[i][j]) as float ±1 (sgn(0) = +1, matching
/// IntVector::sign()'s deterministic variant). Same shape required.
void binarize_to_float(const Matrix& latent, Matrix& out);

/// Packs row k of the binarized latent matrix into a bipolar hypervector
/// (component j is −1 iff latent[k][j] < 0). Precondition: k < rows.
[[nodiscard]] hv::BitVector binarize_row(const Matrix& latent, std::size_t k);

/// Packs every row: the exported class hypervector set C = sgn(C_nb).
[[nodiscard]] std::vector<hv::BitVector> binarize_rows(const Matrix& latent);

/// Clamps every latent weight into [−clip, clip]. Precondition: clip > 0.
void clip_latent(Matrix& latent, float clip);

}  // namespace lehdc::nn
