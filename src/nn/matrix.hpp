// Dense row-major float matrices — the numeric substrate for the
// single-layer BNN of Fig. 4.
//
// Deliberately minimal: the LeHDC trainer needs batched forward products,
// rank-B gradient accumulation, and element-wise updates; nothing more.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace lehdc::nn {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  /// Row r as a contiguous span. Precondition: r < rows().
  [[nodiscard]] std::span<float> row(std::size_t r);
  [[nodiscard]] std::span<const float> row(std::size_t r) const;

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  void fill(float value) noexcept;

  /// Independent N(0, stddev) entries.
  void fill_gaussian(util::Rng& rng, float stddev);

  /// Independent uniform entries in [lo, hi).
  void fill_uniform(util::Rng& rng, float lo, float hi);

  /// this += scale * other. Precondition: same shape.
  void add_scaled(const Matrix& other, float scale);

  /// Frobenius norm squared (the ||C_nb||^2 term of Eq. 10).
  [[nodiscard]] double squared_norm() const noexcept;

  bool operator==(const Matrix& other) const noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out[b][k] = sum_j a[b][j] * bT[k][j]  — i.e. out = a * transpose(bT).
/// Shapes: a is B x D, bT is K x D, out is B x K. bT being row-major over K
/// keeps the inner loop contiguous for both operands (each class
/// hypervector is one row).
void matmul_abt(const Matrix& a, const Matrix& bT, Matrix& out);

/// out[k][j] += sum_b g[b][k] * a[b][j]  — accumulates transpose(g) * a.
/// Shapes: g is B x K, a is B x D, out is K x D. This is the weight-gradient
/// accumulation of Eq. 7 for a whole batch.
void accumulate_gta(const Matrix& g, const Matrix& a, Matrix& out);

/// out[i][j] = sum_k a[i][k] * b[k][j]  — plain row-major product, used by
/// multi-layer backpropagation (gradient wrt a hidden activation).
/// Shapes: a is I x K, b is K x J, out is I x J.
void matmul_ab(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace lehdc::nn
