#include "nn/gradcheck.hpp"

#include <cmath>

#include "util/check.hpp"

namespace lehdc::nn {

double max_gradient_error(Matrix& params, const Matrix& analytic_grad,
                          const std::function<double()>& loss, float epsilon) {
  util::expects(params.rows() == analytic_grad.rows() &&
                    params.cols() == analytic_grad.cols(),
                "gradient shape mismatch");
  double worst = 0.0;
  const auto p = params.data();
  const auto g = analytic_grad.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float original = p[i];
    p[i] = original + epsilon;
    const double up = loss();
    p[i] = original - epsilon;
    const double down = loss();
    p[i] = original;
    const double numeric = (up - down) / (2.0 * static_cast<double>(epsilon));
    worst = std::max(worst, std::abs(numeric - static_cast<double>(g[i])));
  }
  return worst;
}

}  // namespace lehdc::nn
