// Inverted dropout (Sec. 4: "the dropout strategy also plays an
// indispensable role in the equivalent single-layer BNN training").
//
// Applied to the input hypervector En(x): each component is dropped with
// probability `rate` and survivors are scaled by 1/(1−rate), so inference
// needs no rescaling — matching the paper's zero-inference-overhead claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace lehdc::nn {

class Dropout {
 public:
  /// rate in [0, 1): the probability of dropping each activation.
  explicit Dropout(float rate);

  [[nodiscard]] float rate() const noexcept { return rate_; }

  /// Applies a fresh mask to every element of `activations` in place.
  void apply(Matrix& activations, util::Rng& rng);

  /// Applies a fresh mask to one row/vector in place.
  void apply(std::span<float> activations, util::Rng& rng);

  /// Propagates gradients through the most basic use here — dropout of the
  /// *input* layer needs no backward pass (inputs carry no gradient), but
  /// the mask-backward is provided for completeness and testing: zeroes
  /// gradient entries whose activation was dropped, scaling the rest.
  /// `mask` must come from make_mask on the same shape.
  static void backward(std::span<float> grad,
                       std::span<const std::uint8_t> mask, float rate);

  /// Materializes a mask (1 = keep) without applying it.
  [[nodiscard]] std::vector<std::uint8_t> make_mask(std::size_t count,
                                                    util::Rng& rng) const;

 private:
  float rate_;
};

}  // namespace lehdc::nn
