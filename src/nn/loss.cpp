#include "nn/loss.hpp"

#include <cmath>

#include "util/check.hpp"

namespace lehdc::nn {

namespace {

/// Row-wise stable softmax into `out`; returns log(sum exp(shifted)) + max,
/// i.e. the log-partition needed for the loss.
double softmax_row(std::span<const float> logits, std::span<float> out) {
  float max_logit = logits[0];
  for (const float v : logits) {
    max_logit = std::max(max_logit, v);
  }
  double sum = 0.0;
  for (std::size_t k = 0; k < logits.size(); ++k) {
    const double e = std::exp(static_cast<double>(logits[k] - max_logit));
    out[k] = static_cast<float>(e);
    sum += e;
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (auto& v : out) {
    v *= inv;
  }
  return std::log(sum) + static_cast<double>(max_logit);
}

}  // namespace

void softmax_rows(Matrix& logits) {
  util::expects(logits.cols() > 0, "softmax over empty rows");
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    softmax_row(row, row);
  }
}

double cross_entropy(const Matrix& logits, std::span<const int> labels) {
  util::expects(labels.size() == logits.rows(),
                "label count does not match the batch size");
  util::expects(logits.cols() > 0, "cross entropy over empty rows");
  double total = 0.0;
  std::vector<float> probs(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[r];
    util::expects(y >= 0 && static_cast<std::size_t>(y) < logits.cols(),
                  "label out of range");
    const double log_z = softmax_row(logits.row(r), probs);
    total += log_z - static_cast<double>(logits.at(r, static_cast<std::size_t>(y)));
  }
  return total / static_cast<double>(logits.rows());
}

double softmax_xent_backward(const Matrix& logits, std::span<const int> labels,
                             Matrix& grad) {
  util::expects(labels.size() == logits.rows(),
                "label count does not match the batch size");
  util::expects(grad.rows() == logits.rows() && grad.cols() == logits.cols(),
                "gradient shape mismatch");
  const auto batch = static_cast<double>(logits.rows());
  double total = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[r];
    util::expects(y >= 0 && static_cast<std::size_t>(y) < logits.cols(),
                  "label out of range");
    const auto grad_row = grad.row(r);
    const double log_z = softmax_row(logits.row(r), grad_row);
    total += log_z - static_cast<double>(logits.at(r, static_cast<std::size_t>(y)));
    for (auto& g : grad_row) {
      g /= static_cast<float>(batch);
    }
    grad_row[static_cast<std::size_t>(y)] -= 1.0f / static_cast<float>(batch);
  }
  return total / batch;
}

}  // namespace lehdc::nn
