#include "nn/optimizer.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::nn {

AdamOptimizer::AdamOptimizer(std::size_t rows, std::size_t cols,
                             const AdamConfig& config)
    : config_(config), m_(rows, cols), v_(rows, cols) {
  util::expects(config.learning_rate > 0.0f, "learning rate must be positive");
  util::expects(config.beta1 >= 0.0f && config.beta1 < 1.0f &&
                    config.beta2 >= 0.0f && config.beta2 < 1.0f,
                "Adam betas must lie in [0, 1)");
}

void AdamOptimizer::step(Matrix& params, const Matrix& grad) {
  util::expects(params.rows() == m_.rows() && params.cols() == m_.cols(),
                "parameter shape does not match the optimizer state");
  util::expects(grad.rows() == params.rows() && grad.cols() == params.cols(),
                "gradient shape mismatch");
  ++steps_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const double bias1 =
      1.0 - std::pow(static_cast<double>(b1), static_cast<double>(steps_));
  const double bias2 =
      1.0 - std::pow(static_cast<double>(b2), static_cast<double>(steps_));
  const float lr = config_.learning_rate;
  const float eps = config_.epsilon;
  const float lambda = config_.weight_decay;
  const auto mode = config_.decay_mode;

  auto p = params.data();
  auto g = grad.data();
  auto m = m_.data();
  auto v = v_.data();
  util::parallel_for(0, p.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      float gi = g[i];
      if (mode == WeightDecayMode::kL2) {
        gi += lambda * p[i];
      }
      m[i] = b1 * m[i] + (1.0f - b1) * gi;
      v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
      const auto m_hat = static_cast<float>(m[i] / bias1);
      const auto v_hat = static_cast<float>(v[i] / bias2);
      p[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      if (mode == WeightDecayMode::kDecoupled) {
        p[i] -= lr * lambda * p[i];
      }
    }
  });
}

void AdamOptimizer::restore(Matrix first_moment, Matrix second_moment,
                            std::size_t steps) {
  util::expects(first_moment.rows() == m_.rows() &&
                    first_moment.cols() == m_.cols() &&
                    second_moment.rows() == v_.rows() &&
                    second_moment.cols() == v_.cols(),
                "checkpointed Adam moment shape mismatch");
  m_ = std::move(first_moment);
  v_ = std::move(second_moment);
  steps_ = steps;
}

SgdOptimizer::SgdOptimizer(std::size_t rows, std::size_t cols,
                           const SgdConfig& config)
    : config_(config), velocity_(rows, cols) {
  util::expects(config.learning_rate > 0.0f, "learning rate must be positive");
  util::expects(config.momentum >= 0.0f && config.momentum < 1.0f,
                "momentum must lie in [0, 1)");
}

void SgdOptimizer::step(Matrix& params, const Matrix& grad) {
  util::expects(params.rows() == velocity_.rows() &&
                    params.cols() == velocity_.cols(),
                "parameter shape does not match the optimizer state");
  util::expects(grad.rows() == params.rows() && grad.cols() == params.cols(),
                "gradient shape mismatch");
  const float lr = config_.learning_rate;
  const float mu = config_.momentum;
  const float lambda = config_.weight_decay;
  const auto mode = config_.decay_mode;

  auto p = params.data();
  auto g = grad.data();
  auto vel = velocity_.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    float gi = g[i];
    if (mode == WeightDecayMode::kL2) {
      gi += lambda * p[i];
    }
    vel[i] = mu * vel[i] + gi;
    p[i] -= lr * vel[i];
    if (mode == WeightDecayMode::kDecoupled) {
      p[i] -= lr * lambda * p[i];
    }
  }
}

void SgdOptimizer::restore(Matrix velocity) {
  util::expects(velocity.rows() == velocity_.rows() &&
                    velocity.cols() == velocity_.cols(),
                "checkpointed SGD velocity shape mismatch");
  velocity_ = std::move(velocity);
}

}  // namespace lehdc::nn
