#include "nn/binarize.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lehdc::nn {

void binarize_to_float(const Matrix& latent, Matrix& out) {
  util::expects(out.rows() == latent.rows() && out.cols() == latent.cols(),
                "shape mismatch in binarize_to_float");
  const auto in = latent.data();
  const auto dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    dst[i] = in[i] < 0.0f ? -1.0f : 1.0f;
  }
}

hv::BitVector binarize_row(const Matrix& latent, std::size_t k) {
  util::expects(k < latent.rows(), "row index out of range");
  hv::BitVector out(latent.cols());
  const auto row = latent.row(k);
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j] < 0.0f) {
      out.set_bit(j, true);
    }
  }
  return out;
}

std::vector<hv::BitVector> binarize_rows(const Matrix& latent) {
  std::vector<hv::BitVector> out;
  out.reserve(latent.rows());
  for (std::size_t k = 0; k < latent.rows(); ++k) {
    out.push_back(binarize_row(latent, k));
  }
  return out;
}

void clip_latent(Matrix& latent, float clip) {
  util::expects(clip > 0.0f, "clip bound must be positive");
  for (auto& v : latent.data()) {
    v = std::clamp(v, -clip, clip);
  }
}

}  // namespace lehdc::nn
