// Learning-rate schedules.
//
// Sec. 5.2: "The learning rate will decay during the training, if the
// training loss increasing is detected" — implemented as PlateauDecay.
// StepDecay is the conventional fixed-interval alternative for ablations.
#pragma once

#include <cstddef>

namespace lehdc::nn {

/// Multiplies the LR by `factor` whenever the observed training loss fails
/// to improve (increases) relative to the best seen so far for `patience`
/// consecutive observations.
class PlateauDecay {
 public:
  PlateauDecay(float initial_lr, float factor = 0.5f,
               std::size_t patience = 2, float min_lr = 1e-6f);

  /// Feeds one epoch's training loss; returns the LR to use next.
  float observe(double loss);

  [[nodiscard]] float learning_rate() const noexcept { return lr_; }
  [[nodiscard]] std::size_t decay_count() const noexcept { return decays_; }

  /// The mutable observation state (factor/patience/min_lr come from the
  /// constructor) — persisted by training checkpoints so a resumed run
  /// decays at exactly the epochs the uninterrupted run would.
  struct State {
    float lr = 0.0f;
    double best_loss = 0.0;
    std::size_t bad_epochs = 0;
    std::size_t decays = 0;
    bool seen_any = false;

    bool operator==(const State&) const noexcept = default;
  };

  [[nodiscard]] State state() const noexcept {
    return State{lr_, best_loss_, bad_epochs_, decays_, seen_any_};
  }
  void set_state(const State& state) noexcept {
    lr_ = state.lr;
    best_loss_ = state.best_loss;
    bad_epochs_ = state.bad_epochs;
    decays_ = state.decays;
    seen_any_ = state.seen_any;
  }

 private:
  float lr_;
  float factor_;
  std::size_t patience_;
  float min_lr_;
  double best_loss_;
  std::size_t bad_epochs_ = 0;
  std::size_t decays_ = 0;
  bool seen_any_ = false;
};

/// Multiplies the LR by `factor` every `interval` observations.
class StepDecay {
 public:
  StepDecay(float initial_lr, float factor, std::size_t interval);

  float observe();

  [[nodiscard]] float learning_rate() const noexcept { return lr_; }

 private:
  float lr_;
  float factor_;
  std::size_t interval_;
  std::size_t count_ = 0;
};

}  // namespace lehdc::nn
