#include "nn/dropout.hpp"

#include "util/check.hpp"

namespace lehdc::nn {

Dropout::Dropout(float rate) : rate_(rate) {
  util::expects(rate >= 0.0f && rate < 1.0f, "dropout rate must be in [0, 1)");
}

void Dropout::apply(Matrix& activations, util::Rng& rng) {
  apply(activations.data(), rng);
}

void Dropout::apply(std::span<float> activations, util::Rng& rng) {
  if (rate_ == 0.0f) {
    return;
  }
  const float scale = 1.0f / (1.0f - rate_);
  const auto threshold = static_cast<float>(rate_);
  for (auto& v : activations) {
    if (rng.next_float() < threshold) {
      v = 0.0f;
    } else {
      v *= scale;
    }
  }
}

void Dropout::backward(std::span<float> grad,
                       std::span<const std::uint8_t> mask, float rate) {
  util::expects(grad.size() == mask.size(), "mask/gradient size mismatch");
  const float scale = 1.0f / (1.0f - rate);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = mask[i] != 0 ? grad[i] * scale : 0.0f;
  }
}

std::vector<std::uint8_t> Dropout::make_mask(std::size_t count,
                                             util::Rng& rng) const {
  std::vector<std::uint8_t> mask(count, 1);
  if (rate_ == 0.0f) {
    return mask;
  }
  for (auto& bit : mask) {
    bit = rng.next_float() < rate_ ? 0 : 1;
  }
  return mask;
}

}  // namespace lehdc::nn
