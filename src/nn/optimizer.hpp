// Optimizers for the single-layer BNN.
//
// The paper selects Adam ("Adam can outperform other SGD-based algorithms on
// the BNN optimization", Sec. 4, citing Liu et al. 2021); plain SGD with
// momentum is kept as the comparison point for the ablation bench.
// Weight decay supports both the paper's Eq. 10 form (L2 penalty folded
// into the gradient) and the decoupled (AdamW) form.
#pragma once

#include <cstddef>

#include "nn/matrix.hpp"

namespace lehdc::nn {

enum class WeightDecayMode {
  kNone,
  kL2,         // grad += lambda * w  (the paper's Eq. 10)
  kDecoupled,  // w -= lr * lambda * w (AdamW-style)
};

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
  WeightDecayMode decay_mode = WeightDecayMode::kL2;
};

class AdamOptimizer {
 public:
  /// Shapes the moment buffers after the parameter matrix.
  AdamOptimizer(std::size_t rows, std::size_t cols, const AdamConfig& config);

  /// One update: params -= lr * m_hat / (sqrt(v_hat) + eps), applying the
  /// configured weight decay. grad is logically const (kL2 temporarily adds
  /// the decay term internally without mutating the caller's matrix).
  void step(Matrix& params, const Matrix& grad);

  /// Current learning rate (mutable to support LR schedules).
  [[nodiscard]] float learning_rate() const noexcept {
    return config_.learning_rate;
  }
  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }

  [[nodiscard]] std::size_t step_count() const noexcept { return steps_; }

  /// Moment buffers, exposed for checkpointing. first_moment is m,
  /// second_moment is v (both shaped like the parameter matrix).
  [[nodiscard]] const Matrix& first_moment() const noexcept { return m_; }
  [[nodiscard]] const Matrix& second_moment() const noexcept { return v_; }

  /// Restores a checkpointed optimizer state. Preconditions: both moment
  /// matrices match the shape this optimizer was constructed with.
  void restore(Matrix first_moment, Matrix second_moment, std::size_t steps);

 private:
  AdamConfig config_;
  Matrix m_;
  Matrix v_;
  std::size_t steps_ = 0;
};

struct SgdConfig {
  float learning_rate = 1e-2f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
  WeightDecayMode decay_mode = WeightDecayMode::kL2;
};

class SgdOptimizer {
 public:
  SgdOptimizer(std::size_t rows, std::size_t cols, const SgdConfig& config);

  void step(Matrix& params, const Matrix& grad);

  [[nodiscard]] float learning_rate() const noexcept {
    return config_.learning_rate;
  }
  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }

  /// Momentum buffer, exposed for checkpointing.
  [[nodiscard]] const Matrix& velocity() const noexcept { return velocity_; }

  /// Restores a checkpointed velocity. Precondition: shape matches.
  void restore(Matrix velocity);

 private:
  SgdConfig config_;
  Matrix velocity_;
};

}  // namespace lehdc::nn
