#include "nn/matrix.hpp"

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

float& Matrix::at(std::size_t r, std::size_t c) {
  util::expects(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
  util::expects(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<float> Matrix::row(std::size_t r) {
  util::expects(r < rows_, "matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const float> Matrix::row(std::size_t r) const {
  util::expects(r < rows_, "matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(float value) noexcept {
  for (auto& v : data_) {
    v = value;
  }
}

void Matrix::fill_gaussian(util::Rng& rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.next_gaussian()) * stddev;
  }
}

void Matrix::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (auto& v : data_) {
    v = lo + (hi - lo) * rng.next_float();
  }
}

void Matrix::add_scaled(const Matrix& other, float scale) {
  util::expects(rows_ == other.rows_ && cols_ == other.cols_,
                "shape mismatch in add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

double Matrix::squared_norm() const noexcept {
  double total = 0.0;
  for (const float v : data_) {
    total += static_cast<double>(v) * static_cast<double>(v);
  }
  return total;
}

void matmul_abt(const Matrix& a, const Matrix& bT, Matrix& out) {
  util::expects(a.cols() == bT.cols(), "inner dimension mismatch");
  util::expects(out.rows() == a.rows() && out.cols() == bT.rows(),
                "output shape mismatch");
  const std::size_t d = a.cols();
  util::parallel_for(0, a.rows(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      const auto a_row = a.row(b);
      const auto out_row = out.row(b);
      for (std::size_t k = 0; k < bT.rows(); ++k) {
        const auto b_row = bT.row(k);
        float sum = 0.0f;
        for (std::size_t j = 0; j < d; ++j) {
          sum += a_row[j] * b_row[j];
        }
        out_row[k] = sum;
      }
    }
  });
}

void accumulate_gta(const Matrix& g, const Matrix& a, Matrix& out) {
  util::expects(g.rows() == a.rows(), "batch dimension mismatch");
  util::expects(out.rows() == g.cols() && out.cols() == a.cols(),
                "output shape mismatch");
  const std::size_t d = a.cols();
  util::parallel_for(0, g.cols(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const auto out_row = out.row(k);
      for (std::size_t b = 0; b < g.rows(); ++b) {
        const float scale = g.at(b, k);
        if (scale == 0.0f) {
          continue;
        }
        const auto a_row = a.row(b);
        for (std::size_t j = 0; j < d; ++j) {
          out_row[j] += scale * a_row[j];
        }
      }
    }
  });
}

void matmul_ab(const Matrix& a, const Matrix& b, Matrix& out) {
  util::expects(a.cols() == b.rows(), "inner dimension mismatch");
  util::expects(out.rows() == a.rows() && out.cols() == b.cols(),
                "output shape mismatch");
  out.fill(0.0f);
  util::parallel_for(0, a.rows(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto a_row = a.row(i);
      const auto out_row = out.row(i);
      for (std::size_t k = 0; k < b.rows(); ++k) {
        const float scale = a_row[k];
        if (scale == 0.0f) {
          continue;
        }
        const auto b_row = b.row(k);
        for (std::size_t j = 0; j < b.cols(); ++j) {
          out_row[j] += scale * b_row[j];
        }
      }
    }
  });
}

}  // namespace lehdc::nn
