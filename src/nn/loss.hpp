// Softmax + cross-entropy (Eq. 9) with the fused analytic gradient.
//
// For logits o and one-hot target y, L = −log softmax(o)_y and
// ∂L/∂o = softmax(o) − y; the fused form avoids materializing the softmax
// twice and is the standard numerically-stable max-shifted implementation.
#pragma once

#include <cstddef>
#include <span>

#include "nn/matrix.hpp"

namespace lehdc::nn {

/// In-place row-wise softmax. Each row must be non-empty.
void softmax_rows(Matrix& logits);

/// Mean cross-entropy over a batch of logits (NOT yet softmaxed) against
/// integer labels. Preconditions: labels.size() == logits.rows(), every
/// label in [0, logits.cols()).
[[nodiscard]] double cross_entropy(const Matrix& logits,
                                   std::span<const int> labels);

/// Computes grad = (softmax(logits) − onehot(labels)) / batch and returns
/// the mean cross-entropy in one pass. grad must have the logits' shape.
double softmax_xent_backward(const Matrix& logits, std::span<const int> labels,
                             Matrix& grad);

}  // namespace lehdc::nn
