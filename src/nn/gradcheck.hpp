// Finite-difference gradient checking (test support).
//
// Verifies analytic gradients of the loss pipeline against central
// differences — the standard way to certify a hand-written backward pass.
#pragma once

#include <functional>

#include "nn/matrix.hpp"

namespace lehdc::nn {

/// Evaluates `loss` at perturbations of every entry of `params` and returns
/// the maximum absolute difference between the central-difference estimate
/// and `analytic_grad`. `loss` must be a pure function of params.
[[nodiscard]] double max_gradient_error(
    Matrix& params, const Matrix& analytic_grad,
    const std::function<double()>& loss, float epsilon = 1e-3f);

}  // namespace lehdc::nn
