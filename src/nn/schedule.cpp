#include "nn/schedule.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lehdc::nn {

PlateauDecay::PlateauDecay(float initial_lr, float factor,
                           std::size_t patience, float min_lr)
    : lr_(initial_lr),
      factor_(factor),
      patience_(patience),
      min_lr_(min_lr),
      best_loss_(0.0) {
  util::expects(initial_lr > 0.0f, "initial LR must be positive");
  util::expects(factor > 0.0f && factor < 1.0f, "factor must be in (0, 1)");
  util::expects(patience >= 1, "patience must be at least 1");
}

float PlateauDecay::observe(double loss) {
  if (!seen_any_) {
    seen_any_ = true;
    best_loss_ = loss;
    return lr_;
  }
  if (loss < best_loss_) {
    best_loss_ = loss;
    bad_epochs_ = 0;
    return lr_;
  }
  if (++bad_epochs_ >= patience_) {
    bad_epochs_ = 0;
    lr_ = std::max(min_lr_, lr_ * factor_);
    ++decays_;
  }
  return lr_;
}

StepDecay::StepDecay(float initial_lr, float factor, std::size_t interval)
    : lr_(initial_lr), factor_(factor), interval_(interval) {
  util::expects(initial_lr > 0.0f, "initial LR must be positive");
  util::expects(factor > 0.0f && factor <= 1.0f, "factor must be in (0, 1]");
  util::expects(interval >= 1, "interval must be at least 1");
}

float StepDecay::observe() {
  if (++count_ % interval_ == 0) {
    lr_ *= factor_;
  }
  return lr_;
}

}  // namespace lehdc::nn
