#include "hv/batch_score.hpp"

#include <bit>

#include "util/check.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LEHDC_X86_DISPATCH 1
#include <immintrin.h>
#else
#define LEHDC_X86_DISPATCH 0
#endif

namespace lehdc::hv {

namespace {

// How many rows one blocked kernel call scores while the query words stay
// in registers/cache. Four keeps register pressure low enough for every
// tier and already amortizes the query loads over the row loads.
constexpr std::size_t kRowBlock = 4;

// ---------------------------------------------------------------- scalar --

std::size_t ham_scalar(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t words) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

void ham4_scalar(const std::uint64_t* q, const std::uint64_t* const* rows,
                 std::size_t words, std::size_t* out) {
  std::size_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t qw = q[w];
    acc0 += static_cast<std::size_t>(std::popcount(qw ^ rows[0][w]));
    acc1 += static_cast<std::size_t>(std::popcount(qw ^ rows[1][w]));
    acc2 += static_cast<std::size_t>(std::popcount(qw ^ rows[2][w]));
    acc3 += static_cast<std::size_t>(std::popcount(qw ^ rows[3][w]));
  }
  out[0] = acc0;
  out[1] = acc1;
  out[2] = acc2;
  out[3] = acc3;
}

#if LEHDC_X86_DISPATCH

// ------------------------------------------------------------------ avx2 --
// Mula's byte-lookup popcount: per 256-bit lane, split each byte into two
// nibbles, count bits via VPSHUFB against a 16-entry table, and horizontally
// sum the byte counts into 64-bit lanes with VPSADBW.

__attribute__((target("avx2"))) inline __m256i popcount_bytes_avx2(
    __m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

__attribute__((target("avx2"))) std::size_t ham_avx2(const std::uint64_t* a,
                                                     const std::uint64_t* b,
                                                     std::size_t words) {
  const std::size_t vec_words = words & ~std::size_t{3};
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t w = 0; w < vec_words; w += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_bytes_avx2(x), zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t total = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                               lanes[2] + lanes[3]);
  for (std::size_t w = vec_words; w < words; ++w) {
    total += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

__attribute__((target("avx2"))) void ham4_avx2(const std::uint64_t* q,
                                               const std::uint64_t* const* rows,
                                               std::size_t words,
                                               std::size_t* out) {
  const std::size_t vec_words = words & ~std::size_t{3};
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t w = 0; w < vec_words; w += 4) {
    const __m256i qv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + w));
    const __m256i x0 = _mm256_xor_si256(
        qv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[0] + w)));
    const __m256i x1 = _mm256_xor_si256(
        qv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[1] + w)));
    const __m256i x2 = _mm256_xor_si256(
        qv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[2] + w)));
    const __m256i x3 = _mm256_xor_si256(
        qv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[3] + w)));
    acc0 =
        _mm256_add_epi64(acc0, _mm256_sad_epu8(popcount_bytes_avx2(x0), zero));
    acc1 =
        _mm256_add_epi64(acc1, _mm256_sad_epu8(popcount_bytes_avx2(x1), zero));
    acc2 =
        _mm256_add_epi64(acc2, _mm256_sad_epu8(popcount_bytes_avx2(x2), zero));
    acc3 =
        _mm256_add_epi64(acc3, _mm256_sad_epu8(popcount_bytes_avx2(x3), zero));
  }
  alignas(32) std::uint64_t lanes[4];
  const __m256i accs[kRowBlock] = {acc0, acc1, acc2, acc3};
  for (std::size_t r = 0; r < kRowBlock; ++r) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), accs[r]);
    std::size_t total = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                                 lanes[2] + lanes[3]);
    for (std::size_t w = vec_words; w < words; ++w) {
      total += static_cast<std::size_t>(std::popcount(q[w] ^ rows[r][w]));
    }
    out[r] = total;
  }
}

// ---------------------------------------------------------------- avx512 --
// VPOPCNTQ counts all eight 64-bit lanes of a 512-bit register in one
// instruction; the ragged tail is handled with a masked load instead of a
// scalar epilogue.

__attribute__((target("avx512f,avx512vpopcntdq"))) std::size_t ham_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  const std::size_t vec_words = words & ~std::size_t{7};
  __m512i acc = _mm512_setzero_si512();
  for (std::size_t w = 0; w < vec_words; w += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + w),
                                       _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  if (const std::size_t tail = words - vec_words; tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i x =
        _mm512_xor_si512(_mm512_maskz_loadu_epi64(mask, a + vec_words),
                         _mm512_maskz_loadu_epi64(mask, b + vec_words));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void ham4_avx512(
    const std::uint64_t* q, const std::uint64_t* const* rows,
    std::size_t words, std::size_t* out) {
  const std::size_t vec_words = words & ~std::size_t{7};
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  for (std::size_t w = 0; w < vec_words; w += 8) {
    const __m512i qv = _mm512_loadu_si512(q + w);
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(rows[0] + w))));
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(rows[1] + w))));
    acc2 = _mm512_add_epi64(
        acc2, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(rows[2] + w))));
    acc3 = _mm512_add_epi64(
        acc3, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(rows[3] + w))));
  }
  if (const std::size_t tail = words - vec_words; tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i qv = _mm512_maskz_loadu_epi64(mask, q + vec_words);
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(_mm512_xor_si512(
                  qv, _mm512_maskz_loadu_epi64(mask, rows[0] + vec_words))));
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(_mm512_xor_si512(
                  qv, _mm512_maskz_loadu_epi64(mask, rows[1] + vec_words))));
    acc2 = _mm512_add_epi64(
        acc2, _mm512_popcnt_epi64(_mm512_xor_si512(
                  qv, _mm512_maskz_loadu_epi64(mask, rows[2] + vec_words))));
    acc3 = _mm512_add_epi64(
        acc3, _mm512_popcnt_epi64(_mm512_xor_si512(
                  qv, _mm512_maskz_loadu_epi64(mask, rows[3] + vec_words))));
  }
  out[0] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc0));
  out[1] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc1));
  out[2] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc2));
  out[3] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc3));
}

#endif  // LEHDC_X86_DISPATCH

// -------------------------------------------------------------- dispatch --

using HamFn = std::size_t (*)(const std::uint64_t*, const std::uint64_t*,
                              std::size_t);
using Ham4Fn = void (*)(const std::uint64_t*, const std::uint64_t* const*,
                        std::size_t, std::size_t*);

struct Kernels {
  HamFn ham;
  Ham4Fn ham4;
  const char* name;
};

Kernels resolve_kernels() {
#if LEHDC_X86_DISPATCH
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return {&ham_avx512, &ham4_avx512, "avx512-vpopcntdq"};
  }
  if (__builtin_cpu_supports("avx2")) {
    return {&ham_avx2, &ham4_avx2, "avx2-lookup"};
  }
#endif
  return {&ham_scalar, &ham4_scalar, "scalar-popcnt"};
}

const Kernels& kernels() {
  static const Kernels k = resolve_kernels();
  return k;
}

}  // namespace

const char* score_kernel_name() { return kernels().name; }

std::size_t hamming_words(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  return kernels().ham(a, b, words);
}

void hamming_rows(const std::uint64_t* query,
                  std::span<const std::uint64_t* const> rows,
                  std::size_t words, std::span<std::size_t> out) {
  util::expects(out.size() >= rows.size(),
                "hamming_rows output span too small");
  const Kernels& k = kernels();
  std::size_t r = 0;
  for (; r + kRowBlock <= rows.size(); r += kRowBlock) {
    k.ham4(query, rows.data() + r, words, out.data() + r);
  }
  for (; r < rows.size(); ++r) {
    out[r] = k.ham(query, rows[r], words);
  }
}

void hamming_rows_accumulate(const std::uint64_t* query,
                             std::span<const std::uint64_t* const> rows,
                             std::size_t words, std::span<std::size_t> inout) {
  util::expects(inout.size() >= rows.size(),
                "hamming_rows_accumulate output span too small");
  const Kernels& k = kernels();
  std::size_t partial[kRowBlock];
  std::size_t r = 0;
  for (; r + kRowBlock <= rows.size(); r += kRowBlock) {
    k.ham4(query, rows.data() + r, words, partial);
    for (std::size_t i = 0; i < kRowBlock; ++i) {
      inout[r + i] += partial[i];
    }
  }
  for (; r < rows.size(); ++r) {
    inout[r] += k.ham(query, rows[r], words);
  }
}

void dot_rows(const std::uint64_t* query,
              std::span<const std::uint64_t* const> rows, std::size_t dim,
              std::span<std::int64_t> out) {
  util::expects(out.size() >= rows.size(), "dot_rows output span too small");
  const std::size_t words = (dim + 63) / 64;
  std::size_t distances[kRowBlock];
  const Kernels& k = kernels();
  const auto d = static_cast<std::int64_t>(dim);
  std::size_t r = 0;
  for (; r + kRowBlock <= rows.size(); r += kRowBlock) {
    k.ham4(query, rows.data() + r, words, distances);
    for (std::size_t i = 0; i < kRowBlock; ++i) {
      out[r + i] = d - 2 * static_cast<std::int64_t>(distances[i]);
    }
  }
  for (; r < rows.size(); ++r) {
    out[r] = d - 2 * static_cast<std::int64_t>(k.ham(query, rows[r], words));
  }
}

void dot_scores_batch(std::span<const BitVector> queries,
                      std::span<const BitVector> classes,
                      std::span<std::int64_t> out) {
  util::expects(!classes.empty(), "dot_scores_batch needs >= 1 class");
  util::expects(out.size() == queries.size() * classes.size(),
                "dot_scores_batch output span has the wrong size");
  const std::size_t dim = classes.front().dim();
  std::vector<const std::uint64_t*> rows;
  rows.reserve(classes.size());
  for (const auto& c : classes) {
    util::expects(c.dim() == dim, "class rows must share one dimension");
    rows.push_back(c.words().data());
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    util::expects(queries[q].dim() == dim,
                  "query/class dimension mismatch in dot_scores_batch");
    dot_rows(queries[q].words().data(), rows, dim,
             out.subspan(q * classes.size(), classes.size()));
  }
}

int argmax_dot(const BitVector& query, std::span<const BitVector> classes) {
  util::expects(!classes.empty(), "argmax_dot over zero classes");
  // Smallest Hamming distance wins and dim − 2·h is strictly decreasing in
  // h, so first-wins argmin over distances equals first-wins argmax over
  // dots — the exact tie-break the per-sample predict implements.
  const std::size_t words = query.word_count();
  const Kernels& k = kernels();
  int best = 0;
  std::size_t best_distance =
      k.ham(query.words().data(), classes[0].words().data(), words);
  for (std::size_t c = 1; c < classes.size(); ++c) {
    const std::size_t distance =
        k.ham(query.words().data(), classes[c].words().data(), words);
    if (distance < best_distance) {
      best_distance = distance;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace lehdc::hv
