// Batched similarity kernels: Q queries × K class rows in one pass.
//
// The per-sample inference path computes one Hamming popcount per
// (query, class) pair through BitVector::dot, reloading the query words for
// every class and spending most of its time in scalar popcnt. These kernels
// keep the query words resident while scoring a block of rows, process the
// packed words with the widest popcount instruction the CPU offers
// (AVX-512 VPOPCNTQ → AVX2 byte-lookup → scalar), and never allocate —
// callers provide the output spans. They are the single compute core under
// hdc::BatchScorer and everything batch-shaped above it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "hv/bitvector.hpp"

namespace lehdc::hv {

/// Name of the popcount kernel selected at runtime for this process:
/// "avx512-vpopcntdq", "avx2-lookup" or "scalar-popcnt".
[[nodiscard]] const char* score_kernel_name();

/// Hamming distance |a ≠ b| over `words` packed 64-bit words (bits past the
/// logical dimension must be zero, as BitVector guarantees).
[[nodiscard]] std::size_t hamming_words(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t words);

/// Hamming distance of one query against each of K rows sharing `words`
/// packed words. rows[k] points at row k's packed words; out needs K slots.
/// Rows are scored in blocks so the query words are loaded once per block.
void hamming_rows(const std::uint64_t* query,
                  std::span<const std::uint64_t* const> rows,
                  std::size_t words, std::span<std::size_t> out);

/// Partial-distance variant for the fused encode→score path: adds each
/// row's Hamming distance over this word range into inout (+=). Callers
/// sweep the word ranges of a block-encoded query, offsetting the row
/// pointers per range, and read off full-dimension distances at the end.
/// Precondition: inout.size() >= rows.size().
void hamming_rows_accumulate(const std::uint64_t* query,
                             std::span<const std::uint64_t* const> rows,
                             std::size_t words, std::span<std::size_t> inout);

/// Bipolar dot scores query·row_k = dim − 2·Hamming for K rows of logical
/// dimension `dim`. out needs K slots.
void dot_rows(const std::uint64_t* query,
              std::span<const std::uint64_t* const> rows, std::size_t dim,
              std::span<std::int64_t> out);

/// Row-major Q × K bipolar dot scores: out[q * K + k] = queries[q]·classes[k].
/// Serial over queries — callers chunk the batch across threads.
/// Preconditions: all dimensions match, out.size() == Q · K.
void dot_scores_batch(std::span<const BitVector> queries,
                      std::span<const BitVector> classes,
                      std::span<std::int64_t> out);

/// argmax_k query·classes[k] with ties resolved to the lowest k — exactly
/// BinaryClassifier's decision rule (argmax dot ≡ argmin Hamming).
/// Precondition: !classes.empty().
[[nodiscard]] int argmax_dot(const BitVector& query,
                             std::span<const BitVector> classes);

}  // namespace lehdc::hv
