// Similarity measures between hypervectors (Sec. 3.1 of the paper).
//
// The paper's central identity — cosine(H1, H2) = 1 − 2·Hamm(H1, H2) for
// bipolar hypervectors — is implemented and unit-tested here; the inference
// rule of Eq. 4/6 (argmin Hamming ≡ argmax dot) follows from it.
#pragma once

#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"

namespace lehdc::hv {

/// Normalized Hamming distance |a ≠ b| / D in [0, 1].
[[nodiscard]] double normalized_hamming(const BitVector& a,
                                        const BitVector& b);

/// Cosine similarity of two bipolar hypervectors, computed through the
/// Hamming identity (exact for bipolar inputs).
[[nodiscard]] double cosine(const BitVector& a, const BitVector& b);

}  // namespace lehdc::hv
