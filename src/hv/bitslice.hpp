// Bit-sliced majority bundling.
//
// Record-based encoding (Eq. 1) bundles N bound hypervectors with a
// component-wise majority vote. The naive approach keeps D integer counters
// and costs O(N·D) scalar adds per sample; at D = 10,000 and N = 784 that
// dominates encoding time. Instead we keep the counters *bit-sliced*: plane p
// holds bit p of all D counters packed into D/64 words, and adding one
// hypervector is a ripple carry-save addition over the planes — O(D/64)
// word operations amortized, exactly the adder-tree structure a hardware
// implementation of an HDC encoder would use.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"

namespace lehdc::hv {

/// Word-parallel majority threshold over bit-sliced counters.
///
/// `planes` holds `plane_count` bit-planes of `words` packed words each,
/// plane-major (plane p starts at planes[p * words]): bit b of plane p is
/// bit p of the counter for lane b of that word. For every lane the output
/// bit is 1 iff its counter is strictly greater than added/2; exact ties
/// (possible only for even `added`) take the corresponding `tie_break` bit.
/// All 64 lanes of a word are resolved together with the classic bit-sliced
/// greater/equal comparison walked from the most significant plane down, so
/// the cost is O(plane_count) word ops per word instead of O(64·plane_count)
/// single-bit probes. Lanes whose counter is 0 come out 0 whenever added > 0.
/// Preconditions: added > 0, out has `words` slots, tie_break has `words`
/// words (it is only read when `added` is even).
void majority_words(const std::uint64_t* planes, std::size_t plane_count,
                    std::size_t words, std::size_t added,
                    const std::uint64_t* tie_break, std::uint64_t* out);

/// Carry-save majority accumulator over a fixed block of packed words — the
/// compute core of block encoding (hdc::BlockEncoder). Unlike
/// BitSliceAccumulator it is dimension-agnostic: it sees only raw word
/// spans, keeps its counter planes in one contiguous plane-major buffer, and
/// reset() reuses that capacity, so a cursor sweeping thousands of word
/// blocks allocates only on the first block.
class WordBlockAccumulator {
 public:
  /// Prepares for a block of `words` packed words, clearing all counters.
  void reset(std::size_t words);

  [[nodiscard]] std::size_t words() const noexcept { return words_; }
  [[nodiscard]] std::size_t added() const noexcept { return added_; }

  /// Adds one hypervector block of words() packed words (1-bits vote −1).
  void add(const std::uint64_t* block);

  /// Majority vote into `out` (words() slots) with the same threshold and
  /// tie rule as BitSliceAccumulator::majority; `tie_break` supplies the
  /// words() tie words. Precondition: added() > 0.
  void majority(const std::uint64_t* tie_break, std::uint64_t* out) const;

 private:
  std::size_t words_ = 0;
  std::size_t added_ = 0;
  std::size_t plane_count_ = 0;
  std::vector<std::uint64_t> planes_;  // plane-major, plane_count_ × words_
  std::vector<std::uint64_t> carry_;   // ripple scratch, words_ entries
};

class BitSliceAccumulator {
 public:
  explicit BitSliceAccumulator(std::size_t dim = 0);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Number of hypervectors added so far.
  [[nodiscard]] std::size_t added() const noexcept { return added_; }

  /// Adds one bipolar hypervector: each counter i accumulates the *bit*
  /// (1 for a −1 component, 0 for +1); majority of bits over N additions
  /// equals the sign-majority over bipolar values.
  void add(const BitVector& hv);

  /// Resets to an empty accumulator of the same dimension.
  void reset() noexcept;

  /// Counter value at component i (number of −1 votes). Precondition: i < D.
  [[nodiscard]] std::size_t count(std::size_t i) const;

  /// Majority threshold: component i of the result is −1 iff the number of
  /// −1 votes is strictly greater than added()/2; exact ties (even N only)
  /// take the corresponding component of `tie_break` (paper: sgn(0) is
  /// random). Precondition: at least one hypervector was added.
  [[nodiscard]] BitVector majority(const BitVector& tie_break) const;

  /// Converts the counters to the bipolar integer sum
  /// sum_i = (#(+1 votes) − #(−1 votes)) = N − 2·count.
  [[nodiscard]] IntVector to_int_vector() const;

  /// Number of counter bit-planes currently allocated.
  [[nodiscard]] std::size_t plane_count() const noexcept {
    return planes_.size();
  }

 private:
  std::size_t dim_;
  std::size_t words_;
  std::size_t added_ = 0;
  // planes_[p][w]: bit p of the counters for components [64w, 64w+63].
  std::vector<std::vector<std::uint64_t>> planes_;
};

}  // namespace lehdc::hv
