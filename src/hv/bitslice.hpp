// Bit-sliced majority bundling.
//
// Record-based encoding (Eq. 1) bundles N bound hypervectors with a
// component-wise majority vote. The naive approach keeps D integer counters
// and costs O(N·D) scalar adds per sample; at D = 10,000 and N = 784 that
// dominates encoding time. Instead we keep the counters *bit-sliced*: plane p
// holds bit p of all D counters packed into D/64 words, and adding one
// hypervector is a ripple carry-save addition over the planes — O(D/64)
// word operations amortized, exactly the adder-tree structure a hardware
// implementation of an HDC encoder would use.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"

namespace lehdc::hv {

class BitSliceAccumulator {
 public:
  explicit BitSliceAccumulator(std::size_t dim = 0);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Number of hypervectors added so far.
  [[nodiscard]] std::size_t added() const noexcept { return added_; }

  /// Adds one bipolar hypervector: each counter i accumulates the *bit*
  /// (1 for a −1 component, 0 for +1); majority of bits over N additions
  /// equals the sign-majority over bipolar values.
  void add(const BitVector& hv);

  /// Resets to an empty accumulator of the same dimension.
  void reset() noexcept;

  /// Counter value at component i (number of −1 votes). Precondition: i < D.
  [[nodiscard]] std::size_t count(std::size_t i) const;

  /// Majority threshold: component i of the result is −1 iff the number of
  /// −1 votes is strictly greater than added()/2; exact ties (even N only)
  /// take the corresponding component of `tie_break` (paper: sgn(0) is
  /// random). Precondition: at least one hypervector was added.
  [[nodiscard]] BitVector majority(const BitVector& tie_break) const;

  /// Converts the counters to the bipolar integer sum
  /// sum_i = (#(+1 votes) − #(−1 votes)) = N − 2·count.
  [[nodiscard]] IntVector to_int_vector() const;

  /// Number of counter bit-planes currently allocated.
  [[nodiscard]] std::size_t plane_count() const noexcept {
    return planes_.size();
  }

 private:
  std::size_t dim_;
  std::size_t words_;
  std::size_t added_ = 0;
  // planes_[p][w]: bit p of the counters for components [64w, 64w+63].
  std::vector<std::vector<std::uint64_t>> planes_;
};

}  // namespace lehdc::hv
