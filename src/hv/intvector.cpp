#include "hv/intvector.hpp"

#include <cmath>

#include "util/check.hpp"

namespace lehdc::hv {

IntVector::IntVector(std::size_t dim) : values_(dim, 0) {}

IntVector::IntVector(const BitVector& bits) : values_(bits.dim(), 0) {
  for (std::size_t i = 0; i < bits.dim(); ++i) {
    values_[i] = bits.get_bit(i) ? -1 : +1;
  }
}

std::int32_t IntVector::get(std::size_t i) const {
  util::expects(i < values_.size(), "component index out of range");
  return values_[i];
}

void IntVector::set(std::size_t i, std::int32_t value) {
  util::expects(i < values_.size(), "component index out of range");
  values_[i] = value;
}

void IntVector::add(const BitVector& bits) { add_scaled(bits, 1); }

void IntVector::subtract(const BitVector& bits) { add_scaled(bits, -1); }

void IntVector::add_scaled(const BitVector& bits, std::int32_t scale) {
  util::expects(bits.dim() == values_.size(),
                "dimension mismatch in accumulate");
  const auto words = bits.words();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const bool negative = ((words[i / 64] >> (i % 64)) & 1u) != 0;
    values_[i] += negative ? -scale : scale;
  }
}

void IntVector::add(const IntVector& other) {
  util::expects(other.dim() == dim(), "dimension mismatch in accumulate");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += other.values_[i];
  }
}

BitVector IntVector::sign(const BitVector& tie_break) const {
  util::expects(tie_break.dim() == dim(),
                "tie-break hypervector dimension mismatch");
  BitVector out(dim());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] < 0) {
      out.set_bit(i, true);
    } else if (values_[i] == 0) {
      out.set_bit(i, tie_break.get_bit(i));
    }
  }
  return out;
}

BitVector IntVector::sign() const {
  BitVector out(dim());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.set_bit(i, values_[i] < 0);
  }
  return out;
}

std::int64_t IntVector::dot(const BitVector& bits) const {
  util::expects(bits.dim() == dim(), "dimension mismatch in dot");
  std::int64_t total = 0;
  const auto words = bits.words();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const bool negative = ((words[i / 64] >> (i % 64)) & 1u) != 0;
    total += negative ? -values_[i] : values_[i];
  }
  return total;
}

double IntVector::cosine(const BitVector& bits) const {
  const double denom = norm() * std::sqrt(static_cast<double>(bits.dim()));
  if (denom == 0.0) {
    return 0.0;
  }
  return static_cast<double>(dot(bits)) / denom;
}

double IntVector::norm() const noexcept {
  double sum = 0.0;
  for (const auto v : values_) {
    sum += static_cast<double>(v) * static_cast<double>(v);
  }
  return std::sqrt(sum);
}

double cosine(const IntVector& a, const IntVector& b) {
  util::expects(a.dim() == b.dim(), "dimension mismatch in cosine");
  double dot = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    dot += static_cast<double>(a.get(i)) * static_cast<double>(b.get(i));
  }
  const double denom = a.norm() * b.norm();
  return denom == 0.0 ? 0.0 : dot / denom;
}

}  // namespace lehdc::hv
