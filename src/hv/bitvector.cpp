#include "hv/bitvector.hpp"

#include <bit>

#include "util/check.hpp"

namespace lehdc::hv {

namespace {
constexpr std::size_t kWordBits = 64;

constexpr std::size_t words_for(std::size_t dim) noexcept {
  return (dim + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVector::BitVector(std::size_t dim) : dim_(dim), words_(words_for(dim), 0) {}

void BitVector::clear_tail() noexcept {
  const std::size_t tail = dim_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

int BitVector::get(std::size_t i) const { return get_bit(i) ? -1 : +1; }

void BitVector::set(std::size_t i, int bipolar_value) {
  util::expects(bipolar_value == 1 || bipolar_value == -1,
                "bipolar components must be +1 or -1");
  set_bit(i, bipolar_value == -1);
}

bool BitVector::get_bit(std::size_t i) const {
  util::expects(i < dim_, "component index out of range");
  return ((words_[i / kWordBits] >> (i % kWordBits)) & 1u) != 0;
}

void BitVector::set_bit(std::size_t i, bool bit) {
  util::expects(i < dim_, "component index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (bit) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::randomize(util::Rng& rng) {
  for (auto& word : words_) {
    word = rng.next();
  }
  clear_tail();
}

void BitVector::flip(std::size_t i) {
  util::expects(i < dim_, "component index out of range");
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

void BitVector::flip_random(std::size_t count, util::Rng& rng) {
  util::expects(count <= dim_, "cannot flip more components than D");
  // Floyd's algorithm for sampling `count` distinct indices without
  // materializing a full permutation.
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  for (std::size_t j = dim_ - count; j < dim_; ++j) {
    const std::size_t t = rng.next_below(j + 1);
    bool duplicate = false;
    for (const std::size_t c : chosen) {
      if (c == t) {
        duplicate = true;
        break;
      }
    }
    chosen.push_back(duplicate ? j : t);
  }
  for (const std::size_t i : chosen) {
    flip(i);
  }
}

void BitVector::bind_inplace(const BitVector& other) {
  util::expects(dim_ == other.dim_, "binding requires equal dimensions");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
}

BitVector BitVector::rotated(std::size_t k) const {
  BitVector out(dim_);
  if (dim_ == 0) {
    return out;
  }
  k %= dim_;
  if (k == 0) {
    return *this;
  }
  // Logical (component-level) rotation. Word-level shifting would be faster
  // but D is rarely a multiple of 64 in sweeps; correctness first, and the
  // N-gram encoder only rotates by small constants once per level.
  for (std::size_t i = 0; i < dim_; ++i) {
    out.set_bit((i + k) % dim_, get_bit(i));
  }
  return out;
}

std::size_t BitVector::count_negatives() const noexcept {
  std::size_t total = 0;
  for (const auto word : words_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

std::size_t BitVector::hamming(const BitVector& a, const BitVector& b) {
  util::expects(a.dim_ == b.dim_, "hamming requires equal dimensions");
  std::size_t total = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(a.words_[w] ^ b.words_[w]));
  }
  return total;
}

std::int64_t BitVector::dot(const BitVector& a, const BitVector& b) {
  const auto distance = static_cast<std::int64_t>(hamming(a, b));
  return static_cast<std::int64_t>(a.dim_) - 2 * distance;
}

std::int64_t BitVector::masked_dot(const BitVector& a, const BitVector& b,
                                   std::span<const std::uint64_t> mask,
                                   std::size_t kept) {
  util::expects(a.dim_ == b.dim_, "masked_dot requires equal dimensions");
  util::expects(mask.size() >= a.words_.size(),
                "mask must cover every storage word");
  std::size_t mismatches = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    mismatches += static_cast<std::size_t>(
        std::popcount((a.words_[w] ^ b.words_[w]) & mask[w]));
  }
  return static_cast<std::int64_t>(kept) -
         2 * static_cast<std::int64_t>(mismatches);
}

std::string BitVector::to_string(std::size_t limit) const {
  const std::size_t n = std::min(limit, dim_);
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(get_bit(i) ? '-' : '+');
  }
  if (n < dim_) {
    out += "...";
  }
  return out;
}

BitVector BitVector::random(std::size_t dim, util::Rng& rng) {
  BitVector hv(dim);
  hv.randomize(rng);
  return hv;
}

}  // namespace lehdc::hv
