// Packed bipolar hypervectors.
//
// A binary HDC hypervector lives in {+1, −1}^D (Sec. 2 of the paper). We
// store it as D bits packed into 64-bit words with the convention
//
//     bit = 1  <=>  component = −1,     bit = 0  <=>  component = +1,
//
// so that the Hadamard product ("binding", Eq. 1) is a word-wise XOR and the
// normalized Hamming distance of Eq. 4 is a popcount. The dot product used by
// the equivalent BNN (Eq. 6) follows from  H1·H2 = D − 2·|H1 ≠ H2|.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lehdc::hv {

class BitVector {
 public:
  /// Creates an all-(+1) hypervector of the given dimension (may be 0).
  explicit BitVector(std::size_t dim = 0);

  /// Number of bipolar components D.
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Number of 64-bit storage words (ceil(D / 64)).
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

  /// Raw packed words; bits at positions >= D are guaranteed zero.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  /// Component access as a bipolar value (+1 or −1). Precondition: i < D.
  [[nodiscard]] int get(std::size_t i) const;
  void set(std::size_t i, int bipolar_value);

  /// Component access as a raw bit (true = −1). Precondition: i < D.
  [[nodiscard]] bool get_bit(std::size_t i) const;
  void set_bit(std::size_t i, bool bit);

  /// Fills with independent fair coin flips.
  void randomize(util::Rng& rng);

  /// Flips `count` distinct randomly chosen components (used to build
  /// correlated level hypervectors). Precondition: count <= D.
  void flip_random(std::size_t count, util::Rng& rng);

  /// Flips component i. Precondition: i < D.
  void flip(std::size_t i);

  /// In-place binding (element-wise Hadamard product): *this ∘ other.
  /// Precondition: matching dimensions.
  void bind_inplace(const BitVector& other);

  /// Cyclic rotation by k positions (the HDC permutation operator used by
  /// N-gram encoding). Rotation is over the D logical components.
  [[nodiscard]] BitVector rotated(std::size_t k) const;

  /// Number of −1 components.
  [[nodiscard]] std::size_t count_negatives() const noexcept;

  /// Unnormalized Hamming distance |a ≠ b|. Precondition: same dimension.
  [[nodiscard]] static std::size_t hamming(const BitVector& a,
                                           const BitVector& b);

  /// Bipolar dot product a·b = D − 2·hamming(a, b).
  [[nodiscard]] static std::int64_t dot(const BitVector& a,
                                        const BitVector& b);

  /// Bipolar dot product restricted to the components whose mask word bit is
  /// 1; `kept` must be the popcount of the mask. Used by dropout-aware
  /// binary forward passes. Preconditions: matching dimensions.
  [[nodiscard]] static std::int64_t masked_dot(const BitVector& a,
                                               const BitVector& b,
                                               std::span<const std::uint64_t> mask,
                                               std::size_t kept);

  bool operator==(const BitVector& other) const noexcept = default;

  /// "+-+-..." rendering of the first limit components (debugging aid).
  [[nodiscard]] std::string to_string(std::size_t limit = 64) const;

  /// Convenience factory: random hypervector of dimension D.
  [[nodiscard]] static BitVector random(std::size_t dim, util::Rng& rng);

 private:
  void clear_tail() noexcept;

  std::size_t dim_;
  std::vector<std::uint64_t> words_;
};

}  // namespace lehdc::hv
