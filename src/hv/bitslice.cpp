#include "hv/bitslice.hpp"

#include "util/check.hpp"

namespace lehdc::hv {

namespace {
constexpr std::size_t words_for(std::size_t dim) noexcept {
  return (dim + 63) / 64;
}
}  // namespace

BitSliceAccumulator::BitSliceAccumulator(std::size_t dim)
    : dim_(dim), words_(words_for(dim)) {}

void BitSliceAccumulator::reset() noexcept {
  planes_.clear();
  added_ = 0;
}

void BitSliceAccumulator::add(const BitVector& hv) {
  util::expects(hv.dim() == dim_, "accumulator dimension mismatch");
  const auto input = hv.words();
  // Ripple carry-save add: carry starts as the incoming bits and propagates
  // up the planes; a new plane is allocated only when a carry escapes the
  // current most significant plane.
  std::vector<std::uint64_t> carry(input.begin(), input.end());
  carry.resize(words_, 0);
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    bool any_carry = false;
    auto& plane = planes_[p];
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t sum = plane[w] ^ carry[w];
      const std::uint64_t out = plane[w] & carry[w];
      plane[w] = sum;
      carry[w] = out;
      any_carry |= (out != 0);
    }
    if (!any_carry) {
      ++added_;
      return;
    }
  }
  // A carry escaped every existing plane: the escaping carries become the
  // new most significant plane.
  planes_.push_back(std::move(carry));
  ++added_;
}

std::size_t BitSliceAccumulator::count(std::size_t i) const {
  util::expects(i < dim_, "component index out of range");
  const std::size_t w = i / 64;
  const std::size_t b = i % 64;
  std::size_t value = 0;
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    value |= static_cast<std::size_t>((planes_[p][w] >> b) & 1u) << p;
  }
  return value;
}

BitVector BitSliceAccumulator::majority(const BitVector& tie_break) const {
  util::expects(added_ > 0, "majority of an empty accumulator");
  util::expects(tie_break.dim() == dim_, "tie-break dimension mismatch");
  BitVector out(dim_);
  const bool can_tie = (added_ % 2 == 0);
  const std::size_t half = added_ / 2;
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::size_t negatives = count(i);
    bool bit = false;
    if (negatives * 2 > added_) {
      bit = true;
    } else if (can_tie && negatives == half) {
      bit = tie_break.get_bit(i);
    }
    out.set_bit(i, bit);
  }
  return out;
}

IntVector BitSliceAccumulator::to_int_vector() const {
  IntVector out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const auto negatives = static_cast<std::int64_t>(count(i));
    out.set(i, static_cast<std::int32_t>(static_cast<std::int64_t>(added_) -
                                         2 * negatives));
  }
  return out;
}

}  // namespace lehdc::hv
