#include "hv/bitslice.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace lehdc::hv {

namespace {
constexpr std::size_t words_for(std::size_t dim) noexcept {
  return (dim + 63) / 64;
}

// Resolves all 64 lanes of one word at once: given the gathered per-plane
// bits of the lane counters, compute count > threshold per lane (gt) and
// count == threshold per lane (eq) by walking the planes from the most
// significant bit of max(plane_count, bit_width(threshold)) downwards —
// the bit-sliced analogue of integer comparison. Ties only matter for an
// even vote count, where the caller supplies the tie word.
inline std::uint64_t majority_word(const std::uint64_t* lane_planes,
                                   std::size_t plane_count,
                                   std::size_t threshold, bool can_tie,
                                   std::uint64_t tie_word) noexcept {
  std::size_t bits = std::bit_width(threshold);
  if (bits < plane_count) {
    bits = plane_count;
  }
  std::uint64_t gt = 0;
  std::uint64_t eq = ~std::uint64_t{0};
  for (std::size_t p = bits; p-- > 0;) {
    const std::uint64_t plane = p < plane_count ? lane_planes[p] : 0;
    if ((threshold >> p) & 1u) {
      eq &= plane;
    } else {
      gt |= eq & plane;
      eq &= ~plane;
    }
  }
  return can_tie ? gt | (eq & tie_word) : gt;
}
}  // namespace

void majority_words(const std::uint64_t* planes, std::size_t plane_count,
                    std::size_t words, std::size_t added,
                    const std::uint64_t* tie_break, std::uint64_t* out) {
  util::expects(added > 0, "majority over zero votes");
  const bool can_tie = (added % 2 == 0);
  const std::size_t threshold = added / 2;
  std::uint64_t lanes[64];
  for (std::size_t w = 0; w < words; ++w) {
    for (std::size_t p = 0; p < plane_count; ++p) {
      lanes[p] = planes[p * words + w];
    }
    out[w] = majority_word(lanes, plane_count, threshold, can_tie,
                           can_tie ? tie_break[w] : 0);
  }
}

void WordBlockAccumulator::reset(std::size_t words) {
  words_ = words;
  added_ = 0;
  plane_count_ = 0;
  carry_.resize(words);
}

void WordBlockAccumulator::add(const std::uint64_t* block) {
  // Same ripple carry-save addition as BitSliceAccumulator::add, but over
  // the contiguous plane buffer and the reusable carry scratch.
  std::copy(block, block + words_, carry_.begin());
  for (std::size_t p = 0; p < plane_count_; ++p) {
    std::uint64_t* plane = planes_.data() + p * words_;
    std::uint64_t any_carry = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t sum = plane[w] ^ carry_[w];
      const std::uint64_t out = plane[w] & carry_[w];
      plane[w] = sum;
      carry_[w] = out;
      any_carry |= out;
    }
    if (any_carry == 0) {
      ++added_;
      return;
    }
  }
  planes_.resize((plane_count_ + 1) * words_);
  std::copy(carry_.begin(), carry_.end(),
            planes_.begin() + static_cast<std::ptrdiff_t>(plane_count_ * words_));
  ++plane_count_;
  ++added_;
}

void WordBlockAccumulator::majority(const std::uint64_t* tie_break,
                                    std::uint64_t* out) const {
  majority_words(planes_.data(), plane_count_, words_, added_, tie_break, out);
}

BitSliceAccumulator::BitSliceAccumulator(std::size_t dim)
    : dim_(dim), words_(words_for(dim)) {}

void BitSliceAccumulator::reset() noexcept {
  planes_.clear();
  added_ = 0;
}

void BitSliceAccumulator::add(const BitVector& hv) {
  util::expects(hv.dim() == dim_, "accumulator dimension mismatch");
  const auto input = hv.words();
  // Ripple carry-save add: carry starts as the incoming bits and propagates
  // up the planes; a new plane is allocated only when a carry escapes the
  // current most significant plane.
  std::vector<std::uint64_t> carry(input.begin(), input.end());
  carry.resize(words_, 0);
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    bool any_carry = false;
    auto& plane = planes_[p];
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t sum = plane[w] ^ carry[w];
      const std::uint64_t out = plane[w] & carry[w];
      plane[w] = sum;
      carry[w] = out;
      any_carry |= (out != 0);
    }
    if (!any_carry) {
      ++added_;
      return;
    }
  }
  // A carry escaped every existing plane: the escaping carries become the
  // new most significant plane.
  planes_.push_back(std::move(carry));
  ++added_;
}

std::size_t BitSliceAccumulator::count(std::size_t i) const {
  util::expects(i < dim_, "component index out of range");
  const std::size_t w = i / 64;
  const std::size_t b = i % 64;
  std::size_t value = 0;
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    value |= static_cast<std::size_t>((planes_[p][w] >> b) & 1u) << p;
  }
  return value;
}

BitVector BitSliceAccumulator::majority(const BitVector& tie_break) const {
  util::expects(added_ > 0, "majority of an empty accumulator");
  util::expects(tie_break.dim() == dim_, "tie-break dimension mismatch");
  BitVector out(dim_);
  // Word-parallel threshold compare: all 64 counters of a word resolve in
  // O(plane_count) ops. Lanes past dim_ hold count 0 and tie_break's tail
  // bits are zero, so the output tail stays zero without masking.
  const bool can_tie = (added_ % 2 == 0);
  const std::size_t threshold = added_ / 2;
  const auto out_words = out.words();
  const auto tie_words = tie_break.words();
  std::uint64_t lanes[64];
  for (std::size_t w = 0; w < words_; ++w) {
    for (std::size_t p = 0; p < planes_.size(); ++p) {
      lanes[p] = planes_[p][w];
    }
    out_words[w] = majority_word(lanes, planes_.size(), threshold, can_tie,
                                 can_tie ? tie_words[w] : 0);
  }
  return out;
}

IntVector BitSliceAccumulator::to_int_vector() const {
  IntVector out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const auto negatives = static_cast<std::int64_t>(count(i));
    out.set(i, static_cast<std::int32_t>(static_cast<std::int64_t>(added_) -
                                         2 * negatives));
  }
  return out;
}

}  // namespace lehdc::hv
