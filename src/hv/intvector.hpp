// Non-binary (integer) hypervectors.
//
// These serve two roles from the paper:
//   * the accumulator used by basic training (Eq. 2) before the sgn()
//     binarization, and
//   * the non-binary class hypervectors C_nb kept alongside binary ones by
//     the retraining strategy (Eq. 3 / Fig. 2).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "hv/bitvector.hpp"
#include "util/rng.hpp"

namespace lehdc::hv {

class IntVector {
 public:
  explicit IntVector(std::size_t dim = 0);

  /// Builds from a bipolar hypervector (each component becomes ±1).
  explicit IntVector(const BitVector& bits);

  [[nodiscard]] std::size_t dim() const noexcept { return values_.size(); }

  [[nodiscard]] std::int32_t get(std::size_t i) const;
  void set(std::size_t i, std::int32_t value);

  [[nodiscard]] std::span<const std::int32_t> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<std::int32_t> values() noexcept { return values_; }

  /// *this += bits (component-wise ±1). Precondition: equal dimensions.
  void add(const BitVector& bits);

  /// *this -= bits. Precondition: equal dimensions.
  void subtract(const BitVector& bits);

  /// *this += scale * bits — the retraining update of Eq. 3 with learning
  /// rate folded into `scale`. Precondition: equal dimensions.
  void add_scaled(const BitVector& bits, std::int32_t scale);

  /// *this += other (integer vector addition). Precondition: equal dims.
  void add(const IntVector& other);

  /// Binarization sgn(·) of Eq. 2 / Eq. 8. Zero components are tie-broken
  /// by the corresponding component of `tie_break` (the paper assigns
  /// sgn(0) randomly; a fixed random hypervector keeps it reproducible).
  [[nodiscard]] BitVector sign(const BitVector& tie_break) const;

  /// Binarization with deterministic +1 tie-break.
  [[nodiscard]] BitVector sign() const;

  /// Integer dot product with a bipolar hypervector.
  [[nodiscard]] std::int64_t dot(const BitVector& bits) const;

  /// Cosine similarity with a bipolar hypervector; 0 if either is zero.
  [[nodiscard]] double cosine(const BitVector& bits) const;

  /// l2 norm.
  [[nodiscard]] double norm() const noexcept;

  bool operator==(const IntVector& other) const noexcept = default;

 private:
  std::vector<std::int32_t> values_;
};

/// Cosine similarity between two integer hypervectors; 0 if either is zero.
[[nodiscard]] double cosine(const IntVector& a, const IntVector& b);

}  // namespace lehdc::hv
