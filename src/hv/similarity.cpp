#include "hv/similarity.hpp"

#include "util/check.hpp"

namespace lehdc::hv {

double normalized_hamming(const BitVector& a, const BitVector& b) {
  util::expects(a.dim() > 0, "similarity of zero-dimensional hypervectors");
  return static_cast<double>(BitVector::hamming(a, b)) /
         static_cast<double>(a.dim());
}

double cosine(const BitVector& a, const BitVector& b) {
  return 1.0 - 2.0 * normalized_hamming(a, b);
}

}  // namespace lehdc::hv
