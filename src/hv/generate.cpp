#include "hv/generate.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lehdc::hv {

std::vector<BitVector> random_set(std::size_t count, std::size_t dim,
                                  util::Rng& rng) {
  std::vector<BitVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(BitVector::random(dim, rng));
  }
  return out;
}

std::vector<BitVector> level_set(std::size_t levels, std::size_t dim,
                                 util::Rng& rng) {
  util::expects(levels >= 2, "a level set needs at least two levels");
  util::expects(dim >= levels, "dimension must be at least the level count");

  // To make Hamm(V_i, V_j) exactly proportional to |i − j|, flip a disjoint
  // slice of a random permutation of D/2 positions at each step; flipping
  // disjoint position sets guarantees distances add up along the chain.
  std::vector<std::size_t> positions(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    positions[i] = i;
  }
  rng.shuffle(positions.begin(), positions.end());

  const std::size_t total_flips = dim / 2;
  const std::size_t steps = levels - 1;

  std::vector<BitVector> out;
  out.reserve(levels);
  out.push_back(BitVector::random(dim, rng));
  std::size_t consumed = 0;
  for (std::size_t step = 1; step <= steps; ++step) {
    // Distribute total_flips as evenly as possible over the steps.
    const std::size_t target = (total_flips * step) / steps;
    BitVector next = out.back();
    while (consumed < target) {
      next.flip(positions[consumed]);
      ++consumed;
    }
    out.push_back(std::move(next));
  }
  return out;
}

}  // namespace lehdc::hv
