// Hypervector set generation (Sec. 2 of the paper).
//
//  * Orthogonal sets: i.i.d. random hypervectors are quasi-orthogonal in
//    high dimension (normalized Hamming ≈ 0.5) — used for feature position
//    hypervectors 𝓕.
//  * Level (correlated) sets: consecutive levels differ by a fixed number of
//    flipped components so that Hamm(V_a, V_b) ∝ |a − b| — used for feature
//    value hypervectors 𝓥.
#pragma once

#include <cstddef>
#include <vector>

#include "hv/bitvector.hpp"
#include "util/rng.hpp"

namespace lehdc::hv {

/// `count` independent random hypervectors of dimension `dim`.
[[nodiscard]] std::vector<BitVector> random_set(std::size_t count,
                                                std::size_t dim,
                                                util::Rng& rng);

/// `levels` hypervectors where level 0 is random and each subsequent level
/// flips ~D/(2·(levels−1)) fresh components of its predecessor, giving
/// Hamm(V_0, V_{levels−1}) ≈ 0.5 and Hamm(V_i, V_j) approximately
/// proportional to |i − j| (the correlation property of Sec. 2).
/// Preconditions: levels >= 2, dim >= levels.
[[nodiscard]] std::vector<BitVector> level_set(std::size_t levels,
                                               std::size_t dim,
                                               util::Rng& rng);

}  // namespace lehdc::hv
