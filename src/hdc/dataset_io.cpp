#include "hdc/dataset_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace lehdc::hdc {

namespace {

constexpr char kMagic[4] = {'L', 'H', 'D', 'D'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value, const std::string& path) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error("truncated dataset cache: " + path);
  }
}

}  // namespace

void save_encoded_dataset(const EncodedDataset& dataset,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open dataset cache for writing: " +
                             path);
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(dataset.dim()));
  write_pod(out, static_cast<std::uint64_t>(dataset.class_count()));
  write_pod(out, static_cast<std::uint64_t>(dataset.size()));
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    write_pod(out, static_cast<std::int32_t>(dataset.label(i)));
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto words = dataset.hypervector(i).words();
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(words.size() * sizeof(words[0])));
  }
  if (!out) {
    throw std::runtime_error("failed writing dataset cache: " + path);
  }
}

EncodedDataset load_encoded_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open dataset cache: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a LHDD dataset cache: " + path);
  }
  std::uint32_t version = 0;
  read_pod(in, version, path);
  if (version != kVersion) {
    throw std::runtime_error("unsupported dataset cache version in " + path);
  }
  std::uint64_t dim = 0;
  std::uint64_t class_count = 0;
  std::uint64_t size = 0;
  read_pod(in, dim, path);
  read_pod(in, class_count, path);
  read_pod(in, size, path);
  if (dim == 0 || class_count == 0) {
    throw std::runtime_error("degenerate dataset cache header in " + path);
  }

  std::vector<std::int32_t> labels(size);
  for (auto& label : labels) {
    read_pod(in, label, path);
  }

  EncodedDataset out(dim, class_count);
  for (std::uint64_t i = 0; i < size; ++i) {
    hv::BitVector hv(dim);
    const auto words = hv.words();
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(words[0])));
    if (!in) {
      throw std::runtime_error("truncated dataset cache payload in " + path);
    }
    out.add(std::move(hv), labels[i]);
  }
  return out;
}

}  // namespace lehdc::hdc
