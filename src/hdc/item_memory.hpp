// Item memories (Sec. 2): the random hypervector codebooks an HDC encoder
// draws from.
//
//  * PositionMemory 𝓕 — one quasi-orthogonal hypervector per feature
//    position (Hamm(𝓕_i, 𝓕_j) ≈ 0.5 for i ≠ j).
//  * LevelMemory 𝓥 — one hypervector per quantized feature value with
//    Hamm(𝓥_a, 𝓥_b) ∝ |a − b| (correlated codebook).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hv/bitvector.hpp"
#include "hv/generate.hpp"
#include "util/rng.hpp"

namespace lehdc::hdc {

/// Feature position codebook 𝓕.
///
/// Rows are generated sequentially from one seeded stream, one rng.next()
/// per packed storage word (BitVector::randomize). The generator state is
/// snapshotted before each row, so any row's words can be *rematerialized*
/// bit-identically later by replaying draws from its snapshot — the fused
/// block-encode path regenerates position words on the fly from row_state()
/// instead of streaming the stored rows from RAM.
class PositionMemory {
 public:
  /// Generates `feature_count` independent random hypervectors.
  PositionMemory(std::size_t feature_count, std::size_t dim,
                 std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Hypervector for feature position i. Precondition: i < size().
  [[nodiscard]] const hv::BitVector& at(std::size_t i) const;

  /// Generator state captured immediately before row i was drawn. Replaying
  /// word_count() next() calls from it (and masking the tail word) rebuilds
  /// at(i)'s words exactly. Precondition: i < size().
  [[nodiscard]] const util::Rng::State& row_state(std::size_t i) const;

 private:
  std::size_t dim_;
  std::vector<hv::BitVector> items_;
  std::vector<util::Rng::State> row_states_;
};

/// Feature value codebook 𝓥 with a linear quantizer over [lo, hi].
class LevelMemory {
 public:
  /// Generates a chain of `levels` correlated hypervectors covering the
  /// value range [lo, hi]. Preconditions: levels >= 2, lo < hi.
  LevelMemory(std::size_t levels, std::size_t dim, float lo, float hi,
              std::uint64_t seed);

  [[nodiscard]] std::size_t levels() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] float range_lo() const noexcept { return lo_; }
  [[nodiscard]] float range_hi() const noexcept { return hi_; }

  /// Level index for a raw feature value; values outside [lo, hi] clamp to
  /// the boundary levels.
  [[nodiscard]] std::size_t quantize(float value) const noexcept;

  /// Hypervector for level index q. Precondition: q < levels().
  [[nodiscard]] const hv::BitVector& at(std::size_t q) const;

  /// Hypervector for a raw feature value (quantize + lookup).
  [[nodiscard]] const hv::BitVector& for_value(float value) const noexcept;

 private:
  std::size_t dim_;
  float lo_;
  float hi_;
  std::vector<hv::BitVector> items_;
};

}  // namespace lehdc::hdc
