#include "hdc/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace lehdc::hdc {

namespace {

constexpr char kMagic[4] = {'L', 'H', 'D', 'C'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value, const std::string& context) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error("truncated model data: " + context);
  }
}

}  // namespace

void write_classifier(std::ostream& out, const BinaryClassifier& classifier) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(classifier.dim()));
  write_pod(out, static_cast<std::uint64_t>(classifier.class_count()));
  for (std::size_t k = 0; k < classifier.class_count(); ++k) {
    const auto words = classifier.class_hypervector(k).words();
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(words.size() * sizeof(words[0])));
  }
}

BinaryClassifier read_classifier(std::istream& in,
                                 const std::string& context) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a LHDC model payload: " + context);
  }
  std::uint32_t version = 0;
  read_pod(in, version, context);
  if (version != kVersion) {
    throw std::runtime_error("unsupported model version in " + context);
  }
  std::uint64_t dim = 0;
  std::uint64_t class_count = 0;
  read_pod(in, dim, context);
  read_pod(in, class_count, context);
  if (dim == 0 || class_count == 0) {
    throw std::runtime_error("degenerate model header in " + context);
  }

  std::vector<hv::BitVector> classes;
  classes.reserve(class_count);
  for (std::uint64_t k = 0; k < class_count; ++k) {
    hv::BitVector hv(dim);
    const auto words = hv.words();
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(words[0])));
    if (!in) {
      throw std::runtime_error("truncated model payload in " + context);
    }
    classes.push_back(std::move(hv));
  }
  return BinaryClassifier(std::move(classes));
}

void save_classifier(const BinaryClassifier& classifier,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open model file for writing: " + path);
  }
  write_classifier(out, classifier);
  if (!out) {
    throw std::runtime_error("failed writing model file: " + path);
  }
}

BinaryClassifier load_classifier(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open model file: " + path);
  }
  return read_classifier(in, path);
}

namespace {
constexpr char kEnsembleMagic[4] = {'L', 'H', 'D', 'E'};
}  // namespace

void save_ensemble(const EnsembleClassifier& classifier,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open ensemble file for writing: " +
                             path);
  }
  out.write(kEnsembleMagic, sizeof(kEnsembleMagic));
  write_pod(out, kVersion);
  const auto& models = classifier.models();
  const std::uint64_t dim = models.front().front().dim();
  write_pod(out, dim);
  write_pod(out, static_cast<std::uint64_t>(classifier.class_count()));
  write_pod(out, static_cast<std::uint64_t>(classifier.models_per_class()));
  for (const auto& class_models : models) {
    for (const auto& model : class_models) {
      const auto words = model.words();
      out.write(
          reinterpret_cast<const char*>(words.data()),
          static_cast<std::streamsize>(words.size() * sizeof(words[0])));
    }
  }
  if (!out) {
    throw std::runtime_error("failed writing ensemble file: " + path);
  }
}

EnsembleClassifier load_ensemble(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open ensemble file: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kEnsembleMagic, sizeof(kEnsembleMagic)) !=
                 0) {
    throw std::runtime_error("not a LHDE ensemble file: " + path);
  }
  std::uint32_t version = 0;
  read_pod(in, version, path);
  if (version != kVersion) {
    throw std::runtime_error("unsupported ensemble version in " + path);
  }
  std::uint64_t dim = 0;
  std::uint64_t classes = 0;
  std::uint64_t per_class = 0;
  read_pod(in, dim, path);
  read_pod(in, classes, path);
  read_pod(in, per_class, path);
  if (dim == 0 || classes == 0 || per_class == 0) {
    throw std::runtime_error("degenerate ensemble header in " + path);
  }

  std::vector<std::vector<hv::BitVector>> models(classes);
  for (auto& class_models : models) {
    class_models.reserve(per_class);
    for (std::uint64_t m = 0; m < per_class; ++m) {
      hv::BitVector hv(dim);
      const auto words = hv.words();
      in.read(
          reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(words.size() * sizeof(words[0])));
      if (!in) {
        throw std::runtime_error("truncated ensemble payload in " + path);
      }
      class_models.push_back(std::move(hv));
    }
  }
  return EnsembleClassifier(std::move(models));
}

}  // namespace lehdc::hdc
