#include "hdc/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/fileio.hpp"
#include "util/serial.hpp"

namespace lehdc::hdc {

namespace {

obs::Histogram& io_save_histogram() {
  static obs::Histogram& histogram =
      obs::Registry::global().histogram("io.model_save_seconds");
  return histogram;
}

obs::Histogram& io_load_histogram() {
  static obs::Histogram& histogram =
      obs::Registry::global().histogram("io.model_load_seconds");
  return histogram;
}

}  // namespace

namespace {

constexpr char kMagic[4] = {'L', 'H', 'D', 'C'};
constexpr char kEnsembleMagic[4] = {'L', 'H', 'D', 'E'};
constexpr std::uint32_t kVersion = 2;

// Largest payload a well-formed header can declare. Even a paper-scale
// ensemble (10 classes x 64 models x D=10,000) is ~8 MiB; 2 GiB leaves two
// orders of magnitude of headroom while keeping a corrupt length field
// from triggering a near-OOM allocation.
constexpr std::size_t kMaxPayload = std::size_t{1} << 31;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value, const std::string& context) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error("truncated model data: " + context);
  }
}

void append_words(util::PayloadWriter& payload, const hv::BitVector& hv) {
  const auto words = hv.words();
  payload.bytes(words.data(), words.size() * sizeof(words[0]));
}

hv::BitVector read_words(util::PayloadReader& reader, std::uint64_t dim) {
  hv::BitVector hv(dim);
  const auto words = hv.words();
  reader.bytes(words.data(), words.size() * sizeof(words[0]));
  return hv;
}

/// v1 (pre-checksum) classifier payload: read straight off the stream.
BinaryClassifier read_classifier_v1(std::istream& in,
                                    const std::string& context) {
  std::uint64_t dim = 0;
  std::uint64_t class_count = 0;
  read_pod(in, dim, context);
  read_pod(in, class_count, context);
  if (dim == 0 || class_count == 0) {
    throw std::runtime_error("degenerate model header in " + context);
  }

  std::vector<hv::BitVector> classes;
  classes.reserve(class_count);
  for (std::uint64_t k = 0; k < class_count; ++k) {
    hv::BitVector hv(dim);
    const auto words = hv.words();
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(words[0])));
    if (!in) {
      throw std::runtime_error("truncated model payload in " + context);
    }
    classes.push_back(std::move(hv));
  }
  return BinaryClassifier(std::move(classes));
}

}  // namespace

void write_classifier(std::ostream& out, const BinaryClassifier& classifier) {
  util::PayloadWriter payload;
  payload.pod(static_cast<std::uint64_t>(classifier.dim()));
  payload.pod(static_cast<std::uint64_t>(classifier.class_count()));
  for (std::size_t k = 0; k < classifier.class_count(); ++k) {
    append_words(payload, classifier.class_hypervector(k));
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  util::write_framed_payload(out, payload.str());
}

BinaryClassifier read_classifier(std::istream& in,
                                 const std::string& context) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a LHDC model payload: " + context);
  }
  std::uint32_t version = 0;
  read_pod(in, version, context);
  if (version == 1) {
    return read_classifier_v1(in, context);
  }
  if (version != kVersion) {
    throw std::runtime_error("unsupported model version in " + context);
  }

  const std::string payload =
      util::read_framed_payload(in, kMaxPayload, context);
  util::PayloadReader reader(payload, context);
  const auto dim = reader.pod<std::uint64_t>();
  const auto class_count = reader.pod<std::uint64_t>();
  if (dim == 0 || class_count == 0) {
    throw std::runtime_error("degenerate model header in " + context);
  }
  // The header must account for exactly the bytes that follow — checked
  // before any dim-sized allocation happens.
  const std::uint64_t remaining = reader.remaining();
  if (dim > remaining * 8 ||
      class_count > remaining / (((dim + 63) / 64) * sizeof(std::uint64_t))) {
    throw std::runtime_error("model header disagrees with payload size in " +
                             context);
  }
  std::vector<hv::BitVector> classes;
  classes.reserve(class_count);
  for (std::uint64_t k = 0; k < class_count; ++k) {
    classes.push_back(read_words(reader, dim));
  }
  reader.expect_done();
  return BinaryClassifier(std::move(classes));
}

void save_classifier(const BinaryClassifier& classifier,
                     const std::string& path) {
  const obs::ScopedTimer io_timer(io_save_histogram());
  std::ostringstream buffer(std::ios::binary);
  write_classifier(buffer, classifier);
  util::atomic_write_file(path, buffer.view());
}

BinaryClassifier load_classifier(const std::string& path) {
  const obs::ScopedTimer io_timer(io_load_histogram());
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open model file: " + path);
  }
  return read_classifier(in, path);
}

void save_ensemble(const EnsembleClassifier& classifier,
                   const std::string& path) {
  const obs::ScopedTimer io_timer(io_save_histogram());
  const auto& models = classifier.models();
  util::PayloadWriter payload;
  payload.pod(static_cast<std::uint64_t>(models.front().front().dim()));
  payload.pod(static_cast<std::uint64_t>(classifier.class_count()));
  payload.pod(static_cast<std::uint64_t>(classifier.models_per_class()));
  for (const auto& class_models : models) {
    for (const auto& model : class_models) {
      append_words(payload, model);
    }
  }

  std::ostringstream buffer(std::ios::binary);
  buffer.write(kEnsembleMagic, sizeof(kEnsembleMagic));
  write_pod(buffer, kVersion);
  util::write_framed_payload(buffer, payload.str());
  util::atomic_write_file(path, buffer.view());
}

namespace {

EnsembleClassifier read_ensemble_v1(std::istream& in,
                                    const std::string& path) {
  std::uint64_t dim = 0;
  std::uint64_t classes = 0;
  std::uint64_t per_class = 0;
  read_pod(in, dim, path);
  read_pod(in, classes, path);
  read_pod(in, per_class, path);
  if (dim == 0 || classes == 0 || per_class == 0) {
    throw std::runtime_error("degenerate ensemble header in " + path);
  }

  std::vector<std::vector<hv::BitVector>> models(classes);
  for (auto& class_models : models) {
    class_models.reserve(per_class);
    for (std::uint64_t m = 0; m < per_class; ++m) {
      hv::BitVector hv(dim);
      const auto words = hv.words();
      in.read(
          reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(words.size() * sizeof(words[0])));
      if (!in) {
        throw std::runtime_error("truncated ensemble payload in " + path);
      }
      class_models.push_back(std::move(hv));
    }
  }
  return EnsembleClassifier(std::move(models));
}

}  // namespace

EnsembleClassifier load_ensemble(const std::string& path) {
  const obs::ScopedTimer io_timer(io_load_histogram());
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open ensemble file: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kEnsembleMagic, sizeof(kEnsembleMagic)) !=
                 0) {
    throw std::runtime_error("not a LHDE ensemble file: " + path);
  }
  std::uint32_t version = 0;
  read_pod(in, version, path);
  if (version == 1) {
    return read_ensemble_v1(in, path);
  }
  if (version != kVersion) {
    throw std::runtime_error("unsupported ensemble version in " + path);
  }

  const std::string payload = util::read_framed_payload(in, kMaxPayload, path);
  util::PayloadReader reader(payload, path);
  const auto dim = reader.pod<std::uint64_t>();
  const auto classes = reader.pod<std::uint64_t>();
  const auto per_class = reader.pod<std::uint64_t>();
  if (dim == 0 || classes == 0 || per_class == 0) {
    throw std::runtime_error("degenerate ensemble header in " + path);
  }
  const std::uint64_t remaining = reader.remaining();
  if (dim > remaining * 8 || classes > remaining || per_class > remaining ||
      classes * per_class >
          remaining / (((dim + 63) / 64) * sizeof(std::uint64_t))) {
    throw std::runtime_error(
        "ensemble header disagrees with payload size in " + path);
  }
  std::vector<std::vector<hv::BitVector>> models(classes);
  for (auto& class_models : models) {
    class_models.reserve(per_class);
    for (std::uint64_t m = 0; m < per_class; ++m) {
      class_models.push_back(read_words(reader, dim));
    }
  }
  reader.expect_done();
  return EnsembleClassifier(std::move(models));
}

}  // namespace lehdc::hdc
