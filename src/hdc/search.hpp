// Ranked similarity search and prediction confidence.
//
// predict() returns only the argmax; deployed systems usually also want
// the ranked alternatives and a confidence signal so low-margin queries can
// be rejected or escalated (the Sec. 3.2(2) discussion — samples "very
// close to the classification border" — is exactly the low-margin case
// this API exposes).
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/classifier.hpp"
#include "hv/bitvector.hpp"

namespace lehdc::hdc {

struct ScoredClass {
  int label = 0;
  std::int64_t dot = 0;                 // En(x)·c_k (the BNN output o_k)
  double normalized_hamming = 0.0;      // (D − dot) / (2D)
};

struct RankedPrediction {
  /// Classes sorted by descending similarity; front() is the prediction.
  std::vector<ScoredClass> ranking;

  /// Normalized margin in [0, 1]: (o_best − o_runner_up) / (2D). Zero means
  /// a tie — the classification-border case.
  double margin = 0.0;

  /// Softmax of the normalized similarities of the top class — a cheap
  /// monotone confidence proxy in (0, 1].
  double confidence = 0.0;

  [[nodiscard]] int label() const { return ranking.front().label; }
};

/// Scores the query against every class of the classifier and returns the
/// full ranking with margin/confidence. Preconditions: non-empty
/// classifier, matching dimension.
[[nodiscard]] RankedPrediction rank_classes(const BinaryClassifier& classifier,
                                            const hv::BitVector& query);

/// Top-k convenience: the k most similar classes (k clamped to K).
[[nodiscard]] std::vector<ScoredClass> top_k(
    const BinaryClassifier& classifier, const hv::BitVector& query,
    std::size_t k);

}  // namespace lehdc::hdc
