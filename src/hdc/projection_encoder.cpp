#include "hdc/projection_encoder.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::hdc {

ProjectionEncoder::ProjectionEncoder(const ProjectionEncoderConfig& config)
    : dim_(config.dim),
      feature_count_(config.feature_count),
      center_(config.center),
      tie_break_(config.dim) {
  util::expects(config.dim > 0, "projection dimension must be positive");
  util::expects(config.feature_count > 0,
                "projection encoder needs >= 1 feature");
  util::Rng rng(config.seed);
  rows_.reserve(dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    rows_.push_back(hv::BitVector::random(feature_count_, rng));
  }
  tie_break_.randomize(rng);
}

hv::BitVector ProjectionEncoder::encode(
    std::span<const float> features) const {
  util::expects(features.size() == feature_count_,
                "encode: feature width mismatch");
  // Centered copy so the sign threshold is meaningful for [0, 1] inputs.
  std::vector<float> centered(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    centered[i] = features[i] - center_;
  }

  hv::BitVector out(dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    const auto words = rows_[d].words();
    double sum = 0.0;
    for (std::size_t i = 0; i < centered.size(); ++i) {
      const bool negative = ((words[i / 64] >> (i % 64)) & 1u) != 0;
      sum += negative ? -centered[i] : centered[i];
    }
    if (sum < 0.0) {
      out.set_bit(d, true);
    } else if (sum == 0.0) {
      out.set_bit(d, tie_break_.get_bit(d));
    }
  }
  return out;
}

}  // namespace lehdc::hdc
