#include "hdc/search.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace lehdc::hdc {

RankedPrediction rank_classes(const BinaryClassifier& classifier,
                              const hv::BitVector& query) {
  util::expects(classifier.class_count() > 0, "rank on an empty classifier");
  util::expects(classifier.dim() == query.dim(),
                "query dimension mismatch");
  const auto dim = static_cast<double>(query.dim());

  RankedPrediction out;
  out.ranking.reserve(classifier.class_count());
  for (std::size_t k = 0; k < classifier.class_count(); ++k) {
    const std::int64_t dot =
        hv::BitVector::dot(query, classifier.class_hypervector(k));
    ScoredClass scored;
    scored.label = static_cast<int>(k);
    scored.dot = dot;
    scored.normalized_hamming =
        (dim - static_cast<double>(dot)) / (2.0 * dim);
    out.ranking.push_back(scored);
  }
  std::stable_sort(out.ranking.begin(), out.ranking.end(),
                   [](const ScoredClass& a, const ScoredClass& b) {
                     return a.dot > b.dot;
                   });

  if (out.ranking.size() >= 2) {
    out.margin = static_cast<double>(out.ranking[0].dot -
                                     out.ranking[1].dot) /
                 (2.0 * dim);
  } else {
    out.margin = 1.0;
  }

  // Softmax over cosine similarities (dot / D) — bounded inputs keep it
  // numerically trivial.
  double denom = 0.0;
  const double top = static_cast<double>(out.ranking[0].dot) / dim;
  for (const auto& scored : out.ranking) {
    denom += std::exp(static_cast<double>(scored.dot) / dim - top);
  }
  out.confidence = 1.0 / denom;
  return out;
}

std::vector<ScoredClass> top_k(const BinaryClassifier& classifier,
                               const hv::BitVector& query, std::size_t k) {
  RankedPrediction ranked = rank_classes(classifier, query);
  if (k < ranked.ranking.size()) {
    ranked.ranking.resize(k);
  }
  return std::move(ranked.ranking);
}

}  // namespace lehdc::hdc
