// Batch-first inference over the three classifier kinds.
//
// BatchScorer is the serving core the per-sample predict paths are now thin
// wrappers over: it flattens a classifier's hypervectors into row pointers
// once, owns reusable scratch buffers (no per-query allocation), and scores
// whole batches through the blocked kernels of hv/batch_score.hpp,
// parallelized over the batch on a util::ThreadPool. All reductions are
// chunk-deterministic: per-chunk partials are combined in chunk order, so
// results are bit-identical for every worker count, and bit-identical to
// the per-sample predict of each classifier kind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hdc/query_batch.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::hdc {

/// A reusable inference session bound to one classifier. The classifier
/// must outlive the session and stay unmodified while it is in use.
/// Safe for concurrent predict/score calls: scratch buffers are claimed per
/// parallel task from an internal free list.
class BatchScorer {
 public:
  /// Binds to a classifier; `pool` overrides the thread pool (nullptr means
  /// util::ThreadPool::global()).
  explicit BatchScorer(const BinaryClassifier& classifier,
                       util::ThreadPool* pool = nullptr);
  explicit BatchScorer(const EnsembleClassifier& classifier,
                       util::ThreadPool* pool = nullptr);
  explicit BatchScorer(const NonBinaryClassifier& classifier,
                       util::ThreadPool* pool = nullptr);
  ~BatchScorer();

  BatchScorer(const BatchScorer&) = delete;
  BatchScorer& operator=(const BatchScorer&) = delete;

  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_count_;
  }

  /// THE batched prediction entry point: classifies any QueryBatch view —
  /// already-encoded hypervectors, an EncodedDataset, or raw samples plus
  /// their encoder — bit-identically to the bound classifier's per-sample
  /// predict over per-sample encode, for every worker count and either
  /// encode path. Raw batches whose encoder is a BlockEncoder run blocked;
  /// on the rematerialized path against a binary/ensemble classifier the
  /// encode and score fuse per word range, so no hypervector ever
  /// materializes and the class rows stay cache-resident. `stats` (optional)
  /// receives per-stage seconds and encode bytes. Precondition:
  /// out.size() == queries.size().
  void predict_queries(const QueryBatch& queries, std::span<int> out,
                       PredictStats* stats = nullptr) const;

  /// Adapter: predict_queries over already-encoded hypervectors.
  void predict_batch(std::span<const hv::BitVector> queries,
                     std::span<int> out) const;

  /// Adapter: predict_queries over an encoded dataset.
  void predict_batch(const EncodedDataset& dataset, std::span<int> out) const;

  /// Row-major Q × class_count() bipolar dot scores (the BNN output vector
  /// o per query). For an ensemble, each class's score is the best score
  /// among its hypervectors. Unsupported for non-binary classifiers (their
  /// scores are cosines; use cosine_scores_batch). Precondition:
  /// out.size() == queries.size() * class_count().
  void scores_batch(std::span<const hv::BitVector> queries,
                    std::span<std::int64_t> out) const;

  /// Row-major Q × class_count() cosine scores of a non-binary classifier.
  void cosine_scores_batch(std::span<const hv::BitVector> queries,
                           std::span<double> out) const;

  /// Number of dataset samples whose prediction matches their label.
  /// Deterministic chunked reduction: invariant to the worker count.
  [[nodiscard]] std::size_t correct_count(const EncodedDataset& dataset) const;

  /// Fraction of correctly classified samples in [0, 1]; 0 on empty input.
  [[nodiscard]] double accuracy(const EncodedDataset& dataset) const;

 private:
  enum class Kind { kBinary, kEnsemble, kNonBinary };
  struct Scratch;

  // Queries [begin, end) of the batch scored serially with one scratch
  // buffer; the chunking layer above parallelizes calls to this.
  void predict_range(std::span<const hv::BitVector> queries,
                     std::size_t begin, std::size_t end, std::span<int> out,
                     Scratch& scratch) const;

  // Pre-encoded batches: the chunked predict_range parallel loop.
  void predict_encoded(std::span<const hv::BitVector> queries,
                       std::span<int> out, PredictStats* stats) const;

  // Raw batches, fused: per sample block, each rematerialized word range is
  // scored into per-row distance accumulators immediately (binary/ensemble
  // only — cosine scoring needs the full query vector).
  void predict_fused(const data::Dataset& dataset,
                     const BlockEncoder& encoder, std::span<int> out,
                     PredictStats* stats) const;

  // Raw batches, blocked: encode one block of hypervectors per worker
  // (through a cursor on `path` when the encoder supports it, else
  // per-sample encode()), score it, discard it.
  void predict_blocked(const data::Dataset& dataset, const Encoder& encoder,
                       EncodePath path, std::span<int> out,
                       PredictStats* stats) const;

  [[nodiscard]] double cosine_score(const hv::BitVector& query,
                                    std::size_t k) const;

  [[nodiscard]] std::unique_ptr<Scratch> acquire_scratch() const
      LEHDC_EXCLUDES(scratch_mutex_);
  void release_scratch(std::unique_ptr<Scratch> scratch) const
      LEHDC_EXCLUDES(scratch_mutex_);

  [[nodiscard]] util::ThreadPool& pool() const noexcept;

  Kind kind_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t class_count_ = 0;
  std::size_t dim_ = 0;

  // Binary/ensemble: every class hypervector flattened to row pointers in
  // (class, model) order — the per-sample scan order, so first-wins argmax
  // ties resolve identically.
  std::vector<const std::uint64_t*> rows_;
  // Ensemble: rows_[r] belongs to class row_class_[r]. Empty for binary
  // (row index == class).
  std::vector<int> row_class_;

  // Non-binary: the classifier (for its integer rows) plus each class
  // vector's precomputed cosine denominator ‖C_k‖·√D.
  const NonBinaryClassifier* nonbinary_ = nullptr;
  std::vector<double> norms_;

  // Reusable scratch, one buffer per in-flight parallel task.
  mutable util::Mutex scratch_mutex_;
  mutable std::vector<std::unique_ptr<Scratch>> free_scratch_
      LEHDC_GUARDED_BY(scratch_mutex_);
};

}  // namespace lehdc::hdc
