#include "hdc/classifier.hpp"

#include <atomic>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::hdc {

namespace {

template <typename PredictFn>
double accuracy_over(const EncodedDataset& dataset, PredictFn&& predict) {
  if (dataset.empty()) {
    return 0.0;
  }
  std::atomic<std::size_t> correct{0};
  util::parallel_for(0, dataset.size(), [&](std::size_t begin,
                                            std::size_t end) {
    std::size_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (predict(dataset.hypervector(i)) == dataset.label(i)) {
        ++local;
      }
    }
    correct.fetch_add(local, std::memory_order_relaxed);
  });
  return static_cast<double>(correct.load()) /
         static_cast<double>(dataset.size());
}

}  // namespace

BinaryClassifier::BinaryClassifier(
    std::vector<hv::BitVector> class_hypervectors)
    : classes_(std::move(class_hypervectors)) {
  util::expects(!classes_.empty(), "classifier needs at least one class");
  for (const auto& hv : classes_) {
    util::expects(hv.dim() == classes_.front().dim(),
                  "class hypervectors must share one dimension");
  }
}

const hv::BitVector& BinaryClassifier::class_hypervector(
    std::size_t k) const {
  util::expects(k < classes_.size(), "class index out of range");
  return classes_[k];
}

std::vector<std::int64_t> BinaryClassifier::scores(
    const hv::BitVector& query) const {
  std::vector<std::int64_t> out(classes_.size());
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    out[k] = hv::BitVector::dot(query, classes_[k]);
  }
  return out;
}

int BinaryClassifier::predict(const hv::BitVector& query) const {
  util::expects(!classes_.empty(), "predict on an empty classifier");
  int best = 0;
  std::int64_t best_score = hv::BitVector::dot(query, classes_[0]);
  for (std::size_t k = 1; k < classes_.size(); ++k) {
    const std::int64_t score = hv::BitVector::dot(query, classes_[k]);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double BinaryClassifier::accuracy(const EncodedDataset& dataset) const {
  return accuracy_over(dataset,
                       [this](const hv::BitVector& q) { return predict(q); });
}

EnsembleClassifier::EnsembleClassifier(
    std::vector<std::vector<hv::BitVector>> models)
    : models_(std::move(models)) {
  util::expects(!models_.empty(), "ensemble needs at least one class");
  const std::size_t per_class = models_.front().size();
  util::expects(per_class > 0, "ensemble needs >= 1 hypervector per class");
  for (const auto& class_models : models_) {
    util::expects(class_models.size() == per_class,
                  "all classes must hold the same number of hypervectors");
  }
}

int EnsembleClassifier::predict(const hv::BitVector& query,
                                std::size_t* best_model) const {
  util::expects(!models_.empty(), "predict on an empty ensemble");
  int best_class = 0;
  std::size_t best_index = 0;
  std::int64_t best_score = hv::BitVector::dot(query, models_[0][0]);
  for (std::size_t k = 0; k < models_.size(); ++k) {
    for (std::size_t m = 0; m < models_[k].size(); ++m) {
      if (k == 0 && m == 0) {
        continue;
      }
      const std::int64_t score = hv::BitVector::dot(query, models_[k][m]);
      if (score > best_score) {
        best_score = score;
        best_class = static_cast<int>(k);
        best_index = m;
      }
    }
  }
  if (best_model != nullptr) {
    *best_model = best_index;
  }
  return best_class;
}

double EnsembleClassifier::accuracy(const EncodedDataset& dataset) const {
  return accuracy_over(dataset,
                       [this](const hv::BitVector& q) { return predict(q); });
}

std::size_t EnsembleClassifier::storage_bits() const noexcept {
  std::size_t bits = 0;
  for (const auto& class_models : models_) {
    for (const auto& model : class_models) {
      bits += model.dim();
    }
  }
  return bits;
}

NonBinaryClassifier::NonBinaryClassifier(
    std::vector<hv::IntVector> class_vectors)
    : classes_(std::move(class_vectors)) {
  util::expects(!classes_.empty(), "classifier needs at least one class");
}

const hv::IntVector& NonBinaryClassifier::class_vector(std::size_t k) const {
  util::expects(k < classes_.size(), "class index out of range");
  return classes_[k];
}

int NonBinaryClassifier::predict(const hv::BitVector& query) const {
  util::expects(!classes_.empty(), "predict on an empty classifier");
  int best = 0;
  double best_score = classes_[0].cosine(query);
  for (std::size_t k = 1; k < classes_.size(); ++k) {
    const double score = classes_[k].cosine(query);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double NonBinaryClassifier::accuracy(const EncodedDataset& dataset) const {
  return accuracy_over(dataset,
                       [this](const hv::BitVector& q) { return predict(q); });
}

}  // namespace lehdc::hdc
