#include "hdc/classifier.hpp"

#include "hdc/batch_scorer.hpp"
#include "hv/batch_score.hpp"
#include "util/check.hpp"

namespace lehdc::hdc {

BinaryClassifier::BinaryClassifier(
    std::vector<hv::BitVector> class_hypervectors)
    : classes_(std::move(class_hypervectors)) {
  util::expects(!classes_.empty(), "classifier needs at least one class");
  for (const auto& hv : classes_) {
    util::expects(hv.dim() == classes_.front().dim(),
                  "class hypervectors must share one dimension");
  }
}

const hv::BitVector& BinaryClassifier::class_hypervector(
    std::size_t k) const {
  util::expects(k < classes_.size(), "class index out of range");
  return classes_[k];
}

std::vector<std::int64_t> BinaryClassifier::scores(
    const hv::BitVector& query) const {
  std::vector<std::int64_t> out(classes_.size());
  if (classes_.empty()) {
    return out;
  }
  std::vector<const std::uint64_t*> rows;
  rows.reserve(classes_.size());
  for (const auto& c : classes_) {
    rows.push_back(c.words().data());
  }
  hv::dot_rows(query.words().data(), rows, classes_.front().dim(), out);
  return out;
}

int BinaryClassifier::predict(const hv::BitVector& query) const {
  util::expects(!classes_.empty(), "predict on an empty classifier");
  return hv::argmax_dot(query, classes_);
}

double BinaryClassifier::accuracy(const EncodedDataset& dataset) const {
  return BatchScorer(*this).accuracy(dataset);
}

EnsembleClassifier::EnsembleClassifier(
    std::vector<std::vector<hv::BitVector>> models)
    : models_(std::move(models)) {
  util::expects(!models_.empty(), "ensemble needs at least one class");
  const std::size_t per_class = models_.front().size();
  util::expects(per_class > 0, "ensemble needs >= 1 hypervector per class");
  for (const auto& class_models : models_) {
    util::expects(class_models.size() == per_class,
                  "all classes must hold the same number of hypervectors");
  }
}

int EnsembleClassifier::predict(const hv::BitVector& query,
                                std::size_t* best_model) const {
  util::expects(!models_.empty(), "predict on an empty ensemble");
  int best_class = 0;
  std::size_t best_index = 0;
  std::int64_t best_score = hv::BitVector::dot(query, models_[0][0]);
  for (std::size_t k = 0; k < models_.size(); ++k) {
    for (std::size_t m = 0; m < models_[k].size(); ++m) {
      if (k == 0 && m == 0) {
        continue;
      }
      const std::int64_t score = hv::BitVector::dot(query, models_[k][m]);
      if (score > best_score) {
        best_score = score;
        best_class = static_cast<int>(k);
        best_index = m;
      }
    }
  }
  if (best_model != nullptr) {
    *best_model = best_index;
  }
  return best_class;
}

double EnsembleClassifier::accuracy(const EncodedDataset& dataset) const {
  return BatchScorer(*this).accuracy(dataset);
}

std::size_t EnsembleClassifier::storage_bits() const noexcept {
  std::size_t bits = 0;
  for (const auto& class_models : models_) {
    for (const auto& model : class_models) {
      bits += model.dim();
    }
  }
  return bits;
}

NonBinaryClassifier::NonBinaryClassifier(
    std::vector<hv::IntVector> class_vectors)
    : classes_(std::move(class_vectors)) {
  util::expects(!classes_.empty(), "classifier needs at least one class");
}

const hv::IntVector& NonBinaryClassifier::class_vector(std::size_t k) const {
  util::expects(k < classes_.size(), "class index out of range");
  return classes_[k];
}

int NonBinaryClassifier::predict(const hv::BitVector& query) const {
  util::expects(!classes_.empty(), "predict on an empty classifier");
  int best = 0;
  double best_score = classes_[0].cosine(query);
  for (std::size_t k = 1; k < classes_.size(); ++k) {
    const double score = classes_[k].cosine(query);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double NonBinaryClassifier::accuracy(const EncodedDataset& dataset) const {
  return BatchScorer(*this).accuracy(dataset);
}

}  // namespace lehdc::hdc
