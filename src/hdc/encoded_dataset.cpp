#include "hdc/encoded_dataset.hpp"

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::hdc {

void EncodedDataset::add(hv::BitVector hv, int label) {
  util::expects(hv.dim() == dim_, "hypervector dimension mismatch");
  util::expects(label >= 0 && static_cast<std::size_t>(label) < class_count_,
                "label out of range");
  hypervectors_.push_back(std::move(hv));
  labels_.push_back(label);
}

const hv::BitVector& EncodedDataset::hypervector(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return hypervectors_[i];
}

int EncodedDataset::label(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return labels_[i];
}

EncodedDataset encode_dataset(const Encoder& encoder,
                              const data::Dataset& dataset) {
  util::expects(encoder.feature_count() == dataset.feature_count(),
                "encoder/dataset feature width mismatch");
  static obs::Counter& sample_counter =
      obs::Registry::global().counter("encode.samples");
  static obs::Histogram& block_hist =
      obs::Registry::global().histogram("encode.block_seconds");

  const obs::TraceSpan span("encode.dataset");
  const std::size_t n = dataset.size();
  std::vector<hv::BitVector> encoded(n);
  util::parallel_for(0, n, [&](std::size_t begin, std::size_t end) {
    obs::ScopedTimer block_timer(block_hist);
    for (std::size_t i = begin; i < end; ++i) {
      encoded[i] = encoder.encode(dataset.sample(i));
    }
  });
  sample_counter.add(n);
  EncodedDataset out(encoder.dim(), dataset.class_count());
  for (std::size_t i = 0; i < n; ++i) {
    out.add(std::move(encoded[i]), dataset.label(i));
  }
  return out;
}

}  // namespace lehdc::hdc
