#include "hdc/encoded_dataset.hpp"

#include <algorithm>
#include <cstring>

#include "hdc/block_encoder.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::hdc {

void EncodedDataset::add(hv::BitVector hv, int label) {
  util::expects(hv.dim() == dim_, "hypervector dimension mismatch");
  util::expects(label >= 0 && static_cast<std::size_t>(label) < class_count_,
                "label out of range");
  hypervectors_.push_back(std::move(hv));
  labels_.push_back(label);
}

const hv::BitVector& EncodedDataset::hypervector(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return hypervectors_[i];
}

int EncodedDataset::label(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return labels_[i];
}

EncodedDataset encode_dataset(const Encoder& encoder,
                              const data::Dataset& dataset) {
  util::expects(encoder.feature_count() == dataset.feature_count(),
                "encoder/dataset feature width mismatch");
  static obs::Counter& sample_counter =
      obs::Registry::global().counter("encode.samples");
  static obs::Histogram& block_hist =
      obs::Registry::global().histogram("encode.block_seconds");

  const obs::TraceSpan span("encode.dataset");
  const std::size_t n = dataset.size();
  std::vector<hv::BitVector> encoded(n);
  const auto* block_encoder = dynamic_cast<const BlockEncoder*>(&encoder);
  if (block_encoder != nullptr && n > 0) {
    // Block path: each worker drives a cursor over blocks of samples, so the
    // item-memory words for a range are fetched (or rematerialized — the
    // cursor resolves kAuto per block) once per block, not once per sample.
    constexpr std::size_t kBlock = 64;
    const std::size_t word_count = block_encoder->word_count();
    const std::size_t blocks = (n + kBlock - 1) / kBlock;
    util::parallel_for(0, blocks, [&](std::size_t lo, std::size_t hi) {
      auto cursor = block_encoder->make_cursor(EncodePath::kAuto);
      std::vector<std::uint64_t> range_buf;
      for (std::size_t b = lo; b < hi; ++b) {
        obs::ScopedTimer block_timer(block_hist);
        const std::size_t begin = b * kBlock;
        const std::size_t end = std::min(n, begin + kBlock);
        const std::size_t count = end - begin;
        for (std::size_t i = begin; i < end; ++i) {
          encoded[i] = hv::BitVector(encoder.dim());
        }
        // Range-sized steps keep the cursor's item-memory working set
        // cache-resident even though the destination hypervectors persist.
        const std::size_t range_words =
            block_range_words(encoder.feature_count(), word_count);
        cursor->begin(dataset.rows(begin, count), count);
        range_buf.resize(count * range_words);
        std::size_t word_pos = 0;
        while (const std::size_t produced =
                   cursor->encode_words(range_words, range_buf)) {
          for (std::size_t s = 0; s < count; ++s) {
            std::memcpy(encoded[begin + s].words().data() + word_pos,
                        range_buf.data() + s * produced,
                        produced * sizeof(std::uint64_t));
          }
          word_pos += produced;
        }
      }
    });
  } else {
    util::parallel_for(0, n, [&](std::size_t begin, std::size_t end) {
      obs::ScopedTimer block_timer(block_hist);
      for (std::size_t i = begin; i < end; ++i) {
        encoded[i] = encoder.encode(dataset.sample(i));
      }
    });
  }
  sample_counter.add(n);
  EncodedDataset out(encoder.dim(), dataset.class_count());
  for (std::size_t i = 0; i < n; ++i) {
    out.add(std::move(encoded[i]), dataset.label(i));
  }
  return out;
}

}  // namespace lehdc::hdc
