// Block-encode surface: whole sample blocks, one word range at a time.
//
// Encoder::encode() is sample-at-a-time and materializes a full D-bit
// hypervector per call, which makes encoding memory-bandwidth bound: every
// sample streams the entire position item memory (N·D bits) through the
// cache. BlockEncoder turns the loop inside out. A cursor binds to a block
// of S samples and emits their packed hypervector words a word range at a
// time, so (a) the item-memory words for a range are loaded — or
// *rematerialized* from the stored RNG seeds, costing no memory traffic at
// all — once per block instead of once per sample, and (b) a consumer can
// score each word range against the class memory immediately and never hold
// more than an L2-sized slice of any hypervector (the fused encode→score
// kernel in BatchScorer). Both item-memory paths are bit-identical; the
// parity suite in tests/test_block_encode.cpp gates that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

namespace lehdc::hdc {

/// Which item-memory strategy a block encode uses.
enum class EncodePath {
  /// Pick per call: rematerialize for batches (resolve_encode_path), unless
  /// the LEHDC_ENCODE_PATH environment variable pins a path process-wide.
  kAuto,
  /// Stream the stored item-memory rows from RAM (the classic path; cheapest
  /// for single samples and tiny batches).
  kMaterialized,
  /// Regenerate item-memory words on the fly from the stored seeds —
  /// bit-identical to the stored rows, zero item-memory traffic.
  kRematerialized,
};

/// Streaming cursor over the packed hypervector words of a sample block.
/// Obtained from BlockEncoder::make_cursor and reusable across blocks:
/// begin() rebinds without allocation after the first block. Not thread
/// safe; use one cursor per worker.
class BlockEncodeCursor {
 public:
  virtual ~BlockEncodeCursor() = default;

  /// Binds to `count` samples stored row-major in `features` (the layout
  /// data::Dataset::rows returns) and rewinds to word 0. Precondition:
  /// features.size() == count * feature_count, count >= 1.
  virtual void begin(std::span<const float> features, std::size_t count) = 0;

  /// Encodes the next up-to-`words` packed words of every bound sample into
  /// `out`, tightly row-major: sample s's words land at out[s * produced].
  /// Returns `produced` — less than `words` only at the end of the
  /// hypervector, 0 once it is exhausted. Tail bits past the logical
  /// dimension are zero, matching BitVector's invariant. Precondition:
  /// out.size() >= count * min(words, words remaining).
  virtual std::size_t encode_words(std::size_t words,
                                   std::span<std::uint64_t> out) = 0;
};

/// Implemented by encoders that can emit word ranges of whole sample blocks
/// without materializing per-sample hypervectors (RecordEncoder today).
/// Consumers discover the capability with dynamic_cast from Encoder and
/// fall back to per-sample encode() otherwise.
class BlockEncoder {
 public:
  virtual ~BlockEncoder() = default;

  /// Packed words per encoded hypervector, ceil(dim / 64).
  [[nodiscard]] virtual std::size_t word_count() const noexcept = 0;

  /// Item-memory bytes one sample's encode streams from RAM on `path` when
  /// cursors process `block_samples` samples per begin(). The bytes/sample
  /// figure behind the encode.bytes_per_sample metric and the bench report.
  [[nodiscard]] virtual std::size_t encode_bytes_per_sample(
      EncodePath path, std::size_t block_samples) const noexcept = 0;

  /// A fresh cursor over this encoder. kAuto resolves per begin() via
  /// resolve_encode_path with the bound block's sample count.
  [[nodiscard]] virtual std::unique_ptr<BlockEncodeCursor> make_cursor(
      EncodePath path = EncodePath::kAuto) const = 0;
};

/// Words per encode_words() step that keep a cursor's item-memory working
/// set cache-resident: the per-range position scratch (feature_count rows ×
/// range words) is capped at 256 KiB, floored at 8 words, capped at the full
/// hypervector. At paper scale (N=784, D=10k) this yields 41-word ranges.
[[nodiscard]] std::size_t block_range_words(std::size_t feature_count,
                                            std::size_t word_count) noexcept;

/// Resolves kAuto against the LEHDC_ENCODE_PATH environment variable
/// ("materialized" | "rematerialized" | "auto", read once per process) and,
/// failing that, the batch size: rematerialization amortizes the regenerated
/// words over the samples of a block, so it wins for batches and loses for
/// near-single samples. Non-auto requests pass through unchanged.
[[nodiscard]] EncodePath resolve_encode_path(EncodePath requested,
                                             std::size_t samples);

}  // namespace lehdc::hdc
