#include "hdc/item_memory.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::hdc {

PositionMemory::PositionMemory(std::size_t feature_count, std::size_t dim,
                               std::uint64_t seed)
    : dim_(dim) {
  util::expects(feature_count > 0, "position memory needs >= 1 feature");
  util::expects(dim > 0, "position memory needs a positive dimension");
  util::Rng rng(seed);
  // Same draw sequence as hv::random_set, with the generator state captured
  // before each row so the row can be rematerialized later (see row_state).
  items_.reserve(feature_count);
  row_states_.reserve(feature_count);
  for (std::size_t i = 0; i < feature_count; ++i) {
    row_states_.push_back(rng.state());
    items_.push_back(hv::BitVector::random(dim, rng));
  }
}

const hv::BitVector& PositionMemory::at(std::size_t i) const {
  util::expects(i < items_.size(), "feature position out of range");
  return items_[i];
}

const util::Rng::State& PositionMemory::row_state(std::size_t i) const {
  util::expects(i < row_states_.size(), "feature position out of range");
  return row_states_[i];
}

LevelMemory::LevelMemory(std::size_t levels, std::size_t dim, float lo,
                         float hi, std::uint64_t seed)
    : dim_(dim), lo_(lo), hi_(hi) {
  util::expects(levels >= 2, "level memory needs at least two levels");
  util::expects(lo < hi, "level memory needs a non-empty value range");
  util::Rng rng(seed);
  items_ = hv::level_set(levels, dim, rng);
}

std::size_t LevelMemory::quantize(float value) const noexcept {
  if (value <= lo_) {
    return 0;
  }
  if (value >= hi_) {
    return items_.size() - 1;
  }
  const double t = (static_cast<double>(value) - lo_) / (hi_ - lo_);
  const auto q = static_cast<std::size_t>(
      t * static_cast<double>(items_.size()));
  return q >= items_.size() ? items_.size() - 1 : q;
}

const hv::BitVector& LevelMemory::at(std::size_t q) const {
  util::expects(q < items_.size(), "level index out of range");
  return items_[q];
}

const hv::BitVector& LevelMemory::for_value(float value) const noexcept {
  return items_[quantize(value)];
}

}  // namespace lehdc::hdc
