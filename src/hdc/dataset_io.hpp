// Encoded-dataset caching.
//
// Encoding dominates wall time at paper scale (60k samples × 784 features
// × D = 10,000). Since every training strategy consumes identical encoded
// hypervectors, the harnesses can encode once, persist the cache, and
// re-run any number of training experiments against it.
//
// Format (little-endian):
//   magic "LHDD" | u32 version | u64 dim | u64 class_count | u64 size
//   | size x i32 labels | size x packed hypervector payloads
#pragma once

#include <string>

#include "hdc/encoded_dataset.hpp"

namespace lehdc::hdc {

/// Writes the encoded dataset; throws std::runtime_error on I/O failure.
void save_encoded_dataset(const EncodedDataset& dataset,
                          const std::string& path);

/// Reads a cache back; throws std::runtime_error on I/O failure or a
/// malformed file.
[[nodiscard]] EncodedDataset load_encoded_dataset(const std::string& path);

}  // namespace lehdc::hdc
