#include "hdc/nonbinary_encoding.hpp"

#include <cmath>
#include <numeric>

#include "hv/bitslice.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::hdc {

hv::IntVector encode_record_nonbinary(const RecordEncoder& encoder,
                                      std::span<const float> features) {
  util::expects(features.size() == encoder.feature_count(),
                "encode: feature width mismatch");
  hv::BitSliceAccumulator accumulator(encoder.dim());
  hv::BitVector bound(encoder.dim());
  for (std::size_t i = 0; i < features.size(); ++i) {
    const auto& position = encoder.positions().at(i);
    const auto& level = encoder.levels().for_value(features[i]);
    const auto pos_words = position.words();
    const auto lvl_words = level.words();
    const auto out_words = bound.words();
    for (std::size_t w = 0; w < out_words.size(); ++w) {
      out_words[w] = pos_words[w] ^ lvl_words[w];
    }
    accumulator.add(bound);
  }
  return accumulator.to_int_vector();
}

void NonBinaryEncodedDataset::add(hv::IntVector code, int label) {
  util::expects(code.dim() == dim_, "code dimension mismatch");
  util::expects(label >= 0 && static_cast<std::size_t>(label) < class_count_,
                "label out of range");
  codes_.push_back(std::move(code));
  labels_.push_back(label);
}

const hv::IntVector& NonBinaryEncodedDataset::code(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return codes_[i];
}

int NonBinaryEncodedDataset::label(std::size_t i) const {
  util::expects(i < size(), "sample index out of range");
  return labels_[i];
}

NonBinaryEncodedDataset encode_dataset_nonbinary(
    const RecordEncoder& encoder, const data::Dataset& dataset) {
  util::expects(encoder.feature_count() == dataset.feature_count(),
                "encoder/dataset feature width mismatch");
  const std::size_t n = dataset.size();
  std::vector<hv::IntVector> codes(n);
  util::parallel_for(0, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      codes[i] = encode_record_nonbinary(encoder, dataset.sample(i));
    }
  });
  NonBinaryEncodedDataset out(encoder.dim(), dataset.class_count());
  for (std::size_t i = 0; i < n; ++i) {
    out.add(std::move(codes[i]), dataset.label(i));
  }
  return out;
}

namespace {

double cosine_to_centroid(const std::vector<double>& centroid,
                          double centroid_norm, const hv::IntVector& code) {
  double dot = 0.0;
  double code_norm_sq = 0.0;
  const auto values = code.values();
  for (std::size_t j = 0; j < values.size(); ++j) {
    dot += centroid[j] * values[j];
    code_norm_sq +=
        static_cast<double>(values[j]) * static_cast<double>(values[j]);
  }
  const double denom = centroid_norm * std::sqrt(code_norm_sq);
  return denom == 0.0 ? 0.0 : dot / denom;
}

}  // namespace

FullNonBinaryClassifier FullNonBinaryClassifier::fit(
    const NonBinaryEncodedDataset& train_set, std::size_t retrain_epochs,
    double alpha, std::uint64_t seed) {
  util::expects(!train_set.empty(), "cannot fit on an empty dataset");
  util::expects(alpha > 0.0, "alpha must be positive");

  FullNonBinaryClassifier out;
  out.classes_.assign(train_set.class_count(),
                      std::vector<double>(train_set.dim(), 0.0));

  // Initial training: class-wise accumulation (non-binary Eq. 2).
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    auto& centroid = out.classes_[static_cast<std::size_t>(
        train_set.label(i))];
    const auto values = train_set.code(i).values();
    for (std::size_t j = 0; j < values.size(); ++j) {
      centroid[j] += values[j];
    }
  }

  const auto refresh_norms = [&out] {
    out.norms_.resize(out.classes_.size());
    for (std::size_t k = 0; k < out.classes_.size(); ++k) {
      double sum = 0.0;
      for (const double v : out.classes_[k]) {
        sum += v * v;
      }
      out.norms_[k] = std::sqrt(sum);
    }
  };
  refresh_norms();

  // Perceptron refinement (non-binary Eq. 3).
  util::Rng rng(seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < retrain_epochs; ++epoch) {
    rng.shuffle(order.begin(), order.end());
    std::size_t updates = 0;
    for (const std::size_t i : order) {
      const auto& code = train_set.code(i);
      const int label = train_set.label(i);
      const int predicted = out.predict(code);
      if (predicted == label) {
        continue;
      }
      ++updates;
      auto& correct = out.classes_[static_cast<std::size_t>(label)];
      auto& wrong = out.classes_[static_cast<std::size_t>(predicted)];
      const auto values = code.values();
      for (std::size_t j = 0; j < values.size(); ++j) {
        correct[j] += alpha * values[j];
        wrong[j] -= alpha * values[j];
      }
      // Only the two touched centroids need their norms recomputed.
      for (const auto k : {static_cast<std::size_t>(label),
                           static_cast<std::size_t>(predicted)}) {
        double sum = 0.0;
        for (const double v : out.classes_[k]) {
          sum += v * v;
        }
        out.norms_[k] = std::sqrt(sum);
      }
    }
    if (updates == 0) {
      break;
    }
  }
  return out;
}

int FullNonBinaryClassifier::predict(const hv::IntVector& code) const {
  util::expects(!classes_.empty(), "predict before fit");
  util::expects(code.dim() == dim(), "code dimension mismatch");
  int best = 0;
  double best_score = cosine_to_centroid(classes_[0], norms_[0], code);
  for (std::size_t k = 1; k < classes_.size(); ++k) {
    const double score = cosine_to_centroid(classes_[k], norms_[k], code);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double FullNonBinaryClassifier::accuracy(
    const NonBinaryEncodedDataset& dataset) const {
  if (dataset.empty()) {
    return 0.0;
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predict(dataset.code(i)) == dataset.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace lehdc::hdc
