// Encoded dataset cache.
//
// Every training strategy in the paper consumes the *same* encoded sample
// hypervectors (LeHDC changes training only, Sec. 4). Encoding is therefore
// done once per dataset and cached; trainers operate on the cache.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "hdc/encoder.hpp"
#include "hv/bitvector.hpp"

namespace lehdc::hdc {

class EncodedDataset {
 public:
  EncodedDataset() = default;

  EncodedDataset(std::size_t dim, std::size_t class_count)
      : dim_(dim), class_count_(class_count) {}

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_count_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  void add(hv::BitVector hv, int label);

  [[nodiscard]] const hv::BitVector& hypervector(std::size_t i) const;
  [[nodiscard]] std::span<const hv::BitVector> hypervectors() const noexcept {
    return hypervectors_;
  }
  [[nodiscard]] int label(std::size_t i) const;
  [[nodiscard]] std::span<const int> labels() const noexcept {
    return labels_;
  }

 private:
  std::size_t dim_ = 0;
  std::size_t class_count_ = 0;
  std::vector<hv::BitVector> hypervectors_;
  std::vector<int> labels_;
};

/// Encodes every sample of `dataset` with `encoder`, in parallel across the
/// global thread pool. Preconditions: matching feature counts.
[[nodiscard]] EncodedDataset encode_dataset(const Encoder& encoder,
                                            const data::Dataset& dataset);

}  // namespace lehdc::hdc
