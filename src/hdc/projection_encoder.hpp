// Random-projection encoder: En(x) = sgn(Φ x) with a fixed random bipolar
// projection matrix Φ ∈ {−1,+1}^{D×N}.
//
// This is the "sophisticated feature extraction" family the paper points to
// in Sec. 2 (footnote on [20]) as an alternative front end: instead of
// quantizing each feature into a level codebook, every output component is
// a signed random linear combination of *all* features. LeHDC is encoder
// agnostic (Sec. 4), so this drops into the same pipeline; the ablation
// bench compares it against the record encoder.
//
// Φ is never materialized as floats: row d of Φ is a packed bipolar
// hypervector over the N features, so Φx is computed with sign-flips and
// adds only.
#pragma once

#include <cstdint>

#include "hdc/encoder.hpp"
#include "hv/bitvector.hpp"

namespace lehdc::hdc {

struct ProjectionEncoderConfig {
  std::size_t dim = 10000;        // output dimension D
  std::size_t feature_count = 0;  // input features N (required)
  /// Features are centered by this value before projecting (0.5 for
  /// inputs normalized to [0, 1]) so that sgn thresholds around zero.
  float center = 0.5f;
  std::uint64_t seed = 1;
};

class ProjectionEncoder final : public Encoder {
 public:
  explicit ProjectionEncoder(const ProjectionEncoderConfig& config);

  [[nodiscard]] std::size_t dim() const noexcept override { return dim_; }
  [[nodiscard]] std::size_t feature_count() const noexcept override {
    return feature_count_;
  }
  [[nodiscard]] hv::BitVector encode(
      std::span<const float> features) const override;

 private:
  std::size_t dim_;
  std::size_t feature_count_;
  float center_;
  // rows_[d] holds row d of Φ packed over the N input features; a tie-break
  // hypervector resolves sgn(0).
  std::vector<hv::BitVector> rows_;
  hv::BitVector tie_break_;
};

}  // namespace lehdc::hdc
