#include "hdc/query_batch.hpp"

#include "util/check.hpp"

namespace lehdc::hdc {

QueryBatch::QueryBatch(const data::Dataset& samples, const Encoder& encoder,
                       EncodePath path)
    : raw_(&samples), encoder_(&encoder), path_(path) {
  util::expects(samples.feature_count() == encoder.feature_count(),
                "query batch: dataset/encoder feature count mismatch");
}

const data::Dataset& QueryBatch::samples() const {
  util::expects(raw_ != nullptr, "samples() on a pre-encoded query batch");
  return *raw_;
}

const Encoder& QueryBatch::encoder() const {
  util::expects(raw_ != nullptr, "encoder() on a pre-encoded query batch");
  return *encoder_;
}

}  // namespace lehdc::hdc
