// Ternary class models — the QuantHD [4] quantization level between binary
// and full-precision.
//
// QuantHD ("A quantization framework for hyperdimensional computing", the
// paper's retraining baseline) quantizes trained class hypervectors to
// {−1, 0, +1}: components of the non-binary accumulator whose magnitude
// falls below a dead-zone threshold contribute nothing to the similarity
// score. Storage is 2 bits/component; inference stays XOR+popcount by
// keeping two packed planes per class:
//
//     sign plane s  (bit = 1 ⇔ component negative)
//     mask plane m  (bit = 1 ⇔ component non-zero)
//
//     dot(x, c) = Σ_{j: m_j} x_j·sign_j = popcnt(m) − 2·popcnt((x ⊕ s) & m)
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"
#include "nn/matrix.hpp"

namespace lehdc::hdc {

/// One ternary class hypervector as two packed planes.
class TernaryVector {
 public:
  explicit TernaryVector(std::size_t dim = 0);

  /// Quantizes a float vector: |v| <= threshold → 0, otherwise sgn(v).
  static TernaryVector quantize(std::span<const float> values,
                                float threshold);

  [[nodiscard]] std::size_t dim() const noexcept { return sign_.dim(); }

  /// Component in {−1, 0, +1}. Precondition: i < dim().
  [[nodiscard]] int get(std::size_t i) const;

  /// Number of non-zero components.
  [[nodiscard]] std::size_t active_count() const noexcept;

  /// Bipolar-query dot product Σ_j x_j · c_j over non-zero components.
  [[nodiscard]] std::int64_t dot(const hv::BitVector& query) const;

  bool operator==(const TernaryVector& other) const noexcept = default;

 private:
  hv::BitVector sign_;
  hv::BitVector mask_;
  std::size_t active_ = 0;
};

/// Classifier over ternary class hypervectors (argmax dot).
class TernaryClassifier {
 public:
  TernaryClassifier() = default;
  explicit TernaryClassifier(std::vector<TernaryVector> classes);

  /// Quantizes a trained non-binary class matrix C_nb (K x D) with a
  /// dead zone of `threshold_fraction` times each row's mean |value|.
  static TernaryClassifier from_class_matrix(const nn::Matrix& c_nb,
                                             float threshold_fraction);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept {
    return classes_.empty() ? 0 : classes_.front().dim();
  }

  [[nodiscard]] const TernaryVector& class_vector(std::size_t k) const;

  [[nodiscard]] int predict(const hv::BitVector& query) const;
  [[nodiscard]] double accuracy(const EncodedDataset& dataset) const;

  /// Storage at 2 bits/component (the QuantHD tradeoff vs 1-bit binary).
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return class_count() * dim() * 2;
  }

  /// Mean fraction of zeroed components across classes.
  [[nodiscard]] double sparsity() const noexcept;

 private:
  std::vector<TernaryVector> classes_;
};

}  // namespace lehdc::hdc
