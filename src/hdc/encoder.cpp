#include "hdc/encoder.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::hdc {

namespace {
// Independent seed streams per codebook so that, e.g., changing the level
// count does not perturb the position memory.
constexpr std::uint64_t kPositionStream = 0x1001;
constexpr std::uint64_t kLevelStream = 0x2002;
constexpr std::uint64_t kTieBreakStream = 0x3003;

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  util::SplitMix64 mixer(seed ^ (stream * 0x9e3779b97f4a7c15ULL));
  return mixer();
}

// The RecordEncoder block cursor. Per word range it gathers the position
// words for every feature once — shared by all bound samples, which is what
// makes rematerialization pay: the RNG replay cost is amortized over the
// block — then per sample binds them against the level words and majority-
// votes the range. All scratch is retained across begin() calls.
class RecordBlockCursor final : public BlockEncodeCursor {
 public:
  RecordBlockCursor(const RecordEncoder& owner, EncodePath path)
      : owner_(owner), requested_(path) {}

  void begin(std::span<const float> features, std::size_t count) override {
    const std::size_t n = owner_.feature_count();
    util::expects(count >= 1, "block encode of zero samples");
    util::expects(features.size() == count * n,
                  "block encode: feature width mismatch");
    count_ = count;
    word_pos_ = 0;
    level_index_.resize(count * n);
    for (std::size_t idx = 0; idx < features.size(); ++idx) {
      level_index_[idx] =
          static_cast<std::uint32_t>(owner_.levels().quantize(features[idx]));
    }
    rematerialize_ =
        resolve_encode_path(requested_, count) == EncodePath::kRematerialized;
    if (rematerialize_) {
      row_rngs_.clear();
      row_rngs_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        util::Rng rng;
        rng.set_state(owner_.positions().row_state(i));
        row_rngs_.push_back(rng);
      }
    }
  }

  std::size_t encode_words(std::size_t words,
                           std::span<std::uint64_t> out) override {
    const std::size_t total = owner_.word_count();
    if (word_pos_ >= total || words == 0) {
      return 0;
    }
    const std::size_t produced = std::min(words, total - word_pos_);
    util::expects(out.size() >= count_ * produced,
                  "block encode: output span too small");
    const std::size_t n = owner_.feature_count();
    position_words_.resize(n * produced);
    if (rematerialize_) {
      // Replay each row's stream in storage-word order; the draws continue
      // exactly where the previous range left off. The tail word must be
      // masked like BitVector::clear_tail does — the stored rows have zero
      // bits past the dimension, the raw stream does not.
      const std::size_t tail_bits = owner_.dim() % 64;
      const bool mask_tail = word_pos_ + produced == total && tail_bits != 0;
      const std::uint64_t tail_mask =
          (std::uint64_t{1} << (tail_bits == 0 ? 1 : tail_bits)) - 1;
      for (std::size_t i = 0; i < n; ++i) {
        util::Rng& rng = row_rngs_[i];
        std::uint64_t* dst = position_words_.data() + i * produced;
        for (std::size_t w = 0; w < produced; ++w) {
          dst[w] = rng.next();
        }
        if (mask_tail) {
          dst[produced - 1] &= tail_mask;
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t* src =
            owner_.positions().at(i).words().data() + word_pos_;
        std::memcpy(position_words_.data() + i * produced, src,
                    produced * sizeof(std::uint64_t));
      }
    }
    bound_.resize(produced);
    const std::uint64_t* tie =
        owner_.tie_break().words().data() + word_pos_;
    for (std::size_t s = 0; s < count_; ++s) {
      accumulator_.reset(produced);
      const std::uint32_t* levels = level_index_.data() + s * n;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t* pos = position_words_.data() + i * produced;
        const std::uint64_t* level =
            owner_.levels().at(levels[i]).words().data() + word_pos_;
        for (std::size_t w = 0; w < produced; ++w) {
          bound_[w] = pos[w] ^ level[w];
        }
        accumulator_.add(bound_.data());
      }
      accumulator_.majority(tie, out.data() + s * produced);
    }
    word_pos_ += produced;
    return produced;
  }

 private:
  const RecordEncoder& owner_;
  EncodePath requested_;
  bool rematerialize_ = false;
  std::size_t count_ = 0;
  std::size_t word_pos_ = 0;
  std::vector<std::uint32_t> level_index_;      // count × N quantized values
  std::vector<util::Rng> row_rngs_;             // N replay streams (remat)
  std::vector<std::uint64_t> position_words_;   // N × range scratch
  std::vector<std::uint64_t> bound_;            // one bound range
  hv::WordBlockAccumulator accumulator_;
};
}  // namespace

RecordEncoder::RecordEncoder(const RecordEncoderConfig& config)
    : config_(config),
      positions_(config.feature_count, config.dim,
                 stream_seed(config.seed, kPositionStream)),
      levels_(config.levels, config.dim, config.range_lo, config.range_hi,
              stream_seed(config.seed, kLevelStream)),
      tie_break_(config.dim) {
  util::Rng rng(stream_seed(config.seed, kTieBreakStream));
  tie_break_.randomize(rng);
}

std::size_t RecordEncoder::dim() const noexcept { return positions_.dim(); }

std::size_t RecordEncoder::feature_count() const noexcept {
  return positions_.size();
}

hv::BitVector RecordEncoder::encode(std::span<const float> features) const {
  util::expects(features.size() == feature_count(),
                "encode: feature width mismatch");
  // Thin adapter over the block surface: a one-sample block, whole word
  // range, streaming the stored rows (rematerialization only pays for
  // blocks). Model IO and per-sample predict stay on this.
  hv::BitVector out(dim());
  RecordBlockCursor cursor(*this, EncodePath::kMaterialized);
  cursor.begin(features, 1);
  cursor.encode_words(word_count(), out.words());
  return out;
}

std::size_t RecordEncoder::word_count() const noexcept {
  return tie_break_.word_count();
}

std::size_t RecordEncoder::encode_bytes_per_sample(
    EncodePath path, std::size_t block_samples) const noexcept {
  // The position memory is what each sample streams (the level memory is
  // Q·D bits, cache-resident, identical on both paths). Rematerialization
  // replaces the stream with scratch words shared by the whole block.
  const std::size_t samples = block_samples == 0 ? 1 : block_samples;
  const std::size_t position_bytes =
      feature_count() * word_count() * sizeof(std::uint64_t);
  if (resolve_encode_path(path, samples) == EncodePath::kMaterialized) {
    return position_bytes;
  }
  return position_bytes / samples;
}

std::unique_ptr<BlockEncodeCursor> RecordEncoder::make_cursor(
    EncodePath path) const {
  return std::make_unique<RecordBlockCursor>(*this, path);
}

NgramEncoder::NgramEncoder(const NgramEncoderConfig& config)
    : feature_count_(config.feature_count),
      ngram_(config.ngram),
      levels_(config.levels, config.dim, config.range_lo, config.range_hi,
              stream_seed(config.seed, kLevelStream)),
      tie_break_(config.dim) {
  util::expects(config.ngram >= 1, "n-gram length must be at least 1");
  util::expects(config.feature_count >= config.ngram,
                "n-gram length exceeds the feature count");
  util::Rng rng(stream_seed(config.seed, kTieBreakStream));
  tie_break_.randomize(rng);
}

std::size_t NgramEncoder::dim() const noexcept { return levels_.dim(); }

std::size_t NgramEncoder::feature_count() const noexcept {
  return feature_count_;
}

hv::BitVector NgramEncoder::encode(std::span<const float> features) const {
  util::expects(features.size() == feature_count_,
                "encode: feature width mismatch");
  hv::BitSliceAccumulator accumulator(dim());
  for (std::size_t start = 0; start + ngram_ <= features.size(); ++start) {
    hv::BitVector window(dim());
    for (std::size_t j = 0; j < ngram_; ++j) {
      // Older positions in the window get higher rotation counts, encoding
      // order information.
      const std::size_t rotation = ngram_ - 1 - j;
      hv::BitVector value = levels_.for_value(features[start + j]);
      if (rotation > 0) {
        value = value.rotated(rotation);
      }
      window.bind_inplace(value);
    }
    accumulator.add(window);
  }
  return accumulator.majority(tie_break_);
}

}  // namespace lehdc::hdc
