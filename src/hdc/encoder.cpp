#include "hdc/encoder.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lehdc::hdc {

namespace {
// Independent seed streams per codebook so that, e.g., changing the level
// count does not perturb the position memory.
constexpr std::uint64_t kPositionStream = 0x1001;
constexpr std::uint64_t kLevelStream = 0x2002;
constexpr std::uint64_t kTieBreakStream = 0x3003;

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  util::SplitMix64 mixer(seed ^ (stream * 0x9e3779b97f4a7c15ULL));
  return mixer();
}
}  // namespace

RecordEncoder::RecordEncoder(const RecordEncoderConfig& config)
    : config_(config),
      positions_(config.feature_count, config.dim,
                 stream_seed(config.seed, kPositionStream)),
      levels_(config.levels, config.dim, config.range_lo, config.range_hi,
              stream_seed(config.seed, kLevelStream)),
      tie_break_(config.dim) {
  util::Rng rng(stream_seed(config.seed, kTieBreakStream));
  tie_break_.randomize(rng);
}

std::size_t RecordEncoder::dim() const noexcept { return positions_.dim(); }

std::size_t RecordEncoder::feature_count() const noexcept {
  return positions_.size();
}

hv::BitVector RecordEncoder::encode(std::span<const float> features) const {
  util::expects(features.size() == feature_count(),
                "encode: feature width mismatch");
  hv::BitSliceAccumulator accumulator(dim());
  hv::BitVector bound(dim());
  for (std::size_t i = 0; i < features.size(); ++i) {
    // bound = 𝓕_i ∘ 𝓥_{f_i}; XOR of the packed words.
    const auto& position = positions_.at(i);
    const auto& level = levels_.for_value(features[i]);
    const auto pos_words = position.words();
    const auto lvl_words = level.words();
    const auto out_words = bound.words();
    for (std::size_t w = 0; w < out_words.size(); ++w) {
      out_words[w] = pos_words[w] ^ lvl_words[w];
    }
    accumulator.add(bound);
  }
  return accumulator.majority(tie_break_);
}

NgramEncoder::NgramEncoder(const NgramEncoderConfig& config)
    : feature_count_(config.feature_count),
      ngram_(config.ngram),
      levels_(config.levels, config.dim, config.range_lo, config.range_hi,
              stream_seed(config.seed, kLevelStream)),
      tie_break_(config.dim) {
  util::expects(config.ngram >= 1, "n-gram length must be at least 1");
  util::expects(config.feature_count >= config.ngram,
                "n-gram length exceeds the feature count");
  util::Rng rng(stream_seed(config.seed, kTieBreakStream));
  tie_break_.randomize(rng);
}

std::size_t NgramEncoder::dim() const noexcept { return levels_.dim(); }

std::size_t NgramEncoder::feature_count() const noexcept {
  return feature_count_;
}

hv::BitVector NgramEncoder::encode(std::span<const float> features) const {
  util::expects(features.size() == feature_count_,
                "encode: feature width mismatch");
  hv::BitSliceAccumulator accumulator(dim());
  for (std::size_t start = 0; start + ngram_ <= features.size(); ++start) {
    hv::BitVector window(dim());
    for (std::size_t j = 0; j < ngram_; ++j) {
      // Older positions in the window get higher rotation counts, encoding
      // order information.
      const std::size_t rotation = ngram_ - 1 - j;
      hv::BitVector value = levels_.for_value(features[start + j]);
      if (rotation > 0) {
        value = value.rotated(rotation);
      }
      window.bind_inplace(value);
    }
    accumulator.add(window);
  }
  return accumulator.majority(tie_break_);
}

}  // namespace lehdc::hdc
