// HDC inference (Sec. 2 "Inference" and Eq. 4/6).
//
// BinaryClassifier holds one class hypervector per class and predicts
// argmin Hamming — identically argmax dot (the BNN forward pass of Fig. 4).
// EnsembleClassifier generalizes to multiple hypervectors per class
// (the multi-model strategy of [8]); NonBinaryClassifier keeps integer
// class hypervectors and predicts argmax cosine (footnote 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"

namespace lehdc::hdc {

class BinaryClassifier {
 public:
  BinaryClassifier() = default;

  /// Takes ownership of one hypervector per class (index = class id).
  explicit BinaryClassifier(std::vector<hv::BitVector> class_hypervectors);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept {
    return classes_.empty() ? 0 : classes_.front().dim();
  }

  [[nodiscard]] const hv::BitVector& class_hypervector(std::size_t k) const;

  /// Bipolar dot similarity to every class (the BNN output vector o).
  [[nodiscard]] std::vector<std::int64_t> scores(
      const hv::BitVector& query) const;

  /// Predicted label: argmax dot == argmin Hamming. Ties resolve to the
  /// lowest class id. Precondition: class_count() > 0.
  [[nodiscard]] int predict(const hv::BitVector& query) const;

  /// Fraction of correctly classified samples in [0, 1].
  [[nodiscard]] double accuracy(const EncodedDataset& dataset) const;

 private:
  std::vector<hv::BitVector> classes_;
};

/// Multiple hypervectors per class; a query is assigned the class owning
/// the single most similar hypervector (the multi-model rule of [8]).
class EnsembleClassifier {
 public:
  EnsembleClassifier() = default;

  /// models[k] holds the hypervectors of class k (all non-empty, equal dim).
  explicit EnsembleClassifier(
      std::vector<std::vector<hv::BitVector>> models);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return models_.size();
  }
  [[nodiscard]] std::size_t models_per_class() const noexcept {
    return models_.empty() ? 0 : models_.front().size();
  }

  [[nodiscard]] const std::vector<std::vector<hv::BitVector>>& models()
      const noexcept {
    return models_;
  }

  /// Predicted label and, via best_model, the index of the winning
  /// hypervector inside that class.
  [[nodiscard]] int predict(const hv::BitVector& query,
                            std::size_t* best_model = nullptr) const;

  [[nodiscard]] double accuracy(const EncodedDataset& dataset) const;

  /// Total storage in bits (class_count * models_per_class * D) — the
  /// quantity the paper's Sec. 5.1 resource discussion compares.
  [[nodiscard]] std::size_t storage_bits() const noexcept;

 private:
  std::vector<std::vector<hv::BitVector>> models_;
};

/// Non-binary HDC (footnote 1): integer class hypervectors, cosine rule.
class NonBinaryClassifier {
 public:
  NonBinaryClassifier() = default;

  explicit NonBinaryClassifier(std::vector<hv::IntVector> class_vectors);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }

  [[nodiscard]] const hv::IntVector& class_vector(std::size_t k) const;

  [[nodiscard]] int predict(const hv::BitVector& query) const;

  [[nodiscard]] double accuracy(const EncodedDataset& dataset) const;

 private:
  std::vector<hv::IntVector> classes_;
};

}  // namespace lehdc::hdc
