// Binary model serialization.
//
// Persists a trained BinaryClassifier (and the encoder configuration needed
// to rebuild its item memories deterministically) so a model trained by any
// strategy — including LeHDC — can be deployed to the unchanged HDC
// inference path on another machine.
//
// Format v2 (little-endian, checksummed — see util/fileio.hpp):
//   magic "LHDC" | u32 version | u64 payload_size | payload | u32 crc32
//   payload := u64 dim | u64 class_count
//              | per class: dim-bit packed payload (ceil(dim/64) u64 words)
// Legacy v1 files (no size/CRC framing) still load; saves always emit v2
// and are atomic: a crash mid-save never leaves a torn file at the target
// path (write-to-temp-then-rename), and any later bit corruption of the
// payload is detected at load time via the CRC.
#pragma once

#include <iosfwd>
#include <string>

#include "hdc/classifier.hpp"

namespace lehdc::hdc {

/// Writes the classifier to `path`; throws std::runtime_error on I/O
/// failure.
void save_classifier(const BinaryClassifier& classifier,
                     const std::string& path);

/// Reads a classifier back; throws std::runtime_error on I/O failure or a
/// malformed/incompatible file.
[[nodiscard]] BinaryClassifier load_classifier(const std::string& path);

/// Stream-level variants used to embed a classifier inside container
/// formats (e.g. the pipeline bundles of core/pipeline_io.hpp). The stream
/// forms write/read exactly the same bytes as the file forms.
void write_classifier(std::ostream& out, const BinaryClassifier& classifier);
[[nodiscard]] BinaryClassifier read_classifier(std::istream& in,
                                               const std::string& context);

/// Ensemble (multi-model) persistence: magic "LHDE", then K x M packed
/// hypervectors. Same error contract as the classifier functions.
void save_ensemble(const EnsembleClassifier& classifier,
                   const std::string& path);
[[nodiscard]] EnsembleClassifier load_ensemble(const std::string& path);

}  // namespace lehdc::hdc
