// Binary model serialization.
//
// Persists a trained BinaryClassifier (and the encoder configuration needed
// to rebuild its item memories deterministically) so a model trained by any
// strategy — including LeHDC — can be deployed to the unchanged HDC
// inference path on another machine.
//
// Format (little-endian):
//   magic "LHDC" | u32 version | u64 dim | u64 class_count
//   | per class: dim-bit packed payload (ceil(dim/64) u64 words)
#pragma once

#include <iosfwd>
#include <string>

#include "hdc/classifier.hpp"

namespace lehdc::hdc {

/// Writes the classifier to `path`; throws std::runtime_error on I/O
/// failure.
void save_classifier(const BinaryClassifier& classifier,
                     const std::string& path);

/// Reads a classifier back; throws std::runtime_error on I/O failure or a
/// malformed/incompatible file.
[[nodiscard]] BinaryClassifier load_classifier(const std::string& path);

/// Stream-level variants used to embed a classifier inside container
/// formats (e.g. the pipeline bundles of core/pipeline_io.hpp). The stream
/// forms write/read exactly the same bytes as the file forms.
void write_classifier(std::ostream& out, const BinaryClassifier& classifier);
[[nodiscard]] BinaryClassifier read_classifier(std::istream& in,
                                               const std::string& context);

/// Ensemble (multi-model) persistence: magic "LHDE", then K x M packed
/// hypervectors. Same error contract as the classifier functions.
void save_ensemble(const EnsembleClassifier& classifier,
                   const std::string& path);
[[nodiscard]] EnsembleClassifier load_ensemble(const std::string& path);

}  // namespace lehdc::hdc
