#include "hdc/block_encoder.hpp"

#include <cstdlib>
#include <string_view>

namespace lehdc::hdc {

namespace {

// Below this many samples per block the regenerated position words are not
// amortized over enough samples to beat streaming the stored rows.
constexpr std::size_t kAutoRematerializeMinSamples = 8;

EncodePath env_encode_path() {
  const char* raw = std::getenv("LEHDC_ENCODE_PATH");
  if (raw == nullptr) {
    return EncodePath::kAuto;
  }
  const std::string_view value(raw);
  if (value == "materialized") {
    return EncodePath::kMaterialized;
  }
  if (value == "rematerialized") {
    return EncodePath::kRematerialized;
  }
  // "auto" and anything unrecognized fall through to the heuristic.
  return EncodePath::kAuto;
}

}  // namespace

std::size_t block_range_words(std::size_t feature_count,
                              std::size_t word_count) noexcept {
  constexpr std::size_t kPositionScratchWords =
      256 * 1024 / sizeof(std::uint64_t);
  std::size_t words =
      kPositionScratchWords / (feature_count == 0 ? 1 : feature_count);
  if (words < 8) {
    words = 8;
  }
  return words < word_count ? words : word_count;
}

EncodePath resolve_encode_path(EncodePath requested, std::size_t samples) {
  if (requested != EncodePath::kAuto) {
    return requested;
  }
  static const EncodePath pinned = env_encode_path();
  if (pinned != EncodePath::kAuto) {
    return pinned;
  }
  return samples >= kAutoRematerializeMinSamples ? EncodePath::kRematerialized
                                                 : EncodePath::kMaterialized;
}

}  // namespace lehdc::hdc
