#include "hdc/ternary.hpp"

#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace lehdc::hdc {

TernaryVector::TernaryVector(std::size_t dim) : sign_(dim), mask_(dim) {}

TernaryVector TernaryVector::quantize(std::span<const float> values,
                                      float threshold) {
  util::expects(threshold >= 0.0f, "threshold must be non-negative");
  TernaryVector out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::abs(values[i]) <= threshold) {
      continue;  // dead zone → 0
    }
    out.mask_.set_bit(i, true);
    if (values[i] < 0.0f) {
      out.sign_.set_bit(i, true);
    }
    ++out.active_;
  }
  return out;
}

int TernaryVector::get(std::size_t i) const {
  util::expects(i < dim(), "component index out of range");
  if (!mask_.get_bit(i)) {
    return 0;
  }
  return sign_.get_bit(i) ? -1 : +1;
}

std::size_t TernaryVector::active_count() const noexcept { return active_; }

std::int64_t TernaryVector::dot(const hv::BitVector& query) const {
  util::expects(query.dim() == dim(), "query dimension mismatch");
  const auto q = query.words();
  const auto s = sign_.words();
  const auto m = mask_.words();
  std::size_t mismatches = 0;
  for (std::size_t w = 0; w < q.size(); ++w) {
    mismatches +=
        static_cast<std::size_t>(std::popcount((q[w] ^ s[w]) & m[w]));
  }
  return static_cast<std::int64_t>(active_) -
         2 * static_cast<std::int64_t>(mismatches);
}

TernaryClassifier::TernaryClassifier(std::vector<TernaryVector> classes)
    : classes_(std::move(classes)) {
  util::expects(!classes_.empty(), "classifier needs at least one class");
  for (const auto& c : classes_) {
    util::expects(c.dim() == classes_.front().dim(),
                  "class vectors must share one dimension");
  }
}

TernaryClassifier TernaryClassifier::from_class_matrix(
    const nn::Matrix& c_nb, float threshold_fraction) {
  util::expects(c_nb.rows() > 0 && c_nb.cols() > 0,
                "empty class matrix");
  util::expects(threshold_fraction >= 0.0f,
                "threshold fraction must be non-negative");
  std::vector<TernaryVector> classes;
  classes.reserve(c_nb.rows());
  for (std::size_t k = 0; k < c_nb.rows(); ++k) {
    const auto row = c_nb.row(k);
    double mean_abs = 0.0;
    for (const float v : row) {
      mean_abs += std::abs(v);
    }
    mean_abs /= static_cast<double>(row.size());
    classes.push_back(TernaryVector::quantize(
        row, threshold_fraction * static_cast<float>(mean_abs)));
  }
  return TernaryClassifier(std::move(classes));
}

const TernaryVector& TernaryClassifier::class_vector(std::size_t k) const {
  util::expects(k < classes_.size(), "class index out of range");
  return classes_[k];
}

int TernaryClassifier::predict(const hv::BitVector& query) const {
  util::expects(!classes_.empty(), "predict on an empty classifier");
  int best = 0;
  std::int64_t best_score = classes_[0].dot(query);
  for (std::size_t k = 1; k < classes_.size(); ++k) {
    const std::int64_t score = classes_[k].dot(query);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double TernaryClassifier::accuracy(const EncodedDataset& dataset) const {
  if (dataset.empty()) {
    return 0.0;
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predict(dataset.hypervector(i)) == dataset.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double TernaryClassifier::sparsity() const noexcept {
  if (classes_.empty() || dim() == 0) {
    return 0.0;
  }
  double zero_total = 0.0;
  for (const auto& c : classes_) {
    zero_total += static_cast<double>(dim() - c.active_count());
  }
  return zero_total / static_cast<double>(classes_.size() * dim());
}

}  // namespace lehdc::hdc
