// HDC encoders: ℝ^N → {−1, +1}^D.
//
// RecordEncoder implements Eq. 1 of the paper (the record-based encoding the
// evaluation uses): bind each feature's position hypervector with its
// quantized value hypervector and take the component-wise sign of the sum.
// NgramEncoder is the N-gram alternative mentioned in Sec. 2 (permute +
// bind sliding windows of value hypervectors, then bundle the windows).
// LeHDC never modifies encoding (Sec. 4), so the same encoder instance is
// shared by every training strategy in a comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "hdc/block_encoder.hpp"
#include "hdc/item_memory.hpp"
#include "hv/bitslice.hpp"
#include "hv/bitvector.hpp"

namespace lehdc::hdc {

/// Interface shared by all encoders. Implementations are immutable after
/// construction and safe to call concurrently from multiple threads.
class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Hypervector dimension D.
  [[nodiscard]] virtual std::size_t dim() const noexcept = 0;

  /// Number of input features N expected by encode().
  [[nodiscard]] virtual std::size_t feature_count() const noexcept = 0;

  /// Encodes one sample. Precondition: features.size() == feature_count().
  [[nodiscard]] virtual hv::BitVector encode(
      std::span<const float> features) const = 0;
};

struct RecordEncoderConfig {
  std::size_t dim = 10000;       // hypervector dimension D
  std::size_t feature_count = 0; // input features N (required)
  std::size_t levels = 32;       // value quantization levels Q
  float range_lo = 0.0f;         // feature value range [lo, hi]
  float range_hi = 1.0f;
  std::uint64_t seed = 1;        // seeds 𝓕, 𝓥 and the sgn(0) tie-break
};

/// Record-based encoder (Eq. 1): H = sgn(Σ_i 𝓕_i ∘ 𝓥_{f_i}).
///
/// Also a BlockEncoder: its cursors encode sample blocks a word range at a
/// time, binding either the stored position rows (materialized) or words
/// replayed from PositionMemory::row_state (rematerialized) — both produce
/// the exact bits of encode(), which is itself a one-sample cursor pass.
class RecordEncoder final : public Encoder, public BlockEncoder {
 public:
  explicit RecordEncoder(const RecordEncoderConfig& config);

  [[nodiscard]] std::size_t dim() const noexcept override;
  [[nodiscard]] std::size_t feature_count() const noexcept override;
  [[nodiscard]] hv::BitVector encode(
      std::span<const float> features) const override;

  [[nodiscard]] std::size_t word_count() const noexcept override;
  [[nodiscard]] std::size_t encode_bytes_per_sample(
      EncodePath path, std::size_t block_samples) const noexcept override;
  [[nodiscard]] std::unique_ptr<BlockEncodeCursor> make_cursor(
      EncodePath path) const override;

  [[nodiscard]] const PositionMemory& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] const LevelMemory& levels() const noexcept { return levels_; }

  /// The exact configuration this encoder was built from. Because all item
  /// memories derive deterministically from config.seed, persisting the
  /// config is enough to rebuild a bit-identical encoder elsewhere.
  [[nodiscard]] const RecordEncoderConfig& config() const noexcept {
    return config_;
  }

  /// Fixed random hypervector used to break sgn(0) ties reproducibly.
  [[nodiscard]] const hv::BitVector& tie_break() const noexcept {
    return tie_break_;
  }

 private:
  RecordEncoderConfig config_;
  PositionMemory positions_;
  LevelMemory levels_;
  hv::BitVector tie_break_;
};

struct NgramEncoderConfig {
  std::size_t dim = 10000;
  std::size_t feature_count = 0;
  std::size_t levels = 32;
  std::size_t ngram = 3;  // window length
  float range_lo = 0.0f;
  float range_hi = 1.0f;
  std::uint64_t seed = 1;
};

/// N-gram encoder: each window (f_i, ..., f_{i+n-1}) becomes
/// ρ^{n-1}(𝓥_{f_i}) ∘ ... ∘ ρ^0(𝓥_{f_{i+n-1}}) where ρ is cyclic rotation;
/// the windows are bundled with a majority vote.
class NgramEncoder final : public Encoder {
 public:
  explicit NgramEncoder(const NgramEncoderConfig& config);

  [[nodiscard]] std::size_t dim() const noexcept override;
  [[nodiscard]] std::size_t feature_count() const noexcept override;
  [[nodiscard]] hv::BitVector encode(
      std::span<const float> features) const override;

 private:
  std::size_t feature_count_;
  std::size_t ngram_;
  LevelMemory levels_;
  hv::BitVector tie_break_;
};

}  // namespace lehdc::hdc
