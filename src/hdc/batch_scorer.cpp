#include "hdc/batch_scorer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "hv/batch_score.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::hdc {

namespace {

// Queries handled per reduction chunk in correct_count: small enough that
// chunks outnumber workers for typical evaluation sets, large enough to
// amortize the scratch acquisition.
constexpr std::size_t kReductionChunk = 256;

// Samples per encode block on the raw-batch paths. One block is the unit of
// work a worker claims, the population a cursor amortizes regenerated
// position words over, and (blocked path) the most hypervectors a worker
// ever holds.
constexpr std::size_t kSampleBlock = 64;

obs::Counter& query_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("score.queries");
  return counter;
}

obs::Histogram& chunk_histogram() {
  static obs::Histogram& histogram =
      obs::Registry::global().histogram("score.chunk_seconds");
  return histogram;
}

obs::Histogram& encode_bytes_histogram() {
  static obs::Histogram& histogram =
      obs::Registry::global().histogram("encode.bytes_per_sample");
  return histogram;
}

obs::Counter& materialized_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("encode.materialized_samples");
  return counter;
}

obs::Counter& rematerialized_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("encode.rematerialized_samples");
  return counter;
}

}  // namespace

struct BatchScorer::Scratch {
  std::vector<std::int64_t> dots;
  std::vector<int> labels;
};

BatchScorer::BatchScorer(const BinaryClassifier& classifier,
                         util::ThreadPool* pool)
    : kind_(Kind::kBinary),
      pool_(pool),
      class_count_(classifier.class_count()),
      dim_(classifier.dim()) {
  util::expects(class_count_ > 0, "BatchScorer over an empty classifier");
  rows_.reserve(class_count_);
  for (std::size_t k = 0; k < class_count_; ++k) {
    rows_.push_back(classifier.class_hypervector(k).words().data());
  }
}

BatchScorer::BatchScorer(const EnsembleClassifier& classifier,
                         util::ThreadPool* pool)
    : kind_(Kind::kEnsemble),
      pool_(pool),
      class_count_(classifier.class_count()) {
  util::expects(class_count_ > 0, "BatchScorer over an empty classifier");
  const auto& models = classifier.models();
  dim_ = models.front().front().dim();
  rows_.reserve(class_count_ * classifier.models_per_class());
  // Flattened in (class, model) order — the per-sample scan order, so the
  // first-wins argmax over rows_ reproduces its tie-breaking exactly.
  for (std::size_t k = 0; k < models.size(); ++k) {
    for (const auto& model : models[k]) {
      rows_.push_back(model.words().data());
      row_class_.push_back(static_cast<int>(k));
    }
  }
}

BatchScorer::BatchScorer(const NonBinaryClassifier& classifier,
                         util::ThreadPool* pool)
    : kind_(Kind::kNonBinary),
      pool_(pool),
      class_count_(classifier.class_count()),
      nonbinary_(&classifier) {
  util::expects(class_count_ > 0, "BatchScorer over an empty classifier");
  dim_ = classifier.class_vector(0).dim();
  norms_.reserve(class_count_);
  // Precompute each class's cosine denominator ‖C_k‖·√D — the same doubles
  // IntVector::cosine produces per call, so cached scores stay bit-identical.
  const double sqrt_dim = std::sqrt(static_cast<double>(dim_));
  for (std::size_t k = 0; k < class_count_; ++k) {
    norms_.push_back(classifier.class_vector(k).norm() * sqrt_dim);
  }
}

BatchScorer::~BatchScorer() = default;

util::ThreadPool& BatchScorer::pool() const noexcept {
  return pool_ != nullptr ? *pool_ : util::ThreadPool::global();
}

std::unique_ptr<BatchScorer::Scratch> BatchScorer::acquire_scratch() const {
  {
    const util::MutexLock lock(scratch_mutex_);
    if (!free_scratch_.empty()) {
      auto scratch = std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<Scratch>();
}

void BatchScorer::release_scratch(std::unique_ptr<Scratch> scratch) const {
  const util::MutexLock lock(scratch_mutex_);
  free_scratch_.push_back(std::move(scratch));
}

double BatchScorer::cosine_score(const hv::BitVector& query,
                                 std::size_t k) const {
  if (norms_[k] == 0.0) {
    return 0.0;
  }
  return static_cast<double>(nonbinary_->class_vector(k).dot(query)) /
         norms_[k];
}

void BatchScorer::predict_range(std::span<const hv::BitVector> queries,
                                std::size_t begin, std::size_t end,
                                std::span<int> out, Scratch& scratch) const {
  if (kind_ == Kind::kNonBinary) {
    for (std::size_t i = begin; i < end; ++i) {
      const hv::BitVector& query = queries[i];
      int best = 0;
      double best_score = cosine_score(query, 0);
      for (std::size_t k = 1; k < class_count_; ++k) {
        const double score = cosine_score(query, k);
        if (score > best_score) {
          best_score = score;
          best = static_cast<int>(k);
        }
      }
      out[i] = best;
    }
    return;
  }
  scratch.dots.resize(rows_.size());
  for (std::size_t i = begin; i < end; ++i) {
    util::expects(queries[i].dim() == dim_,
                  "query/classifier dimension mismatch");
    hv::dot_rows(queries[i].words().data(), rows_, dim_, scratch.dots);
    std::size_t best_row = 0;
    std::int64_t best_score = scratch.dots[0];
    for (std::size_t r = 1; r < rows_.size(); ++r) {
      if (scratch.dots[r] > best_score) {
        best_score = scratch.dots[r];
        best_row = r;
      }
    }
    out[i] = kind_ == Kind::kBinary ? static_cast<int>(best_row)
                                    : row_class_[best_row];
  }
}

void BatchScorer::predict_encoded(std::span<const hv::BitVector> queries,
                                  std::span<int> out,
                                  PredictStats* stats) const {
  util::Mutex stats_mutex;
  pool().parallel_for(0, queries.size(),
                      [&](std::size_t lo, std::size_t hi) {
                        obs::ScopedTimer chunk_timer(chunk_histogram());
                        const util::Stopwatch watch;
                        auto scratch = acquire_scratch();
                        predict_range(queries, lo, hi, out, *scratch);
                        release_scratch(std::move(scratch));
                        if (stats != nullptr) {
                          const util::MutexLock lock(stats_mutex);
                          stats->score_seconds += watch.elapsed_seconds();
                        }
                      });
}

void BatchScorer::predict_fused(const data::Dataset& dataset,
                                const BlockEncoder& encoder,
                                std::span<int> out,
                                PredictStats* stats) const {
  const std::size_t n = dataset.size();
  const std::size_t range_words =
      block_range_words(dataset.feature_count(), encoder.word_count());
  const std::size_t blocks = (n + kSampleBlock - 1) / kSampleBlock;
  util::Mutex stats_mutex;
  pool().parallel_for(0, blocks, [&](std::size_t lo, std::size_t hi) {
    obs::ScopedTimer chunk_timer(chunk_histogram());
    auto cursor = encoder.make_cursor(EncodePath::kRematerialized);
    std::vector<std::uint64_t> encoded(kSampleBlock * range_words);
    std::vector<std::size_t> distances;
    std::vector<const std::uint64_t*> range_rows(rows_.size());
    double local_encode = 0.0;
    double local_score = 0.0;
    for (std::size_t b = lo; b < hi; ++b) {
      const std::size_t begin = b * kSampleBlock;
      const std::size_t end = std::min(n, begin + kSampleBlock);
      const std::size_t count = end - begin;
      {
        const util::Stopwatch watch;
        cursor->begin(dataset.rows(begin, count), count);
        local_encode += watch.elapsed_seconds();
      }
      distances.assign(count * rows_.size(), 0);
      std::size_t word_pos = 0;
      for (;;) {
        std::size_t produced = 0;
        {
          const util::Stopwatch watch;
          produced = cursor->encode_words(
              range_words, {encoded.data(), count * range_words});
          local_encode += watch.elapsed_seconds();
        }
        if (produced == 0) {
          break;
        }
        const util::Stopwatch watch;
        // Score this word range of every sample against the class rows,
        // offset into the same range, before the encoded words leave cache.
        for (std::size_t r = 0; r < rows_.size(); ++r) {
          range_rows[r] = rows_[r] + word_pos;
        }
        for (std::size_t s = 0; s < count; ++s) {
          hv::hamming_rows_accumulate(
              encoded.data() + s * produced, range_rows, produced,
              {distances.data() + s * rows_.size(), rows_.size()});
        }
        local_score += watch.elapsed_seconds();
        word_pos += produced;
      }
      const util::Stopwatch watch;
      for (std::size_t s = 0; s < count; ++s) {
        // First-wins argmin over full-dimension distances in row order —
        // identical to predict_range's first-wins argmax over dots, since
        // dot = dim − 2·distance is strictly decreasing in distance.
        const std::size_t* d = distances.data() + s * rows_.size();
        std::size_t best_row = 0;
        std::size_t best = d[0];
        for (std::size_t r = 1; r < rows_.size(); ++r) {
          if (d[r] < best) {
            best = d[r];
            best_row = r;
          }
        }
        out[begin + s] = kind_ == Kind::kBinary ? static_cast<int>(best_row)
                                                : row_class_[best_row];
      }
      local_score += watch.elapsed_seconds();
    }
    if (stats != nullptr) {
      const util::MutexLock lock(stats_mutex);
      stats->encode_seconds += local_encode;
      stats->score_seconds += local_score;
    }
  });
}

void BatchScorer::predict_blocked(const data::Dataset& dataset,
                                  const Encoder& encoder, EncodePath path,
                                  std::span<int> out,
                                  PredictStats* stats) const {
  const std::size_t n = dataset.size();
  const auto* block = dynamic_cast<const BlockEncoder*>(&encoder);
  const std::size_t blocks = (n + kSampleBlock - 1) / kSampleBlock;
  util::Mutex stats_mutex;
  pool().parallel_for(0, blocks, [&](std::size_t lo, std::size_t hi) {
    obs::ScopedTimer chunk_timer(chunk_histogram());
    auto cursor = block != nullptr ? block->make_cursor(path) : nullptr;
    std::vector<hv::BitVector> encoded(std::min(kSampleBlock, n),
                                       hv::BitVector(encoder.dim()));
    std::vector<std::uint64_t> range_buf;
    auto scratch = acquire_scratch();
    double local_encode = 0.0;
    double local_score = 0.0;
    for (std::size_t b = lo; b < hi; ++b) {
      const std::size_t begin = b * kSampleBlock;
      const std::size_t end = std::min(n, begin + kSampleBlock);
      const std::size_t count = end - begin;
      {
        const util::Stopwatch watch;
        if (cursor != nullptr) {
          // Stream cursor ranges into per-sample hypervectors; the range
          // size keeps the cursor's item-memory working set cache-sized.
          const std::size_t range_words =
              block_range_words(dataset.feature_count(), block->word_count());
          cursor->begin(dataset.rows(begin, count), count);
          range_buf.resize(count * range_words);
          std::size_t word_pos = 0;
          while (const std::size_t produced =
                     cursor->encode_words(range_words, range_buf)) {
            for (std::size_t s = 0; s < count; ++s) {
              std::memcpy(encoded[s].words().data() + word_pos,
                          range_buf.data() + s * produced,
                          produced * sizeof(std::uint64_t));
            }
            word_pos += produced;
          }
        } else {
          for (std::size_t i = begin; i < end; ++i) {
            encoded[i - begin] = encoder.encode(dataset.sample(i));
          }
        }
        local_encode += watch.elapsed_seconds();
      }
      const util::Stopwatch watch;
      predict_range({encoded.data(), count}, 0, count,
                    out.subspan(begin, count), *scratch);
      local_score += watch.elapsed_seconds();
    }
    release_scratch(std::move(scratch));
    if (stats != nullptr) {
      const util::MutexLock lock(stats_mutex);
      stats->encode_seconds += local_encode;
      stats->score_seconds += local_score;
    }
  });
}

void BatchScorer::predict_queries(const QueryBatch& queries,
                                  std::span<int> out,
                                  PredictStats* stats) const {
  util::expects(out.size() == queries.size(),
                "predict_queries output span must match the batch size");
  if (stats != nullptr) {
    *stats = PredictStats{};
    stats->samples = queries.size();
  }
  if (queries.size() == 0) {
    return;
  }
  query_counter().add(queries.size());
  if (!queries.raw()) {
    predict_encoded(queries.encoded(), out, stats);
    return;
  }
  const data::Dataset& dataset = queries.samples();
  const Encoder& encoder = queries.encoder();
  util::expects(encoder.dim() == dim_,
                "query batch/classifier dimension mismatch");
  const auto* block = dynamic_cast<const BlockEncoder*>(&encoder);
  const EncodePath path =
      block != nullptr ? resolve_encode_path(queries.path(), dataset.size())
                       : EncodePath::kMaterialized;
  const bool rematerialized = path == EncodePath::kRematerialized;
  (rematerialized ? rematerialized_counter() : materialized_counter())
      .add(dataset.size());
  if (block != nullptr) {
    // Exact traffic accounting for the block grid below: rematerialization
    // regenerates the position words once per block, the materialized path
    // streams them once per sample.
    const std::uint64_t position_bytes =
        block->encode_bytes_per_sample(EncodePath::kMaterialized, 1);
    const std::uint64_t block_count =
        (dataset.size() + kSampleBlock - 1) / kSampleBlock;
    const std::uint64_t bytes = rematerialized
                                    ? block_count * position_bytes
                                    : dataset.size() * position_bytes;
    encode_bytes_histogram().observe(static_cast<double>(bytes) /
                                     static_cast<double>(dataset.size()));
    if (stats != nullptr) {
      stats->encode_bytes = bytes;
      stats->rematerialized = rematerialized;
    }
  }
  if (block != nullptr && rematerialized && kind_ != Kind::kNonBinary) {
    predict_fused(dataset, *block, out, stats);
  } else {
    predict_blocked(dataset, encoder, path, out, stats);
  }
}

void BatchScorer::predict_batch(std::span<const hv::BitVector> queries,
                                std::span<int> out) const {
  predict_queries(QueryBatch(queries), out);
}

void BatchScorer::predict_batch(const EncodedDataset& dataset,
                                std::span<int> out) const {
  predict_queries(QueryBatch(dataset), out);
}

void BatchScorer::scores_batch(std::span<const hv::BitVector> queries,
                               std::span<std::int64_t> out) const {
  util::expects(kind_ != Kind::kNonBinary,
                "scores_batch: non-binary classifiers score by cosine; use "
                "cosine_scores_batch");
  util::expects(out.size() == queries.size() * class_count_,
                "scores_batch output span has the wrong size");
  if (queries.empty()) {
    return;
  }
  pool().parallel_for(0, queries.size(), [&](std::size_t lo, std::size_t hi) {
    auto scratch = acquire_scratch();
    scratch->dots.resize(rows_.size());
    for (std::size_t i = lo; i < hi; ++i) {
      util::expects(queries[i].dim() == dim_,
                    "query/classifier dimension mismatch");
      const auto row_out = out.subspan(i * class_count_, class_count_);
      if (kind_ == Kind::kBinary) {
        hv::dot_rows(queries[i].words().data(), rows_, dim_, row_out);
        continue;
      }
      // Ensemble: per-class score is the best of its hypervectors.
      hv::dot_rows(queries[i].words().data(), rows_, dim_, scratch->dots);
      for (std::size_t k = 0; k < class_count_; ++k) {
        row_out[k] = std::numeric_limits<std::int64_t>::min();
      }
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto k = static_cast<std::size_t>(row_class_[r]);
        row_out[k] = std::max(row_out[k], scratch->dots[r]);
      }
    }
    release_scratch(std::move(scratch));
  });
}

void BatchScorer::cosine_scores_batch(std::span<const hv::BitVector> queries,
                                      std::span<double> out) const {
  util::expects(kind_ == Kind::kNonBinary,
                "cosine_scores_batch is only defined for non-binary "
                "classifiers");
  util::expects(out.size() == queries.size() * class_count_,
                "cosine_scores_batch output span has the wrong size");
  if (queries.empty()) {
    return;
  }
  pool().parallel_for(0, queries.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t k = 0; k < class_count_; ++k) {
        out[i * class_count_ + k] = cosine_score(queries[i], k);
      }
    }
  });
}

std::size_t BatchScorer::correct_count(const EncodedDataset& dataset) const {
  if (dataset.empty()) {
    return 0;
  }
  const std::span<const hv::BitVector> queries = dataset.hypervectors();
  const std::span<const int> labels = dataset.labels();
  // Fixed chunk grid with per-chunk partial counts summed in chunk order:
  // the reduction is identical for every worker count.
  const std::size_t chunks =
      (dataset.size() + kReductionChunk - 1) / kReductionChunk;
  query_counter().add(dataset.size());
  std::vector<std::size_t> partial(chunks, 0);
  pool().parallel_for(0, chunks, [&](std::size_t lo, std::size_t hi) {
    obs::ScopedTimer chunk_timer(chunk_histogram());
    auto scratch = acquire_scratch();
    for (std::size_t c = lo; c < hi; ++c) {
      const std::size_t begin = c * kReductionChunk;
      const std::size_t end =
          std::min(dataset.size(), begin + kReductionChunk);
      scratch->labels.resize(end - begin);
      predict_range(queries.subspan(begin, end - begin), 0, end - begin,
                    scratch->labels, *scratch);
      std::size_t correct = 0;
      for (std::size_t i = begin; i < end; ++i) {
        if (scratch->labels[i - begin] == labels[i]) {
          ++correct;
        }
      }
      partial[c] = correct;
    }
    release_scratch(std::move(scratch));
  });
  std::size_t total = 0;
  for (const std::size_t p : partial) {
    total += p;
  }
  return total;
}

double BatchScorer::accuracy(const EncodedDataset& dataset) const {
  if (dataset.empty()) {
    return 0.0;
  }
  return static_cast<double>(correct_count(dataset)) /
         static_cast<double>(dataset.size());
}

}  // namespace lehdc::hdc
