// The one batched-prediction input surface.
//
// Before this, batch prediction had three entry points per layer — raw
// data::Dataset, std::span<const hv::BitVector>, EncodedDataset — each with
// its own encode/score wiring, so the fused encode→score kernel would have
// needed three call sites per layer. QueryBatch collapses them: a non-owning
// view any of the three converts to implicitly, consumed by exactly one
// predict entry point per layer (BatchScorer::predict_queries,
// train::Model::predict_queries, Pipeline::predict_batch). The legacy
// overloads remain as one-line adapters constructing a QueryBatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "data/dataset.hpp"
#include "hdc/block_encoder.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"

namespace lehdc::hdc {

/// Non-owning view over a batch of prediction inputs: either
/// already-encoded hypervectors, or raw samples paired with the encoder to
/// run them through (where the fused, never-materializing path applies).
/// Everything referenced must outlive the view.
class QueryBatch {
 public:
  /// Already-encoded hypervectors.
  QueryBatch(std::span<const hv::BitVector> encoded) : encoded_(encoded) {}

  /// Every hypervector of an encoded dataset.
  QueryBatch(const EncodedDataset& dataset)
      : encoded_(dataset.hypervectors()) {}

  /// Raw samples still to be encoded. `path` requests an item-memory
  /// strategy; kAuto defers to resolve_encode_path at predict time.
  QueryBatch(const data::Dataset& samples, const Encoder& encoder,
             EncodePath path = EncodePath::kAuto);

  [[nodiscard]] std::size_t size() const noexcept {
    return raw_ != nullptr ? raw_->size() : encoded_.size();
  }

  /// True when the batch is raw samples (encode still to happen).
  [[nodiscard]] bool raw() const noexcept { return raw_ != nullptr; }

  /// The encoded view; empty when raw(). Valid only when !raw().
  [[nodiscard]] std::span<const hv::BitVector> encoded() const noexcept {
    return encoded_;
  }

  /// The raw samples / their encoder. Preconditions: raw().
  [[nodiscard]] const data::Dataset& samples() const;
  [[nodiscard]] const Encoder& encoder() const;

  [[nodiscard]] EncodePath path() const noexcept { return path_; }

 private:
  std::span<const hv::BitVector> encoded_{};
  const data::Dataset* raw_ = nullptr;
  const Encoder* encoder_ = nullptr;
  EncodePath path_ = EncodePath::kAuto;
};

/// Per-stage cost accounting a predict_queries call can fill (pass nullptr
/// to skip the bookkeeping). Seconds are summed across workers, so they
/// exceed elapsed time on a multi-threaded pass.
struct PredictStats {
  double encode_seconds = 0.0;
  double score_seconds = 0.0;
  /// Item-memory bytes the encode stage streamed, totalled over the batch
  /// (BlockEncoder::encode_bytes_per_sample × samples). 0 for pre-encoded
  /// batches.
  std::uint64_t encode_bytes = 0;
  std::uint64_t samples = 0;
  /// Whether the encode stage ran rematerialized (false also for
  /// pre-encoded batches).
  bool rematerialized = false;
};

}  // namespace lehdc::hdc
