// The complete non-binary HDC path (paper footnote 1 and the last
// paragraph of Sec. 3.1).
//
// Non-binary HDC skips the sgn() of Eq. 1: the encoded sample keeps the
// integer accumulator Σ_i 𝓕_i ∘ 𝓥_{f_i} ∈ ℤ^D, class vectors accumulate
// those integer codes, and inference is argmax cosine. The paper notes this
// "contains richer information expression" at higher compute/storage cost —
// bench/ablation_encoding and the NonBinary strategy quantify that tradeoff;
// this header supplies the integer-code substrate.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "hdc/encoder.hpp"
#include "hv/intvector.hpp"

namespace lehdc::hdc {

/// Encodes one sample with the record scheme but *without* binarization:
/// the returned vector is the raw bundling accumulator of Eq. 1.
[[nodiscard]] hv::IntVector encode_record_nonbinary(
    const RecordEncoder& encoder, std::span<const float> features);

/// Dataset of integer sample codes with labels.
class NonBinaryEncodedDataset {
 public:
  NonBinaryEncodedDataset() = default;
  NonBinaryEncodedDataset(std::size_t dim, std::size_t class_count)
      : dim_(dim), class_count_(class_count) {}

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_count_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  void add(hv::IntVector code, int label);

  [[nodiscard]] const hv::IntVector& code(std::size_t i) const;
  [[nodiscard]] int label(std::size_t i) const;

 private:
  std::size_t dim_ = 0;
  std::size_t class_count_ = 0;
  std::vector<hv::IntVector> codes_;
  std::vector<int> labels_;
};

/// Encodes every sample without binarization (parallel).
[[nodiscard]] NonBinaryEncodedDataset encode_dataset_nonbinary(
    const RecordEncoder& encoder, const data::Dataset& dataset);

/// Full non-binary classifier: float class centroids over integer codes,
/// cosine inference on integer queries (the "simple single-layer neural
/// network / perceptron" view of Sec. 3.1).
class FullNonBinaryClassifier {
 public:
  FullNonBinaryClassifier() = default;

  /// Trains by class-wise accumulation of the integer codes, with an
  /// optional perceptron refinement (alpha-scaled add/subtract on
  /// misclassification, `epochs` passes).
  [[nodiscard]] static FullNonBinaryClassifier fit(
      const NonBinaryEncodedDataset& train_set, std::size_t retrain_epochs,
      double alpha, std::uint64_t seed);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept {
    return classes_.empty() ? 0 : classes_.front().size();
  }

  /// argmax cosine over the float centroids. Precondition: fitted and
  /// matching dimension.
  [[nodiscard]] int predict(const hv::IntVector& code) const;

  [[nodiscard]] double accuracy(
      const NonBinaryEncodedDataset& dataset) const;

 private:
  std::vector<std::vector<double>> classes_;  // K x D float centroids
  std::vector<double> norms_;                 // cached l2 norms
};

}  // namespace lehdc::hdc
