// Baseline binary HDC training (Eq. 2): each class hypervector is the
// component-wise majority of its class's sample hypervectors — the
// "averaging" strategy whose limitations Sec. 3.2 dissects.
#pragma once

#include "train/trainer.hpp"

namespace lehdc::train {

class BaselineTrainer final : public Trainer {
 public:
  BaselineTrainer() = default;

  [[nodiscard]] std::string name() const override { return "Baseline"; }

 protected:
  [[nodiscard]] TrainResult run(const hdc::EncodedDataset& train_set,
                                const TrainOptions& options) const override;
};

/// Shared helper: per-class majority bundling (Eq. 2) returning binary
/// class hypervectors; sgn(0) ties break with a random hypervector derived
/// from `seed`. Used by BaselineTrainer and as retraining's initial model.
[[nodiscard]] std::vector<hv::BitVector> bundle_classes(
    const hdc::EncodedDataset& train_set, std::uint64_t seed);

/// Per-class integer accumulation (the non-binary form of Eq. 2), the
/// initial C_nb for the retraining strategies.
[[nodiscard]] std::vector<hv::IntVector> accumulate_classes(
    const hdc::EncodedDataset& train_set);

}  // namespace lehdc::train
