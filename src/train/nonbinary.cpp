#include "train/nonbinary.hpp"

#include <numeric>

#include "train/baseline.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::train {

NonBinaryTrainer::NonBinaryTrainer(const NonBinaryConfig& config)
    : config_(config) {
  util::expects(config.alpha >= 1, "alpha must be a positive integer");
}

TrainResult NonBinaryTrainer::run(const hdc::EncodedDataset& train_set,
                                  const TrainOptions& options) const {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  const util::Stopwatch timer;
  util::Rng rng(options.seed);

  double consumed_seconds = 0.0;
  const auto emit = [&](std::size_t epoch,
                        const hdc::NonBinaryClassifier& snapshot) {
    const double work_mark = timer.elapsed_seconds();
    EpochEvent event;
    event.point.epoch = epoch;
    event.point.train_accuracy = snapshot.accuracy(train_set);
    event.point.train_loss = 1.0 - event.point.train_accuracy;
    if (options.test != nullptr) {
      event.point.test_accuracy = snapshot.accuracy(*options.test);
    }
    event.epoch_seconds = work_mark - consumed_seconds;
    event.eval_seconds = timer.elapsed_seconds() - work_mark;
    options.epoch_observer(event);
    consumed_seconds = timer.elapsed_seconds();
  };

  std::vector<hv::IntVector> classes = accumulate_classes(train_set);
  const std::size_t k_classes = classes.size();

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (std::size_t epoch = 0; epoch < config_.retrain_epochs; ++epoch) {
    if (options.epoch_observer) {
      emit(epoch, hdc::NonBinaryClassifier(classes));
    }
    if (config_.shuffle) {
      rng.shuffle(order.begin(), order.end());
    }
    std::size_t updates = 0;
    for (const std::size_t i : order) {
      const hv::BitVector& h = train_set.hypervector(i);
      const auto label = static_cast<std::size_t>(train_set.label(i));
      std::size_t predicted = 0;
      double best = classes[0].cosine(h);
      for (std::size_t k = 1; k < k_classes; ++k) {
        const double score = classes[k].cosine(h);
        if (score > best) {
          best = score;
          predicted = k;
        }
      }
      if (predicted == label) {
        continue;
      }
      ++updates;
      classes[label].add_scaled(h, config_.alpha);
      classes[predicted].add_scaled(h, -config_.alpha);
    }
    result.epochs_run = epoch + 1;
    if (updates == 0) {
      break;
    }
  }
  if (config_.retrain_epochs == 0) {
    result.epochs_run = 1;
  }

  hdc::NonBinaryClassifier classifier(std::move(classes));
  if (options.epoch_observer) {
    emit(result.epochs_run, classifier);
  }
  result.model = std::make_shared<NonBinaryModel>(std::move(classifier));
  result.train_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace lehdc::train
