// Retraining strategies.
//
//  * RetrainingTrainer — the state-of-the-art QuantHD-style retraining the
//    paper uses as its strongest baseline (Sec. 2.2, Eq. 3, Fig. 2): binary
//    class hypervectors validate, non-binary ones accumulate the ±alpha*H
//    updates of misclassified samples, and the binary model is refreshed by
//    sgn() after every iteration.
//  * EnhancedRetrainingTrainer — the paper's own Sec. 3.3 case study: on a
//    misclassification, *every* class hypervector at least as similar as
//    the correct one is updated, and each update is scaled by the gap
//    between the observed normalized Hamming distance and its ideal value
//    (0 for the correct class, 0.5 for wrong ones).
#pragma once

#include "train/trainer.hpp"

namespace lehdc::train {

struct RetrainConfig {
  /// Learning rate alpha of Eq. 3 for iterations after the first.
  float alpha = 0.05f;
  /// Paper Sec. 5: "alpha = 1.5 in the first iteration".
  float alpha_first = 1.5f;
  /// Paper Sec. 5: "We run 150 iterations to ensure the retraining has
  /// converged."
  std::size_t iterations = 150;
  /// Stop early once an iteration misclassifies no training sample.
  bool stop_when_converged = true;
  /// Visit samples in a fresh random order each iteration.
  bool shuffle = true;
};

class RetrainingTrainer final : public Trainer {
 public:
  explicit RetrainingTrainer(const RetrainConfig& config = {});

  [[nodiscard]] std::string name() const override { return "Retraining"; }

  [[nodiscard]] const RetrainConfig& config() const noexcept {
    return config_;
  }

 protected:
  [[nodiscard]] TrainResult run(const hdc::EncodedDataset& train_set,
                                const TrainOptions& options) const override;

 private:
  RetrainConfig config_;
};

class EnhancedRetrainingTrainer final : public Trainer {
 public:
  explicit EnhancedRetrainingTrainer(const RetrainConfig& config = {});

  [[nodiscard]] std::string name() const override {
    return "EnhancedRetraining";
  }

 protected:
  [[nodiscard]] TrainResult run(const hdc::EncodedDataset& train_set,
                                const TrainOptions& options) const override;

 private:
  RetrainConfig config_;
};

}  // namespace lehdc::train
