// Non-binary HDC (footnote 1 / Sec. 3.1 last paragraph): integer class
// hypervectors with cosine-similarity inference. The optional perceptron
// retraining applies the integer form of Eq. 3.
#pragma once

#include "train/trainer.hpp"

namespace lehdc::train {

struct NonBinaryConfig {
  /// 0 disables retraining (pure Eq. 2 accumulation).
  std::size_t retrain_epochs = 0;
  /// Integer step applied on a misclassification.
  std::int32_t alpha = 1;
  bool shuffle = true;
};

class NonBinaryTrainer final : public Trainer {
 public:
  explicit NonBinaryTrainer(const NonBinaryConfig& config = {});

  [[nodiscard]] std::string name() const override { return "NonBinaryHDC"; }

 protected:
  [[nodiscard]] TrainResult run(const hdc::EncodedDataset& train_set,
                                const TrainOptions& options) const override;

 private:
  NonBinaryConfig config_;
};

}  // namespace lehdc::train
