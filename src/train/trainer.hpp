// The common interface every HDC training strategy implements.
//
// The paper compares four strategies on identical encoded inputs (Table 1):
// baseline bundling, multi-model [8], retraining [4] and LeHDC. All of them
// — plus the enhanced-retraining and AdaptHD variants discussed in Sec. 3 —
// implement Trainer, so the bench harnesses and examples can sweep
// strategies uniformly. A Trainer is immutable and reusable: train() may be
// called repeatedly (e.g. once per trial seed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hdc/batch_scorer.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"

namespace lehdc::train {

/// A trained model: the minimal inference surface shared by single-vector,
/// ensemble and non-binary classifiers. The batch entry points are the
/// primary inference path; predict(query) is batch-of-1.
class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual int predict(const hv::BitVector& query) const = 0;

  /// THE batched prediction surface: classifies any hdc::QueryBatch view
  /// (already-encoded hypervectors, an EncodedDataset, or raw samples plus
  /// their encoder), bit-identically to per-sample encode + predict. The
  /// classifier-backed models override it with hdc::BatchScorer's fused /
  /// blocked paths; the default (for custom Model subclasses) encodes per
  /// sample and routes through predict_batch. `stats` (optional) receives
  /// per-stage seconds and encode bytes. Precondition:
  /// out.size() == queries.size().
  virtual void predict_queries(const hdc::QueryBatch& queries,
                               std::span<int> out,
                               hdc::PredictStats* stats = nullptr) const;

  /// Adapter: predict_queries over already-encoded hypervectors. Results
  /// are bit-identical to calling predict per query. The default loops;
  /// the classifier-backed models override predict_queries instead.
  virtual void predict_batch(std::span<const hv::BitVector> queries,
                             std::span<int> out) const {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out[i] = predict(queries[i]);
    }
  }

  /// Fraction of correctly classified samples in [0, 1]; 0 on empty input.
  /// Built on predict_batch, so worker count never changes the result.
  [[nodiscard]] virtual double accuracy(
      const hdc::EncodedDataset& dataset) const {
    if (dataset.empty()) {
      return 0.0;
    }
    std::vector<int> predicted(dataset.size());
    predict_batch(dataset.hypervectors(), predicted);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      if (predicted[i] == dataset.label(i)) {
        ++correct;
      }
    }
    return static_cast<double>(correct) /
           static_cast<double>(dataset.size());
  }

  /// Model storage in bits (Sec. 5.1 resource comparison).
  [[nodiscard]] virtual std::size_t storage_bits() const noexcept = 0;

  /// Non-null when the model is a plain binary classifier (baseline /
  /// retraining / LeHDC all export exactly K binary hypervectors).
  [[nodiscard]] virtual const hdc::BinaryClassifier* as_binary()
      const noexcept {
    return nullptr;
  }
};

/// One point of a training trajectory (drives Fig. 3 and Fig. 5).
struct EpochPoint {
  std::size_t epoch = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;  // 0 when no test set was supplied
  double train_loss = 0.0;     // strategy-specific (0 if undefined)
};

/// What an epoch observer sees after each training epoch: the trajectory
/// point plus wall-clock timings. `epoch_seconds` is the work time since
/// the previous event (update passes, shuffling, checkpointing);
/// `eval_seconds` is the extra cost of the snapshot evaluation that
/// produced `point` — only incurred because an observer is attached.
struct EpochEvent {
  EpochPoint point;
  double epoch_seconds = 0.0;
  double eval_seconds = 0.0;
};

/// Per-epoch callback invoked by every epoch-based strategy (single-pass
/// strategies emit one event for their only pass). Attaching an observer
/// is what turns on per-epoch snapshot evaluation; without one, trainers
/// skip that cost entirely. Observers run on the training thread and must
/// not retain references past the call.
using EpochObserver = std::function<void(const EpochEvent&)>;

/// The canonical "just collect the trajectory" observer: a no-op whose
/// presence makes train() record TrainResult::trajectory. Replaces the
/// removed TrainOptions::record_trajectory flag.
[[nodiscard]] EpochObserver record_trajectory();

struct TrainOptions {
  /// Seed for any stochasticity inside the strategy (shuffling, dropout,
  /// stochastic flips, tie-breaks).
  std::uint64_t seed = 1;

  /// Optional held-out set evaluated per epoch when an observer is set.
  const hdc::EncodedDataset* test = nullptr;

  /// Per-epoch observer. When set, each epoch is snapshot-evaluated (one
  /// extra inference pass over train and, if given, test) and reported;
  /// train() additionally collects the points into
  /// TrainResult::trajectory. Use record_trajectory() for collection
  /// without a custom callback.
  EpochObserver epoch_observer;

  // --- Fault tolerance (honored by epoch-based trainers, i.e. LeHDC;
  // single-pass strategies ignore these). ---

  /// Write a crash-safe checkpoint to `checkpoint_path` every
  /// `checkpoint_every` epochs (0 disables checkpointing).
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;

  /// Resume a previous run from this checkpoint file. The resumed run
  /// executes the remaining epochs and yields a final model bit-identical
  /// to the uninterrupted run. Empty disables.
  std::string resume_path;
};

struct TrainResult {
  std::shared_ptr<const Model> model;
  /// One point per observed epoch; empty when no observer was attached.
  std::vector<EpochPoint> trajectory;
  std::size_t epochs_run = 0;
  double train_seconds = 0.0;
};

class Trainer {
 public:
  virtual ~Trainer() = default;

  /// Strategy name as printed in table rows (e.g. "Retraining").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains on the encoded dataset. Precondition: !train_set.empty().
  /// Template method: when an observer is attached it is wrapped so every
  /// reported EpochPoint also lands in TrainResult::trajectory, then the
  /// strategy's run() does the actual work.
  [[nodiscard]] TrainResult train(const hdc::EncodedDataset& train_set,
                                  const TrainOptions& options) const;

 protected:
  /// Strategy implementation. Must invoke options.epoch_observer (when
  /// set) once per epoch with a snapshot-evaluated EpochPoint, and skip
  /// snapshot evaluation entirely when it is not set.
  [[nodiscard]] virtual TrainResult run(
      const hdc::EncodedDataset& train_set,
      const TrainOptions& options) const = 0;
};

/// Model wrapper around hdc::BinaryClassifier.
class BinaryModel final : public Model {
 public:
  explicit BinaryModel(hdc::BinaryClassifier classifier)
      : classifier_(std::move(classifier)) {}

  [[nodiscard]] int predict(const hv::BitVector& query) const override {
    return classifier_.predict(query);
  }
  void predict_queries(const hdc::QueryBatch& queries, std::span<int> out,
                       hdc::PredictStats* stats) const override {
    hdc::BatchScorer(classifier_).predict_queries(queries, out, stats);
  }
  void predict_batch(std::span<const hv::BitVector> queries,
                     std::span<int> out) const override {
    hdc::BatchScorer(classifier_).predict_batch(queries, out);
  }
  [[nodiscard]] double accuracy(
      const hdc::EncodedDataset& dataset) const override {
    return classifier_.accuracy(dataset);
  }
  [[nodiscard]] std::size_t storage_bits() const noexcept override {
    return classifier_.class_count() * classifier_.dim();
  }
  [[nodiscard]] const hdc::BinaryClassifier* as_binary()
      const noexcept override {
    return &classifier_;
  }

 private:
  hdc::BinaryClassifier classifier_;
};

/// Model wrapper around hdc::EnsembleClassifier.
class EnsembleModel final : public Model {
 public:
  explicit EnsembleModel(hdc::EnsembleClassifier classifier)
      : classifier_(std::move(classifier)) {}

  [[nodiscard]] int predict(const hv::BitVector& query) const override {
    return classifier_.predict(query);
  }
  void predict_queries(const hdc::QueryBatch& queries, std::span<int> out,
                       hdc::PredictStats* stats) const override {
    hdc::BatchScorer(classifier_).predict_queries(queries, out, stats);
  }
  void predict_batch(std::span<const hv::BitVector> queries,
                     std::span<int> out) const override {
    hdc::BatchScorer(classifier_).predict_batch(queries, out);
  }
  [[nodiscard]] double accuracy(
      const hdc::EncodedDataset& dataset) const override {
    return classifier_.accuracy(dataset);
  }
  [[nodiscard]] std::size_t storage_bits() const noexcept override {
    return classifier_.storage_bits();
  }

 private:
  hdc::EnsembleClassifier classifier_;
};

/// Model wrapper around hdc::NonBinaryClassifier (stores 32-bit components).
class NonBinaryModel final : public Model {
 public:
  explicit NonBinaryModel(hdc::NonBinaryClassifier classifier)
      : classifier_(std::move(classifier)) {}

  [[nodiscard]] int predict(const hv::BitVector& query) const override {
    return classifier_.predict(query);
  }
  void predict_queries(const hdc::QueryBatch& queries, std::span<int> out,
                       hdc::PredictStats* stats) const override {
    hdc::BatchScorer(classifier_).predict_queries(queries, out, stats);
  }
  void predict_batch(std::span<const hv::BitVector> queries,
                     std::span<int> out) const override {
    hdc::BatchScorer(classifier_).predict_batch(queries, out);
  }
  [[nodiscard]] double accuracy(
      const hdc::EncodedDataset& dataset) const override {
    return classifier_.accuracy(dataset);
  }
  [[nodiscard]] std::size_t storage_bits() const noexcept override {
    std::size_t bits = 0;
    for (std::size_t k = 0; k < classifier_.class_count(); ++k) {
      bits += classifier_.class_vector(k).dim() * 32;
    }
    return bits;
  }

 private:
  hdc::NonBinaryClassifier classifier_;
};

}  // namespace lehdc::train
