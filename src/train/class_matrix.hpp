// Shared representation for retraining-style strategies: the non-binary
// class hypervectors C_nb as a K x D float matrix plus fast bipolar update
// and binarization helpers (the two-copy scheme of Fig. 2 / Sec. 4).
#pragma once

#include <vector>

#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"
#include "hv/intvector.hpp"
#include "nn/matrix.hpp"

namespace lehdc::train {

/// Converts integer class hypervectors (Eq. 2 accumulation) to K x D float.
[[nodiscard]] nn::Matrix to_class_matrix(
    const std::vector<hv::IntVector>& classes);

/// row += scale * h where h is bipolar (the Eq. 3 update with the learning
/// rate folded into scale). Precondition: row.size() == h.dim().
void add_hypervector_scaled(std::span<float> row, const hv::BitVector& h,
                            float scale);

/// C = sgn(C_nb) row-wise, packed (Eq. 8; sgn(0) = +1).
[[nodiscard]] std::vector<hv::BitVector> binarize_class_matrix(
    const nn::Matrix& c_nb);

}  // namespace lehdc::train
