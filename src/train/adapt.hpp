// AdaptHD-style adaptive-learning-rate retraining (Imani et al., BioCAS'19),
// the "improved version" Sec. 3.2(2) of the paper discusses: instead of a
// fixed alpha, the update magnitude adapts either to the running training
// error rate (iteration-dependent) or to the similarity gap between the
// winning wrong class and the correct class (data-dependent).
#pragma once

#include "train/trainer.hpp"

namespace lehdc::train {

enum class AdaptMode {
  /// alpha_t = alpha_max * (error rate of the previous iteration / error
  /// rate of the first iteration), clamped to [alpha_min, alpha_max].
  kIterationDependent,
  /// alpha_i = alpha_max * (o_wrong − o_correct) / (2D) per misclassified
  /// sample — large confident mistakes move the hypervectors more.
  kDataDependent,
};

struct AdaptConfig {
  float alpha_max = 1.0f;
  float alpha_min = 0.02f;
  std::size_t iterations = 150;
  AdaptMode mode = AdaptMode::kDataDependent;
  bool stop_when_converged = true;
  bool shuffle = true;
};

class AdaptHdTrainer final : public Trainer {
 public:
  explicit AdaptHdTrainer(const AdaptConfig& config = {});

  [[nodiscard]] std::string name() const override { return "AdaptHD"; }

 protected:
  [[nodiscard]] TrainResult run(const hdc::EncodedDataset& train_set,
                                const TrainOptions& options) const override;

 private:
  AdaptConfig config_;
};

}  // namespace lehdc::train
