#include "train/class_matrix.hpp"

#include "nn/binarize.hpp"
#include "util/check.hpp"

namespace lehdc::train {

nn::Matrix to_class_matrix(const std::vector<hv::IntVector>& classes) {
  util::expects(!classes.empty(), "no class hypervectors");
  nn::Matrix out(classes.size(), classes.front().dim());
  for (std::size_t k = 0; k < classes.size(); ++k) {
    util::expects(classes[k].dim() == out.cols(),
                  "class hypervector dimension mismatch");
    const auto row = out.row(k);
    const auto values = classes[k].values();
    for (std::size_t j = 0; j < values.size(); ++j) {
      row[j] = static_cast<float>(values[j]);
    }
  }
  return out;
}

void add_hypervector_scaled(std::span<float> row, const hv::BitVector& h,
                            float scale) {
  util::expects(row.size() == h.dim(), "dimension mismatch in update");
  const auto words = h.words();
  for (std::size_t j = 0; j < row.size(); ++j) {
    const bool negative = ((words[j / 64] >> (j % 64)) & 1u) != 0;
    row[j] += negative ? -scale : scale;
  }
}

std::vector<hv::BitVector> binarize_class_matrix(const nn::Matrix& c_nb) {
  return nn::binarize_rows(c_nb);
}

}  // namespace lehdc::train
