#include "train/adapt.hpp"

#include <algorithm>
#include <numeric>

#include "train/baseline.hpp"
#include "train/class_matrix.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::train {

AdaptHdTrainer::AdaptHdTrainer(const AdaptConfig& config) : config_(config) {
  util::expects(config.alpha_max > 0.0f, "alpha_max must be positive");
  util::expects(config.alpha_min > 0.0f && config.alpha_min <= config.alpha_max,
                "alpha_min must lie in (0, alpha_max]");
  util::expects(config.iterations >= 1, "need at least one iteration");
}

TrainResult AdaptHdTrainer::run(const hdc::EncodedDataset& train_set,
                                const TrainOptions& options) const {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  const util::Stopwatch timer;
  util::Rng rng(options.seed);

  double consumed_seconds = 0.0;
  const auto emit = [&](std::size_t epoch,
                        const hdc::BinaryClassifier& snapshot) {
    const double work_mark = timer.elapsed_seconds();
    EpochEvent event;
    event.point.epoch = epoch;
    event.point.train_accuracy = snapshot.accuracy(train_set);
    event.point.train_loss = 1.0 - event.point.train_accuracy;
    if (options.test != nullptr) {
      event.point.test_accuracy = snapshot.accuracy(*options.test);
    }
    event.epoch_seconds = work_mark - consumed_seconds;
    event.eval_seconds = timer.elapsed_seconds() - work_mark;
    options.epoch_observer(event);
    consumed_seconds = timer.elapsed_seconds();
  };

  nn::Matrix c_nb = to_class_matrix(accumulate_classes(train_set));
  const std::size_t k_classes = c_nb.rows();
  const auto dim_d = static_cast<double>(train_set.dim());

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  std::vector<hv::BitVector> binary;
  std::vector<std::int64_t> scores(k_classes);

  double first_error_rate = -1.0;
  float alpha_iteration = config_.alpha_max;

  for (std::size_t iteration = 0; iteration < config_.iterations;
       ++iteration) {
    binary = binarize_class_matrix(c_nb);

    if (options.epoch_observer) {
      emit(iteration, hdc::BinaryClassifier(binary));
    }

    if (config_.shuffle) {
      rng.shuffle(order.begin(), order.end());
    }

    std::size_t updates = 0;
    for (const std::size_t i : order) {
      const hv::BitVector& h = train_set.hypervector(i);
      const auto label = static_cast<std::size_t>(train_set.label(i));
      for (std::size_t k = 0; k < k_classes; ++k) {
        scores[k] = hv::BitVector::dot(h, binary[k]);
      }
      std::size_t predicted = 0;
      for (std::size_t k = 1; k < k_classes; ++k) {
        if (scores[k] > scores[predicted]) {
          predicted = k;
        }
      }
      if (predicted == label) {
        continue;
      }
      ++updates;

      float alpha = alpha_iteration;
      if (config_.mode == AdaptMode::kDataDependent) {
        // Similarity gap in [0, 1]: how decisively the wrong class won.
        const double gap =
            static_cast<double>(scores[predicted] - scores[label]) /
            (2.0 * dim_d);
        alpha = std::clamp(config_.alpha_max * static_cast<float>(gap) *
                               static_cast<float>(k_classes),
                           config_.alpha_min, config_.alpha_max);
      }
      add_hypervector_scaled(c_nb.row(label), h, alpha);
      add_hypervector_scaled(c_nb.row(predicted), h, -alpha);
    }

    const double error_rate =
        static_cast<double>(updates) / static_cast<double>(train_set.size());
    if (config_.mode == AdaptMode::kIterationDependent) {
      if (first_error_rate < 0.0) {
        first_error_rate = std::max(error_rate, 1e-9);
      }
      alpha_iteration = std::clamp(
          config_.alpha_max *
              static_cast<float>(error_rate / first_error_rate),
          config_.alpha_min, config_.alpha_max);
    }

    result.epochs_run = iteration + 1;
    if (updates == 0 && config_.stop_when_converged) {
      break;
    }
  }

  hdc::BinaryClassifier classifier(binarize_class_matrix(c_nb));
  if (options.epoch_observer) {
    emit(result.epochs_run, classifier);
  }
  result.model = std::make_shared<BinaryModel>(std::move(classifier));
  result.train_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace lehdc::train
