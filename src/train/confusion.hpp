// Confusion matrix and per-class accuracy metrics. Lives in train (not
// eval) so core's EvalResult can hand one back without a dependency cycle:
// lehdc_eval links lehdc_core, which links lehdc_train.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/encoded_dataset.hpp"
#include "train/trainer.hpp"

namespace lehdc::train {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t class_count);

  void add(int true_label, int predicted_label);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_count_;
  }
  [[nodiscard]] std::size_t count(int true_label, int predicted_label) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  [[nodiscard]] double accuracy() const noexcept;
  /// Recall of one class; 0 when the class has no samples.
  [[nodiscard]] double recall(int label) const;
  /// Precision of one class; 0 when nothing was predicted as it.
  [[nodiscard]] double precision(int label) const;
  /// Unweighted mean of per-class recalls (balanced accuracy).
  [[nodiscard]] double macro_recall() const;

 private:
  std::size_t class_count_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // row = true, col = predicted
};

/// Evaluates a model over a dataset into a confusion matrix.
[[nodiscard]] ConfusionMatrix evaluate_confusion(
    const Model& model, const hdc::EncodedDataset& dataset);

}  // namespace lehdc::train
