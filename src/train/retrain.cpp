#include "train/retrain.hpp"

#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/baseline.hpp"
#include "train/class_matrix.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::train {

namespace {

RetrainConfig validated(RetrainConfig config) {
  util::expects(config.alpha > 0.0f, "alpha must be positive");
  util::expects(config.alpha_first > 0.0f, "alpha_first must be positive");
  util::expects(config.iterations >= 1, "need at least one iteration");
  return config;
}

/// Runs the Fig. 2 loop; `enhanced` switches between the basic Eq. 3 update
/// and the Sec. 3.3 multi-class, similarity-scaled update.
TrainResult run_retraining(const hdc::EncodedDataset& train_set,
                           const TrainOptions& options,
                           const RetrainConfig& config, bool enhanced) {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  const util::Stopwatch timer;
  util::Rng rng(options.seed);

  static obs::Counter& iteration_counter =
      obs::Registry::global().counter("train.retrain.iterations");
  static obs::Counter& update_counter =
      obs::Registry::global().counter("train.retrain.updates");

  // Work time (update passes, shuffling) since the last observer event,
  // excluding snapshot-evaluation time, for EpochEvent::epoch_seconds.
  double consumed_seconds = 0.0;
  const auto emit = [&](std::size_t epoch,
                        const hdc::BinaryClassifier& snapshot) {
    const double work_mark = timer.elapsed_seconds();
    EpochEvent event;
    event.point.epoch = epoch;
    event.point.train_accuracy = snapshot.accuracy(train_set);
    event.point.train_loss = 1.0 - event.point.train_accuracy;
    if (options.test != nullptr) {
      event.point.test_accuracy = snapshot.accuracy(*options.test);
    }
    event.epoch_seconds = work_mark - consumed_seconds;
    event.eval_seconds = timer.elapsed_seconds() - work_mark;
    options.epoch_observer(event);
    consumed_seconds = timer.elapsed_seconds();
  };

  // Initial training (Eq. 2): C_nb accumulates the raw sums, C = sgn(C_nb).
  nn::Matrix c_nb = to_class_matrix(accumulate_classes(train_set));
  const std::size_t k_classes = c_nb.rows();
  const auto dim_d = static_cast<double>(train_set.dim());

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  std::vector<hv::BitVector> binary;
  std::vector<std::int64_t> scores(k_classes);

  for (std::size_t iteration = 0; iteration < config.iterations;
       ++iteration) {
    binary = binarize_class_matrix(c_nb);

    if (options.epoch_observer) {
      emit(iteration, hdc::BinaryClassifier(binary));
    }

    const obs::TraceSpan span(enhanced ? "retrain.enhanced_iteration"
                                       : "retrain.iteration");
    if (config.shuffle) {
      rng.shuffle(order.begin(), order.end());
    }
    const float alpha =
        iteration == 0 ? config.alpha_first : config.alpha;

    std::size_t updates = 0;
    for (const std::size_t i : order) {
      const hv::BitVector& h = train_set.hypervector(i);
      const auto label = static_cast<std::size_t>(train_set.label(i));

      for (std::size_t k = 0; k < k_classes; ++k) {
        scores[k] = hv::BitVector::dot(h, binary[k]);
      }
      std::size_t predicted = 0;
      for (std::size_t k = 1; k < k_classes; ++k) {
        if (scores[k] > scores[predicted]) {
          predicted = k;
        }
      }
      if (predicted == label) {
        continue;
      }
      ++updates;

      if (!enhanced) {
        // Eq. 3: only the correct and the single winning wrong class move.
        add_hypervector_scaled(c_nb.row(label), h, alpha);
        add_hypervector_scaled(c_nb.row(predicted), h, -alpha);
        continue;
      }

      // Sec. 3.3 enhancement: normalized Hamming d_k = (D − o_k) / (2D);
      // the ideal distance is 0 for the correct class and 0.5 for wrong
      // ones, and |d_k − ideal| scales each update.
      const double d_correct =
          (dim_d - static_cast<double>(scores[label])) / (2.0 * dim_d);
      add_hypervector_scaled(c_nb.row(label), h,
                             alpha * static_cast<float>(d_correct));
      for (std::size_t k = 0; k < k_classes; ++k) {
        if (k == label || scores[k] < scores[label]) {
          continue;  // only classes at least as similar as the correct one
        }
        const double d_k =
            (dim_d - static_cast<double>(scores[k])) / (2.0 * dim_d);
        const double scale = std::max(0.0, 0.5 - d_k);
        add_hypervector_scaled(c_nb.row(k), h,
                               -alpha * static_cast<float>(scale));
      }
    }

    result.epochs_run = iteration + 1;
    iteration_counter.add();
    update_counter.add(updates);
    if (updates == 0 && config.stop_when_converged) {
      break;
    }
  }

  hdc::BinaryClassifier classifier(binarize_class_matrix(c_nb));
  if (options.epoch_observer) {
    emit(result.epochs_run, classifier);
  }
  result.model = std::make_shared<BinaryModel>(std::move(classifier));
  result.train_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace

RetrainingTrainer::RetrainingTrainer(const RetrainConfig& config)
    : config_(validated(config)) {}

TrainResult RetrainingTrainer::run(const hdc::EncodedDataset& train_set,
                                   const TrainOptions& options) const {
  return run_retraining(train_set, options, config_, /*enhanced=*/false);
}

EnhancedRetrainingTrainer::EnhancedRetrainingTrainer(
    const RetrainConfig& config)
    : config_(validated(config)) {}

TrainResult EnhancedRetrainingTrainer::run(
    const hdc::EncodedDataset& train_set, const TrainOptions& options) const {
  return run_retraining(train_set, options, config_, /*enhanced=*/true);
}

}  // namespace lehdc::train
