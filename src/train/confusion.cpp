#include "train/confusion.hpp"

#include "util/check.hpp"

namespace lehdc::train {

ConfusionMatrix::ConfusionMatrix(std::size_t class_count)
    : class_count_(class_count), cells_(class_count * class_count, 0) {
  util::expects(class_count > 0, "confusion matrix needs >= 1 class");
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  util::expects(true_label >= 0 &&
                    static_cast<std::size_t>(true_label) < class_count_,
                "true label out of range");
  util::expects(predicted_label >= 0 &&
                    static_cast<std::size_t>(predicted_label) < class_count_,
                "predicted label out of range");
  ++cells_[static_cast<std::size_t>(true_label) * class_count_ +
           static_cast<std::size_t>(predicted_label)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  util::expects(true_label >= 0 &&
                    static_cast<std::size_t>(true_label) < class_count_ &&
                    predicted_label >= 0 &&
                    static_cast<std::size_t>(predicted_label) < class_count_,
                "label out of range");
  return cells_[static_cast<std::size_t>(true_label) * class_count_ +
                static_cast<std::size_t>(predicted_label)];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) {
    return 0.0;
  }
  std::size_t correct = 0;
  for (std::size_t k = 0; k < class_count_; ++k) {
    correct += cells_[k * class_count_ + k];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int label) const {
  const auto k = static_cast<std::size_t>(label);
  util::expects(label >= 0 && k < class_count_, "label out of range");
  std::size_t row_total = 0;
  for (std::size_t j = 0; j < class_count_; ++j) {
    row_total += cells_[k * class_count_ + j];
  }
  if (row_total == 0) {
    return 0.0;
  }
  return static_cast<double>(cells_[k * class_count_ + k]) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::precision(int label) const {
  const auto k = static_cast<std::size_t>(label);
  util::expects(label >= 0 && k < class_count_, "label out of range");
  std::size_t col_total = 0;
  for (std::size_t i = 0; i < class_count_; ++i) {
    col_total += cells_[i * class_count_ + k];
  }
  if (col_total == 0) {
    return 0.0;
  }
  return static_cast<double>(cells_[k * class_count_ + k]) /
         static_cast<double>(col_total);
}

double ConfusionMatrix::macro_recall() const {
  double sum = 0.0;
  for (std::size_t k = 0; k < class_count_; ++k) {
    sum += recall(static_cast<int>(k));
  }
  return sum / static_cast<double>(class_count_);
}

ConfusionMatrix evaluate_confusion(const Model& model,
                                   const hdc::EncodedDataset& dataset) {
  ConfusionMatrix matrix(dataset.class_count());
  // One batched pass over the dataset; the cells are filled serially in
  // sample order, so the matrix is identical for every worker count.
  std::vector<int> predicted(dataset.size());
  model.predict_batch(dataset.hypervectors(), predicted);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    matrix.add(dataset.label(i), predicted[i]);
  }
  return matrix;
}

}  // namespace lehdc::train
