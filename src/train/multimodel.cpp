#include "train/multimodel.hpp"

#include <bit>
#include <numeric>

#include "hv/bitslice.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::train {

namespace {

/// Flips each set bit of `candidates` in `target` independently with
/// probability p.
void stochastic_flip(hv::BitVector& target, const hv::BitVector& candidates,
                     float p, util::Rng& rng) {
  const auto cand_words = candidates.words();
  const auto target_words = target.words();
  for (std::size_t w = 0; w < cand_words.size(); ++w) {
    std::uint64_t bits = cand_words[w];
    std::uint64_t flip_mask = 0;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      if (rng.next_float() < p) {
        flip_mask |= std::uint64_t{1} << b;
      }
    }
    target_words[w] ^= flip_mask;
  }
}

}  // namespace

MultiModelTrainer::MultiModelTrainer(const MultiModelConfig& config)
    : config_(config) {
  util::expects(config.models_per_class >= 1,
                "need at least one hypervector per class");
  util::expects(config.flip_probability > 0.0f &&
                    config.flip_probability <= 1.0f,
                "flip probability must lie in (0, 1]");
  util::expects(config.epochs >= 1, "need at least one epoch");
}

TrainResult MultiModelTrainer::run(const hdc::EncodedDataset& train_set,
                                   const TrainOptions& options) const {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  const util::Stopwatch timer;
  util::Rng rng(options.seed);

  double consumed_seconds = 0.0;

  const std::size_t k_classes = train_set.class_count();
  const std::size_t m = config_.models_per_class;
  const std::size_t dim = train_set.dim();
  const hv::BitVector tie_break = hv::BitVector::random(dim, rng);

  // Initialization: partition each class's samples into M random groups and
  // bundle each group (falling back to random hypervectors for groups that
  // end up empty — e.g. fewer class samples than M).
  std::vector<std::vector<std::size_t>> by_class(k_classes);
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    by_class[static_cast<std::size_t>(train_set.label(i))].push_back(i);
  }

  std::vector<std::vector<hv::BitVector>> models(k_classes);
  for (std::size_t k = 0; k < k_classes; ++k) {
    auto& indices = by_class[k];
    rng.shuffle(indices.begin(), indices.end());
    models[k].reserve(m);
    for (std::size_t g = 0; g < m; ++g) {
      hv::BitSliceAccumulator accumulator(dim);
      for (std::size_t j = g; j < indices.size(); j += m) {
        accumulator.add(train_set.hypervector(indices[j]));
      }
      if (accumulator.added() == 0) {
        models[k].push_back(hv::BitVector::random(dim, rng));
      } else {
        models[k].push_back(accumulator.majority(tie_break));
      }
    }
  }

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  float flip_probability = config_.flip_probability;
  std::vector<std::vector<hv::BitVector>> best_models;
  double best_train_accuracy = -1.0;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    if (options.epoch_observer || config_.keep_best) {
      const double work_mark = timer.elapsed_seconds();
      const hdc::EnsembleClassifier snapshot(models);
      const double train_accuracy = snapshot.accuracy(train_set);
      if (config_.keep_best && train_accuracy > best_train_accuracy) {
        best_train_accuracy = train_accuracy;
        best_models = models;
      }
      if (options.epoch_observer) {
        EpochEvent event;
        event.point.epoch = epoch;
        event.point.train_accuracy = train_accuracy;
        event.point.train_loss = 1.0 - train_accuracy;
        if (options.test != nullptr) {
          event.point.test_accuracy = snapshot.accuracy(*options.test);
        }
        event.epoch_seconds = work_mark - consumed_seconds;
        event.eval_seconds = timer.elapsed_seconds() - work_mark;
        options.epoch_observer(event);
      }
      consumed_seconds = timer.elapsed_seconds();
    }

    if (config_.shuffle) {
      rng.shuffle(order.begin(), order.end());
    }

    std::size_t updates = 0;
    for (const std::size_t i : order) {
      const hv::BitVector& h = train_set.hypervector(i);
      const auto label = static_cast<std::size_t>(train_set.label(i));

      // Ensemble argmax, remembering the winner and the best hypervector of
      // the correct class.
      std::size_t best_class = 0;
      std::size_t best_model = 0;
      std::int64_t best_score = hv::BitVector::dot(h, models[0][0]);
      std::size_t correct_best = 0;
      std::int64_t correct_score =
          hv::BitVector::dot(h, models[label][0]);
      for (std::size_t k = 0; k < k_classes; ++k) {
        for (std::size_t g = 0; g < m; ++g) {
          const std::int64_t score = hv::BitVector::dot(h, models[k][g]);
          if (score > best_score) {
            best_score = score;
            best_class = k;
            best_model = g;
          }
          if (k == label && score > correct_score) {
            correct_score = score;
            correct_best = g;
          }
        }
      }
      if (best_class == label) {
        continue;
      }
      ++updates;

      // Pull the correct class's best hypervector toward the sample
      // (candidates = disagreeing bits) and push the winning wrong
      // hypervector away (candidates = agreeing bits).
      hv::BitVector disagree = models[label][correct_best];
      disagree.bind_inplace(h);  // XOR: 1 where they differ
      stochastic_flip(models[label][correct_best], disagree,
                      flip_probability, rng);

      hv::BitVector agree = models[best_class][best_model];
      agree.bind_inplace(h);
      // Complement inside the dimension: agree bits are where XOR is 0.
      for (auto& word : agree.words()) {
        word = ~word;
      }
      // Mask the tail beyond D by XOR-ing with an all-ones pattern only on
      // valid components: rebuild via hamming-safe trick — clear tail bits.
      if (dim % 64 != 0) {
        agree.words().back() &= (std::uint64_t{1} << (dim % 64)) - 1;
      }
      stochastic_flip(models[best_class][best_model], agree,
                      flip_probability, rng);
    }

    flip_probability *= config_.flip_decay;
    result.epochs_run = epoch + 1;
    if (updates == 0 && config_.stop_when_converged) {
      break;
    }
  }

  // Export the best ensemble observed (including the post-final-epoch
  // state) rather than whatever the last stochastic step left behind.
  if (config_.keep_best) {
    const hdc::EnsembleClassifier final_snapshot(models);
    if (final_snapshot.accuracy(train_set) < best_train_accuracy &&
        !best_models.empty()) {
      models = std::move(best_models);
    }
  }

  hdc::EnsembleClassifier classifier(std::move(models));
  if (options.epoch_observer) {
    const double work_mark = timer.elapsed_seconds();
    EpochEvent event;
    event.point.epoch = result.epochs_run;
    event.point.train_accuracy = classifier.accuracy(train_set);
    event.point.train_loss = 1.0 - event.point.train_accuracy;
    if (options.test != nullptr) {
      event.point.test_accuracy = classifier.accuracy(*options.test);
    }
    event.epoch_seconds = work_mark - consumed_seconds;
    event.eval_seconds = timer.elapsed_seconds() - work_mark;
    options.epoch_observer(event);
  }
  result.model = std::make_shared<EnsembleModel>(std::move(classifier));
  result.train_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace lehdc::train
