#include "train/trainer.hpp"

namespace lehdc::train {

EpochObserver record_trajectory() {
  return [](const EpochEvent&) {};
}

TrainResult Trainer::train(const hdc::EncodedDataset& train_set,
                           const TrainOptions& options) const {
  if (!options.epoch_observer) {
    return run(train_set, options);
  }
  std::vector<EpochPoint> trajectory;
  const EpochObserver& user = options.epoch_observer;
  TrainOptions inner = options;
  inner.epoch_observer = [&trajectory, &user](const EpochEvent& event) {
    trajectory.push_back(event.point);
    user(event);
  };
  TrainResult result = run(train_set, inner);
  result.trajectory = std::move(trajectory);
  return result;
}

}  // namespace lehdc::train
