#include "train/trainer.hpp"

#include "util/stopwatch.hpp"

namespace lehdc::train {

EpochObserver record_trajectory() {
  return [](const EpochEvent&) {};
}

void Model::predict_queries(const hdc::QueryBatch& queries,
                            std::span<int> out,
                            hdc::PredictStats* stats) const {
  if (stats != nullptr) {
    *stats = hdc::PredictStats{};
    stats->samples = queries.size();
  }
  if (!queries.raw()) {
    const util::Stopwatch watch;
    predict_batch(queries.encoded(), out);
    if (stats != nullptr) {
      stats->score_seconds = watch.elapsed_seconds();
    }
    return;
  }
  // Reference fallback for custom Model subclasses: per-sample encode, then
  // the model's batch path. Classifier-backed models override with
  // BatchScorer's blocked/fused raw paths.
  const data::Dataset& dataset = queries.samples();
  const hdc::Encoder& encoder = queries.encoder();
  std::vector<hv::BitVector> encoded;
  encoded.reserve(dataset.size());
  const util::Stopwatch encode_watch;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    encoded.push_back(encoder.encode(dataset.sample(i)));
  }
  if (stats != nullptr) {
    stats->encode_seconds = encode_watch.elapsed_seconds();
  }
  const util::Stopwatch score_watch;
  predict_batch(encoded, out);
  if (stats != nullptr) {
    stats->score_seconds = score_watch.elapsed_seconds();
  }
}

TrainResult Trainer::train(const hdc::EncodedDataset& train_set,
                           const TrainOptions& options) const {
  if (!options.epoch_observer) {
    return run(train_set, options);
  }
  std::vector<EpochPoint> trajectory;
  const EpochObserver& user = options.epoch_observer;
  TrainOptions inner = options;
  inner.epoch_observer = [&trajectory, &user](const EpochEvent& event) {
    trajectory.push_back(event.point);
    user(event);
  };
  TrainResult result = run(train_set, inner);
  result.trajectory = std::move(trajectory);
  return result;
}

}  // namespace lehdc::train
