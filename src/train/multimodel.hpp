// SearcHD-style multi-model HDC (Imani et al., TCAD'19 [8]) — the ensemble
// baseline of Table 1 ("we follow the approach in [8] and choose 64
// hypervectors per class").
//
// Each class holds M binary hypervectors, initialized by bundling disjoint
// random subsets of the class's training samples. Training is stochastic
// bit-flipping: when a sample is misclassified, the most similar hypervector
// of the correct class flips its disagreeing bits toward the sample with
// probability `flip_probability`, and the winning wrong hypervector flips
// its agreeing bits away with the same probability. Inference picks the
// class owning the single most similar hypervector — so storage (and
// Hamming-compare work) grows M-fold, the Sec. 5.1 resource drawback.
#pragma once

#include "train/trainer.hpp"

namespace lehdc::train {

struct MultiModelConfig {
  /// Hypervectors per class (paper: 64).
  std::size_t models_per_class = 64;
  /// Per-bit flip probability on an update.
  float flip_probability = 0.01f;
  /// Multiplies the flip probability after every epoch (simulated
  /// annealing of the stochastic search).
  float flip_decay = 0.85f;
  std::size_t epochs = 20;
  bool stop_when_converged = true;
  bool shuffle = true;
  /// Track training accuracy per epoch and export the best ensemble seen
  /// (stochastic search can wander away from good states; SearcHD-style
  /// training reports the best model).
  bool keep_best = true;
};

class MultiModelTrainer final : public Trainer {
 public:
  explicit MultiModelTrainer(const MultiModelConfig& config = {});

  [[nodiscard]] std::string name() const override { return "Multi-Model"; }

  [[nodiscard]] const MultiModelConfig& config() const noexcept {
    return config_;
  }

 protected:
  [[nodiscard]] TrainResult run(const hdc::EncodedDataset& train_set,
                                const TrainOptions& options) const override;

 private:
  MultiModelConfig config_;
};

}  // namespace lehdc::train
