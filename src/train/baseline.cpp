#include "train/baseline.hpp"

#include "hv/bitslice.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::train {

std::vector<hv::BitVector> bundle_classes(
    const hdc::EncodedDataset& train_set, std::uint64_t seed) {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  util::Rng rng(seed);
  const hv::BitVector tie_break = hv::BitVector::random(train_set.dim(), rng);

  std::vector<hv::BitSliceAccumulator> accumulators(
      train_set.class_count(), hv::BitSliceAccumulator(train_set.dim()));
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    accumulators[static_cast<std::size_t>(train_set.label(i))].add(
        train_set.hypervector(i));
  }

  std::vector<hv::BitVector> classes;
  classes.reserve(accumulators.size());
  for (auto& accumulator : accumulators) {
    util::expects(accumulator.added() > 0,
                  "every class needs at least one training sample");
    classes.push_back(accumulator.majority(tie_break));
  }
  return classes;
}

std::vector<hv::IntVector> accumulate_classes(
    const hdc::EncodedDataset& train_set) {
  util::expects(!train_set.empty(), "cannot train on an empty dataset");
  std::vector<hv::IntVector> classes(train_set.class_count(),
                                     hv::IntVector(train_set.dim()));
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    classes[static_cast<std::size_t>(train_set.label(i))].add(
        train_set.hypervector(i));
  }
  return classes;
}

TrainResult BaselineTrainer::run(const hdc::EncodedDataset& train_set,
                                 const TrainOptions& options) const {
  const util::Stopwatch timer;
  hdc::BinaryClassifier classifier(bundle_classes(train_set, options.seed));

  TrainResult result;
  result.epochs_run = 1;
  if (options.epoch_observer) {
    const double work_seconds = timer.elapsed_seconds();
    EpochEvent event;
    event.point.epoch = 0;
    event.point.train_accuracy = classifier.accuracy(train_set);
    if (options.test != nullptr) {
      event.point.test_accuracy = classifier.accuracy(*options.test);
    }
    event.epoch_seconds = work_seconds;
    event.eval_seconds = timer.elapsed_seconds() - work_seconds;
    options.epoch_observer(event);
  }
  result.model = std::make_shared<BinaryModel>(std::move(classifier));
  result.train_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace lehdc::train
