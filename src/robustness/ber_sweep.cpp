#include "robustness/ber_sweep.hpp"

#include <sstream>

#include "robustness/fault_injection.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lehdc::robustness {

std::vector<BerPoint> ber_sweep(const hdc::BinaryClassifier& classifier,
                                const hdc::EncodedDataset& test,
                                const BerSweepConfig& config) {
  util::expects(classifier.class_count() > 0, "classifier is empty");
  util::expects(!test.empty(), "test set is empty");
  util::expects(classifier.dim() == test.dim(),
                "classifier/test dimension mismatch");
  util::expects(config.trials >= 1, "need at least one trial");
  util::expects(!config.bers.empty(), "need at least one BER point");
  util::expects(config.corrupt_model || config.corrupt_queries,
                "the fault model must corrupt the model, queries, or both");

  std::vector<BerPoint> points;
  points.reserve(config.bers.size());
  for (std::size_t b = 0; b < config.bers.size(); ++b) {
    const double ber = config.bers[b];
    std::vector<double> accuracies;
    accuracies.reserve(config.trials);
    for (std::size_t t = 0; t < config.trials; ++t) {
      // One decorrelated stream per (BER, trial) cell, independent of
      // evaluation order.
      util::Rng master(config.seed);
      util::Rng rng(master.derive_seed(b * 8191 + t));
      const double accuracy = [&] {
        if (ber == 0.0) {
          return classifier.accuracy(test);
        }
        const hdc::BinaryClassifier faulty =
            config.corrupt_model ? corrupt_classifier(classifier, ber, rng)
                                 : classifier;
        if (config.corrupt_queries) {
          return faulty.accuracy(corrupt_queries(test, ber, rng));
        }
        return faulty.accuracy(test);
      }();
      accuracies.push_back(accuracy);
    }
    const util::Summary summary = util::summarize(accuracies);
    points.push_back(BerPoint{ber, summary.mean, summary.stddev, summary.min,
                              summary.max});
  }
  return points;
}

void write_sweep_csv(const std::string& path,
                     const std::vector<SweepSeries>& series) {
  util::expects(!series.empty(), "no sweep series to write");
  const std::size_t rows = series.front().points.size();
  for (const auto& s : series) {
    util::expects(s.points.size() == rows,
                  "sweep series disagree on BER points");
  }

  std::ostringstream out;
  out << "ber";
  for (const auto& s : series) {
    out << ',' << s.name << " mean accuracy," << s.name << " std";
  }
  out << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    out << series.front().points[r].ber;
    for (const auto& s : series) {
      out << ',' << s.points[r].mean_accuracy << ',' << s.points[r].stddev;
    }
    out << '\n';
  }
  util::atomic_write_file(path, out.view());
}

}  // namespace lehdc::robustness
