// Bit-error fault injection for HDC models and queries.
//
// LeHDC's central deployment claim is that its trained model is *just* a
// binary HDC classifier, so it inherits HDC's tolerance to memory bit
// errors (the associative-memory hardware setting of Karunaratne et al.,
// "In-memory hyperdimensional computing", and Schmuck et al.'s dense
// binary HDC hardware work). This module quantifies that claim: it flips
// stored class-hypervector bits and/or encoded-query bits at a
// configurable bit-error rate (BER) and measures the surviving accuracy.
//
// All injection is deterministic given a util::Rng, so sweeps are exactly
// reproducible (and a regression in the noise envelope is a test failure,
// not a flake).
#pragma once

#include <cstddef>
#include <cstdint>

#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"
#include "hv/bitvector.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lehdc::robustness {

/// Flips each of the D components of `hv` independently with probability
/// `ber` (clamped to [0, 1]). Returns the number of flipped bits.
/// Precondition: ber is finite and >= 0.
std::size_t inject_bit_errors(hv::BitVector& hv, double ber, util::Rng& rng);

/// A copy of `classifier` whose stored class hypervectors went through a
/// memory with the given bit-error rate. Classes are corrupted in
/// parallel, each from a child seed drawn from `rng` up front in class
/// order — the result is bit-identical for a given rng state regardless
/// of the pool's thread count (the chaos determinism contract).
[[nodiscard]] hdc::BinaryClassifier corrupt_classifier(
    const hdc::BinaryClassifier& classifier, double ber, util::Rng& rng);

/// As above but on an explicit pool (tests pin worker counts with this).
[[nodiscard]] hdc::BinaryClassifier corrupt_classifier(
    const hdc::BinaryClassifier& classifier, double ber, util::Rng& rng,
    util::ThreadPool& pool);

/// A copy of `dataset` whose encoded query hypervectors went through a
/// noisy channel with the given bit-error rate (labels are untouched).
[[nodiscard]] hdc::EncodedDataset corrupt_queries(
    const hdc::EncodedDataset& dataset, double ber, util::Rng& rng);

}  // namespace lehdc::robustness
