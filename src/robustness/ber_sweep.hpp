// Accuracy-vs-BER sweeps: the noise-tolerance envelope of a trained model.
//
// For each bit-error rate, the sweep corrupts fresh copies of the model
// and/or the query set over several independent trials (decorrelated RNG
// streams derived from one master seed) and summarizes the surviving
// accuracy. This is the measurement behind bench/fig_ber_robustness:
// LeHDC's accuracy gain over baseline bundling must survive memory faults
// for the paper's "zero-overhead deployment" story to hold on real
// (faulty) associative-memory hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdc/classifier.hpp"
#include "hdc/encoded_dataset.hpp"

namespace lehdc::robustness {

struct BerSweepConfig {
  /// Bit-error rates to evaluate (typical memory-fault envelope).
  std::vector<double> bers = {0.0, 1e-4, 1e-3, 1e-2, 5e-2};

  /// Independent corruption trials per BER point.
  std::size_t trials = 5;

  /// Inject faults into the stored class hypervectors (memory faults).
  bool corrupt_model = true;

  /// Inject faults into the encoded queries (transmission/encoder faults).
  bool corrupt_queries = false;

  /// Master seed; trial t at BER index b draws from a decorrelated child
  /// stream, so every point is reproducible in isolation.
  std::uint64_t seed = 1;
};

/// One row of the sweep: accuracy statistics across trials at a fixed BER.
struct BerPoint {
  double ber = 0.0;
  double mean_accuracy = 0.0;
  double stddev = 0.0;
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
};

/// Evaluates `classifier` on `test` under the configured fault model.
/// Preconditions: classifier and test are non-empty with matching dims;
/// config.trials >= 1 and config.bers non-empty.
[[nodiscard]] std::vector<BerPoint> ber_sweep(
    const hdc::BinaryClassifier& classifier, const hdc::EncodedDataset& test,
    const BerSweepConfig& config);

/// One named sweep (e.g. per training strategy) for CSV reporting.
struct SweepSeries {
  std::string name;
  std::vector<BerPoint> points;
};

/// Writes `series` as a CSV: ber, <name> mean, <name> std, ... — one row
/// per BER (the union across series must agree, which ber_sweep with a
/// shared config guarantees). Throws std::runtime_error on IO failure.
void write_sweep_csv(const std::string& path,
                     const std::vector<SweepSeries>& series);

}  // namespace lehdc::robustness
