#include "robustness/fault_injection.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace lehdc::robustness {

std::size_t inject_bit_errors(hv::BitVector& hv, double ber,
                              util::Rng& rng) {
  util::expects(ber >= 0.0 && ber == ber, "bit-error rate must be >= 0");
  const double p = std::min(ber, 1.0);
  if (p == 0.0 || hv.dim() == 0) {
    return 0;
  }
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < hv.dim(); ++i) {
    if (rng.next_double() < p) {
      hv.flip(i);
      ++flipped;
    }
  }
  return flipped;
}

hdc::BinaryClassifier corrupt_classifier(
    const hdc::BinaryClassifier& classifier, double ber, util::Rng& rng) {
  std::vector<hv::BitVector> classes;
  classes.reserve(classifier.class_count());
  for (std::size_t k = 0; k < classifier.class_count(); ++k) {
    hv::BitVector hv = classifier.class_hypervector(k);
    inject_bit_errors(hv, ber, rng);
    classes.push_back(std::move(hv));
  }
  return hdc::BinaryClassifier(std::move(classes));
}

hdc::EncodedDataset corrupt_queries(const hdc::EncodedDataset& dataset,
                                    double ber, util::Rng& rng) {
  hdc::EncodedDataset corrupted(dataset.dim(), dataset.class_count());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    hv::BitVector hv = dataset.hypervector(i);
    inject_bit_errors(hv, ber, rng);
    corrupted.add(std::move(hv), dataset.label(i));
  }
  return corrupted;
}

}  // namespace lehdc::robustness
