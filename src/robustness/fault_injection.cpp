#include "robustness/fault_injection.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace lehdc::robustness {

std::size_t inject_bit_errors(hv::BitVector& hv, double ber,
                              util::Rng& rng) {
  util::expects(ber >= 0.0 && ber == ber, "bit-error rate must be >= 0");
  const double p = std::min(ber, 1.0);
  if (p == 0.0 || hv.dim() == 0) {
    return 0;
  }
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < hv.dim(); ++i) {
    if (rng.next_double() < p) {
      hv.flip(i);
      ++flipped;
    }
  }
  return flipped;
}

hdc::BinaryClassifier corrupt_classifier(
    const hdc::BinaryClassifier& classifier, double ber, util::Rng& rng) {
  return corrupt_classifier(classifier, ber, rng,
                            util::ThreadPool::global());
}

hdc::BinaryClassifier corrupt_classifier(
    const hdc::BinaryClassifier& classifier, double ber, util::Rng& rng,
    util::ThreadPool& pool) {
  const std::size_t n = classifier.class_count();
  // Draw one child seed per class *sequentially* from the caller's rng,
  // then corrupt each class from its own generator. The rng consumption
  // and every flip pattern are thereby fixed by (rng state, ber, n) alone
  // — chunking and thread count cannot change a single bit.
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t k = 0; k < n; ++k) {
    seeds[k] = rng.derive_seed(k);
  }
  std::vector<hv::BitVector> classes;
  classes.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    classes.push_back(classifier.class_hypervector(k));
  }
  pool.parallel_for(0, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      util::Rng class_rng(seeds[k]);
      inject_bit_errors(classes[k], ber, class_rng);
    }
  });
  return hdc::BinaryClassifier(std::move(classes));
}

hdc::EncodedDataset corrupt_queries(const hdc::EncodedDataset& dataset,
                                    double ber, util::Rng& rng) {
  hdc::EncodedDataset corrupted(dataset.dim(), dataset.class_count());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    hv::BitVector hv = dataset.hypervector(i);
    inject_bit_errors(hv, ber, rng);
    corrupted.add(std::move(hv), dataset.label(i));
  }
  return corrupted;
}

}  // namespace lehdc::robustness
