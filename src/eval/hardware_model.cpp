#include "eval/hardware_model.hpp"

#include "util/check.hpp"

namespace lehdc::eval {

HardwareEstimate estimate_hardware(core::Strategy strategy,
                                   const ResourceParams& params,
                                   const HardwareConfig& hardware) {
  util::expects(hardware.clock_mhz > 0.0, "clock must be positive");
  util::expects(hardware.lanes > 0, "need at least one lane");

  const ResourceEstimate resources = estimate_resources(strategy, params);

  // Hypervectors visited during the similarity search (per-class models or
  // the full ensemble).
  std::size_t vectors_visited = params.classes;
  if (strategy == core::Strategy::kMultiModel) {
    vectors_visited = params.classes * params.models_per_class;
  }

  const std::size_t word_ops = resources.inference_word_ops;
  const std::size_t lane_cycles =
      (word_ops + hardware.lanes - 1) / hardware.lanes;
  const std::size_t cycles =
      lane_cycles + vectors_visited * hardware.compare_cycles;

  HardwareEstimate out;
  out.strategy = resources.strategy;
  out.cycles_per_query = cycles;
  out.latency_us = static_cast<double>(cycles) / hardware.clock_mhz;
  out.energy_nj = static_cast<double>(word_ops) *
                  hardware.energy_per_word_op_pj / 1000.0;
  out.model_kib = static_cast<double>(resources.model_bits) / 8192.0;
  return out;
}

}  // namespace lehdc::eval
