// Analytic resource model for the Sec. 5.1 discussion: LeHDC inference is
// byte-identical to baseline/retraining binary HDC (same storage, same
// XOR+popcount work per query), while the multi-model ensemble multiplies
// both by its ensemble size; non-binary HDC multiplies storage by the
// component width.
#pragma once

#include <cstddef>
#include <string>

#include "core/pipeline.hpp"

namespace lehdc::eval {

struct ResourceEstimate {
  std::string strategy;
  /// Class-model storage in bits.
  std::size_t model_bits = 0;
  /// Item memory (encoder codebook) storage in bits — identical across
  /// strategies because LeHDC never touches encoding.
  std::size_t encoder_bits = 0;
  /// 64-bit XOR+popcount word operations per query for the similarity
  /// search stage (excludes encoding, which is also identical).
  std::size_t inference_word_ops = 0;
};

struct ResourceParams {
  std::size_t dim = 10000;
  std::size_t classes = 10;
  std::size_t features = 784;
  std::size_t levels = 32;
  std::size_t models_per_class = 64;  // multi-model only
  std::size_t nonbinary_bits = 32;    // component width, non-binary only
};

[[nodiscard]] ResourceEstimate estimate_resources(core::Strategy strategy,
                                                  const ResourceParams& params);

}  // namespace lehdc::eval
