// Compatibility header: the confusion-matrix metrics moved to
// train/confusion.hpp so core::Pipeline::evaluate could return one without
// an eval→core→eval dependency cycle. Existing eval::ConfusionMatrix users
// keep compiling through these aliases.
#pragma once

#include "train/confusion.hpp"

namespace lehdc::eval {

using ConfusionMatrix = train::ConfusionMatrix;
using train::evaluate_confusion;

}  // namespace lehdc::eval
