// Multi-trial experiment runner: encodes a dataset once per seed, trains a
// strategy, and aggregates test accuracy over trials as "mean ± std" — the
// cell format of Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"

namespace lehdc::eval {

struct StrategyOutcome {
  std::string strategy;
  util::Summary test_accuracy;   // percent (0..100)
  util::Summary train_accuracy;  // percent
  double mean_train_seconds = 0.0;
  double mean_encode_seconds = 0.0;
};

/// Runs `trials` independent trainings of `base` (seed varied per trial:
/// seed_i = base.seed + i) on the given split and aggregates accuracy.
/// Each trial rebuilds the item memories, so the ±std covers encoding
/// randomness as well as training stochasticity, as in the paper.
[[nodiscard]] StrategyOutcome run_trials(const data::TrainTestSplit& split,
                                         const core::PipelineConfig& base,
                                         std::size_t trials);

/// Convenience: run_trials for several strategies on one split.
[[nodiscard]] std::vector<StrategyOutcome> compare_strategies(
    const data::TrainTestSplit& split,
    const std::vector<core::PipelineConfig>& configs, std::size_t trials);

/// Like compare_strategies, but encodes the split once per trial and feeds
/// the same encoded hypervectors to every strategy — 1/|configs| of the
/// encoding work, and exactly the paper's protocol (all strategies share
/// encoding; only training differs). All configs must agree on dim, levels
/// and seed; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<StrategyOutcome> compare_strategies_shared_encoding(
    const data::TrainTestSplit& split,
    const std::vector<core::PipelineConfig>& configs, std::size_t trials);

}  // namespace lehdc::eval
