#include "eval/experiment.hpp"

#include "hdc/encoded_dataset.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace lehdc::eval {

StrategyOutcome run_trials(const data::TrainTestSplit& split,
                           const core::PipelineConfig& base,
                           std::size_t trials) {
  util::expects(trials >= 1, "need at least one trial");
  util::expects(!split.train.empty() && !split.test.empty(),
                "need non-empty train and test sets");

  std::vector<double> test_acc;
  std::vector<double> train_acc;
  test_acc.reserve(trials);
  train_acc.reserve(trials);
  double train_seconds = 0.0;
  double encode_seconds = 0.0;

  for (std::size_t t = 0; t < trials; ++t) {
    core::PipelineConfig cfg = base;
    cfg.seed = base.seed + t;
    core::Pipeline pipeline(cfg);
    const core::FitReport report = pipeline.fit(split.train, &split.test);
    test_acc.push_back(report.test_accuracy * 100.0);
    train_acc.push_back(report.train_accuracy * 100.0);
    train_seconds += report.timings.train_seconds;
    encode_seconds += report.timings.encode_seconds;
  }

  StrategyOutcome outcome;
  outcome.strategy = core::strategy_name(base.strategy);
  outcome.test_accuracy = util::summarize(test_acc);
  outcome.train_accuracy = util::summarize(train_acc);
  outcome.mean_train_seconds = train_seconds / static_cast<double>(trials);
  outcome.mean_encode_seconds = encode_seconds / static_cast<double>(trials);
  return outcome;
}

std::vector<StrategyOutcome> compare_strategies(
    const data::TrainTestSplit& split,
    const std::vector<core::PipelineConfig>& configs, std::size_t trials) {
  std::vector<StrategyOutcome> outcomes;
  outcomes.reserve(configs.size());
  for (const auto& config : configs) {
    outcomes.push_back(run_trials(split, config, trials));
  }
  return outcomes;
}

std::vector<StrategyOutcome> compare_strategies_shared_encoding(
    const data::TrainTestSplit& split,
    const std::vector<core::PipelineConfig>& configs, std::size_t trials) {
  util::expects(!configs.empty(), "need at least one strategy config");
  util::expects(trials >= 1, "need at least one trial");
  util::expects(!split.train.empty() && !split.test.empty(),
                "need non-empty train and test sets");
  for (const auto& cfg : configs) {
    util::expects(cfg.dim == configs.front().dim &&
                      cfg.levels == configs.front().levels &&
                      cfg.seed == configs.front().seed,
                  "shared-encoding comparison requires identical encoder "
                  "settings across strategies");
  }

  struct Accumulator {
    std::vector<double> test_acc;
    std::vector<double> train_acc;
    double train_seconds = 0.0;
  };
  std::vector<Accumulator> accumulators(configs.size());
  double encode_seconds_total = 0.0;

  const auto [lo, hi] = split.train.value_range();
  for (std::size_t t = 0; t < trials; ++t) {
    hdc::RecordEncoderConfig encoder_cfg;
    encoder_cfg.dim = configs.front().dim;
    encoder_cfg.feature_count = split.train.feature_count();
    encoder_cfg.levels = configs.front().levels;
    encoder_cfg.range_lo = lo;
    encoder_cfg.range_hi = hi > lo ? hi : lo + 1.0f;
    encoder_cfg.seed = configs.front().seed + t;
    const hdc::RecordEncoder encoder(encoder_cfg);

    const util::Stopwatch encode_timer;
    const hdc::EncodedDataset encoded_train =
        hdc::encode_dataset(encoder, split.train);
    const hdc::EncodedDataset encoded_test =
        hdc::encode_dataset(encoder, split.test);
    encode_seconds_total += encode_timer.elapsed_seconds();

    for (std::size_t s = 0; s < configs.size(); ++s) {
      const auto trainer = make_trainer(configs[s]);
      train::TrainOptions options;
      options.seed = configs[s].seed + t;
      const train::TrainResult result =
          trainer->train(encoded_train, options);
      accumulators[s].test_acc.push_back(
          result.model->accuracy(encoded_test) * 100.0);
      accumulators[s].train_acc.push_back(
          result.model->accuracy(encoded_train) * 100.0);
      accumulators[s].train_seconds += result.train_seconds;
    }
  }

  std::vector<StrategyOutcome> outcomes;
  outcomes.reserve(configs.size());
  for (std::size_t s = 0; s < configs.size(); ++s) {
    StrategyOutcome outcome;
    outcome.strategy = core::strategy_name(configs[s].strategy);
    outcome.test_accuracy = util::summarize(accumulators[s].test_acc);
    outcome.train_accuracy = util::summarize(accumulators[s].train_acc);
    outcome.mean_train_seconds =
        accumulators[s].train_seconds / static_cast<double>(trials);
    outcome.mean_encode_seconds =
        encode_seconds_total / static_cast<double>(trials);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace lehdc::eval
