// First-order digital-hardware cost model for HDC inference.
//
// Sec. 5.1 of the paper argues LeHDC inherits the baseline's hardware
// profile ("hardware acceleration on FPGA and in-memory computing is
// explored to support the inference in microseconds"). This model turns
// the per-strategy word-operation counts of resource.hpp into latency and
// energy figures for a parameterized accelerator datapath: a bank of
// 64-bit XOR+popcount lanes running at a given clock, with an accumulate-
// compare stage per class hypervector.
//
// The numbers are first-order (no memory hierarchy, no pipelining stalls)
// — meant to reproduce the paper's *relative* claims: LeHDC == baseline,
// multi-model scales with M, everything lands in the microsecond class.
#pragma once

#include "eval/resource.hpp"

namespace lehdc::eval {

struct HardwareConfig {
  /// Accelerator clock in MHz.
  double clock_mhz = 200.0;
  /// 64-bit XOR+popcount lanes operating per cycle.
  std::size_t lanes = 64;
  /// Energy per 64-bit XOR+popcount lane operation, picojoules.
  double energy_per_word_op_pj = 2.0;
  /// Cycles for the final compare/argmax per class hypervector visited.
  std::size_t compare_cycles = 1;
};

struct HardwareEstimate {
  std::string strategy;
  std::size_t cycles_per_query = 0;
  double latency_us = 0.0;
  double energy_nj = 0.0;
  double model_kib = 0.0;
};

/// Latency/energy for one similarity-search query under the datapath.
[[nodiscard]] HardwareEstimate estimate_hardware(
    core::Strategy strategy, const ResourceParams& params,
    const HardwareConfig& hardware);

}  // namespace lehdc::eval
