// Table 2 hyper-parameter presets and Table 1 strategy configurations.
//
// The paper tunes LeHDC per dataset (Table 2) and fixes the baselines'
// settings in Sec. 5 (retraining: alpha = 0.05, 1.5 on the first iteration,
// 150 iterations; multi-model: 64 hypervectors per class). These presets
// reproduce those numbers; the bench harnesses scale epochs/ensemble size
// down in their fast default mode.
#pragma once

#include "core/pipeline.hpp"
#include "data/profiles.hpp"

namespace lehdc::eval {

/// LeHDC hyper-parameters from Table 2 for one benchmark.
[[nodiscard]] core::LeHdcConfig lehdc_preset(data::BenchmarkId id);

/// Full pipeline configuration for one (benchmark, strategy) cell of
/// Table 1 at hypervector dimension `dim` and master seed `seed`.
[[nodiscard]] core::PipelineConfig table1_config(data::BenchmarkId id,
                                                 core::Strategy strategy,
                                                 std::size_t dim,
                                                 std::uint64_t seed);

/// The four strategies of Table 1, in row order.
[[nodiscard]] std::vector<core::Strategy> table1_strategies();

}  // namespace lehdc::eval
