#include "eval/presets.hpp"

namespace lehdc::eval {

core::LeHdcConfig lehdc_preset(data::BenchmarkId id) {
  core::LeHdcConfig cfg;
  switch (id) {
    case data::BenchmarkId::kMnist:
      cfg.weight_decay = 0.05f;
      cfg.learning_rate = 0.01f;
      cfg.batch_size = 64;
      cfg.dropout_rate = 0.5f;
      cfg.epochs = 100;
      break;
    case data::BenchmarkId::kFashionMnist:
      cfg.weight_decay = 0.03f;
      cfg.learning_rate = 0.1f;
      cfg.batch_size = 256;
      cfg.dropout_rate = 0.3f;
      cfg.epochs = 200;
      break;
    case data::BenchmarkId::kCifar10:
      cfg.weight_decay = 0.03f;
      cfg.learning_rate = 0.001f;
      cfg.batch_size = 512;
      cfg.dropout_rate = 0.3f;
      cfg.epochs = 200;
      break;
    case data::BenchmarkId::kUcihar:
    case data::BenchmarkId::kIsolet:
    case data::BenchmarkId::kPamap:
      cfg.weight_decay = 0.05f;
      cfg.learning_rate = 0.01f;
      cfg.batch_size = 64;
      cfg.dropout_rate = 0.5f;
      cfg.epochs = 100;
      break;
  }
  return cfg;
}

core::PipelineConfig table1_config(data::BenchmarkId id,
                                   core::Strategy strategy, std::size_t dim,
                                   std::uint64_t seed) {
  core::PipelineConfig cfg;
  cfg.dim = dim;
  cfg.seed = seed;
  cfg.strategy = strategy;
  cfg.lehdc = lehdc_preset(id);

  // Sec. 5 baselines' settings.
  cfg.retrain.alpha = 0.05f;
  cfg.retrain.alpha_first = 1.5f;
  cfg.retrain.iterations = 150;
  cfg.multimodel.models_per_class = 64;
  return cfg;
}

std::vector<core::Strategy> table1_strategies() {
  return {core::Strategy::kBaseline, core::Strategy::kMultiModel,
          core::Strategy::kRetraining, core::Strategy::kLeHdc};
}

}  // namespace lehdc::eval
