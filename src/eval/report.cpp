#include "eval/report.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/table.hpp"

namespace lehdc::eval {

namespace {

/// Collects the union of epochs and a per-series epoch -> point index map.
std::vector<std::size_t> epoch_union(const std::vector<Series>& series) {
  std::vector<std::size_t> epochs;
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      epochs.push_back(p.epoch);
    }
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs;
}

const train::EpochPoint* find_point(const Series& s, std::size_t epoch) {
  for (const auto& p : s.points) {
    if (p.epoch == epoch) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace

void print_series(std::ostream& out, const std::vector<Series>& series,
                  std::size_t stride) {
  if (series.empty()) {
    return;
  }
  std::vector<std::string> header{"epoch"};
  for (const auto& s : series) {
    header.push_back(s.name + " train%");
    header.push_back(s.name + " test%");
  }
  util::TextTable table(std::move(header));

  const auto epochs = epoch_union(series);
  const std::size_t step = std::max<std::size_t>(1, stride);
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    if (e % step != 0 && e + 1 != epochs.size()) {
      continue;  // always keep the final epoch
    }
    std::vector<std::string> row{std::to_string(epochs[e])};
    for (const auto& s : series) {
      const auto* point = find_point(s, epochs[e]);
      if (point == nullptr) {
        row.emplace_back("");
        row.emplace_back("");
      } else {
        row.push_back(util::TextTable::cell(point->train_accuracy * 100.0));
        row.push_back(util::TextTable::cell(point->test_accuracy * 100.0));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

void write_series_csv(const std::string& path,
                      const std::vector<Series>& series) {
  util::CsvWriter csv(path);
  std::vector<std::string> header{"epoch"};
  for (const auto& s : series) {
    header.push_back(s.name + "_train_accuracy");
    header.push_back(s.name + "_test_accuracy");
  }
  csv.write_row(header);

  for (const std::size_t epoch : epoch_union(series)) {
    std::vector<std::string> row{std::to_string(epoch)};
    for (const auto& s : series) {
      const auto* point = find_point(s, epoch);
      if (point == nullptr) {
        row.emplace_back("");
        row.emplace_back("");
      } else {
        row.push_back(std::to_string(point->train_accuracy));
        row.push_back(std::to_string(point->test_accuracy));
      }
    }
    csv.write_row(row);
  }
}

}  // namespace lehdc::eval
