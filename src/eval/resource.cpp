#include "eval/resource.hpp"

namespace lehdc::eval {

ResourceEstimate estimate_resources(core::Strategy strategy,
                                    const ResourceParams& params) {
  const std::size_t words = (params.dim + 63) / 64;
  ResourceEstimate out;
  out.strategy = core::strategy_name(strategy);
  out.encoder_bits = (params.features + params.levels) * params.dim;

  switch (strategy) {
    case core::Strategy::kBaseline:
    case core::Strategy::kRetraining:
    case core::Strategy::kEnhancedRetraining:
    case core::Strategy::kAdaptHd:
    case core::Strategy::kLeHdc:
      // One binary hypervector per class: K Hamming comparisons per query.
      out.model_bits = params.classes * params.dim;
      out.inference_word_ops = params.classes * words;
      break;
    case core::Strategy::kMultiModel:
      out.model_bits =
          params.classes * params.models_per_class * params.dim;
      out.inference_word_ops =
          params.classes * params.models_per_class * words;
      break;
    case core::Strategy::kNonBinary:
      out.model_bits =
          params.classes * params.dim * params.nonbinary_bits;
      // Integer dot products cost ~1 multiply-add per component; expressed
      // in 64-bit word-op equivalents (64 components per word baseline).
      out.inference_word_ops = params.classes * params.dim;
      break;
  }
  return out;
}

}  // namespace lehdc::eval
