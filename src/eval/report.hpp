// Report helpers: print training trajectories and persist figure series as
// CSV so they can be re-plotted against the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "train/trainer.hpp"

namespace lehdc::eval {

/// One named trajectory (e.g. "basic retraining" vs "enhanced retraining").
struct Series {
  std::string name;
  std::vector<train::EpochPoint> points;
};

/// Prints a compact multi-series table to `out`: one row per epoch with
/// train/test accuracy columns per series. Epochs are the union across
/// series; missing points print blank. `stride` prints every n-th epoch.
/// Callers own the stream choice — library code never assumes stdout.
void print_series(std::ostream& out, const std::vector<Series>& series,
                  std::size_t stride = 1);

/// Writes all series to a CSV: epoch, <name> train acc, <name> test acc...
void write_series_csv(const std::string& path,
                      const std::vector<Series>& series);

}  // namespace lehdc::eval
