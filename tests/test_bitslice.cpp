#include "hv/bitslice.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace lehdc::hv {
namespace {

TEST(BitSliceAccumulator, CountsSingleAdd) {
  BitSliceAccumulator acc(10);
  BitVector hv(10);
  hv.set_bit(3, true);
  acc.add(hv);
  EXPECT_EQ(acc.added(), 1u);
  EXPECT_EQ(acc.count(3), 1u);
  EXPECT_EQ(acc.count(0), 0u);
}

TEST(BitSliceAccumulator, RejectsDimensionMismatch) {
  BitSliceAccumulator acc(10);
  const BitVector wrong(11);
  EXPECT_THROW(acc.add(wrong), std::invalid_argument);
}

TEST(BitSliceAccumulator, MajorityOfEmptyThrows) {
  const BitSliceAccumulator acc(10);
  const BitVector tie(10);
  EXPECT_THROW((void)acc.majority(tie), std::invalid_argument);
}

TEST(BitSliceAccumulator, CountsMatchNaiveCounters) {
  util::Rng rng(1);
  const std::size_t dim = 200;
  const std::size_t n = 100;
  BitSliceAccumulator acc(dim);
  std::vector<std::size_t> naive(dim, 0);
  for (std::size_t s = 0; s < n; ++s) {
    const BitVector hv = BitVector::random(dim, rng);
    acc.add(hv);
    for (std::size_t i = 0; i < dim; ++i) {
      naive[i] += hv.get_bit(i) ? 1 : 0;
    }
  }
  EXPECT_EQ(acc.added(), n);
  for (std::size_t i = 0; i < dim; ++i) {
    ASSERT_EQ(acc.count(i), naive[i]) << "component " << i;
  }
}

TEST(BitSliceAccumulator, MajorityMatchesIntVectorSign) {
  util::Rng rng(2);
  const std::size_t dim = 300;
  BitSliceAccumulator acc(dim);
  IntVector reference(dim);
  const BitVector tie = BitVector::random(dim, rng);
  for (std::size_t s = 0; s < 33; ++s) {
    const BitVector hv = BitVector::random(dim, rng);
    acc.add(hv);
    reference.add(hv);
  }
  EXPECT_EQ(acc.majority(tie), reference.sign(tie));
}

TEST(BitSliceAccumulator, MajorityTieBreaksOnEvenCounts) {
  BitSliceAccumulator acc(2);
  BitVector a(2);
  a.set(0, -1);  // component 0: one −1 vote and one +1 vote → tie
  BitVector b(2);
  acc.add(a);
  acc.add(b);
  BitVector tie_neg(2);
  tie_neg.set(0, -1);
  tie_neg.set(1, -1);
  const BitVector with_neg = acc.majority(tie_neg);
  EXPECT_EQ(with_neg.get(0), -1);  // tied component follows the tie-break
  EXPECT_EQ(with_neg.get(1), 1);   // two +1 votes: a clear majority
  const BitVector tie_pos(2);
  const BitVector with_pos = acc.majority(tie_pos);
  EXPECT_EQ(with_pos.get(0), 1);
  EXPECT_EQ(with_pos.get(1), 1);
}

TEST(BitSliceAccumulator, OddCountsNeverTie) {
  util::Rng rng(3);
  const std::size_t dim = 100;
  BitSliceAccumulator acc(dim);
  IntVector reference(dim);
  for (std::size_t s = 0; s < 7; ++s) {
    const BitVector hv = BitVector::random(dim, rng);
    acc.add(hv);
    reference.add(hv);
  }
  // With an odd add count the tie-break must be irrelevant.
  BitVector ties_neg(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    ties_neg.set_bit(i, true);
  }
  EXPECT_EQ(acc.majority(ties_neg), acc.majority(BitVector(dim)));
  EXPECT_EQ(acc.majority(BitVector(dim)), reference.sign());
}

TEST(BitSliceAccumulator, ToIntVectorMatchesBipolarSum) {
  util::Rng rng(4);
  const std::size_t dim = 150;
  BitSliceAccumulator acc(dim);
  IntVector reference(dim);
  for (std::size_t s = 0; s < 21; ++s) {
    const BitVector hv = BitVector::random(dim, rng);
    acc.add(hv);
    reference.add(hv);
  }
  EXPECT_EQ(acc.to_int_vector(), reference);
}

TEST(BitSliceAccumulator, PlaneCountGrowsLogarithmically) {
  util::Rng rng(5);
  BitSliceAccumulator acc(64);
  BitVector ones(64);
  for (std::size_t i = 0; i < 64; ++i) {
    ones.set_bit(i, true);
  }
  for (std::size_t s = 0; s < 1000; ++s) {
    acc.add(ones);
  }
  // Counting to 1000 needs exactly 10 bit planes.
  EXPECT_EQ(acc.plane_count(), 10u);
  EXPECT_EQ(acc.count(0), 1000u);
}

TEST(BitSliceAccumulator, ResetClearsState) {
  util::Rng rng(6);
  BitSliceAccumulator acc(32);
  acc.add(BitVector::random(32, rng));
  acc.reset();
  EXPECT_EQ(acc.added(), 0u);
  EXPECT_EQ(acc.plane_count(), 0u);
  acc.add(BitVector::random(32, rng));
  EXPECT_EQ(acc.added(), 1u);
}

class BitSliceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(BitSliceSweep, AgreesWithNaiveAcrossShapes) {
  const auto [dim, adds] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(dim * 1000 + adds));
  BitSliceAccumulator acc(dim);
  IntVector reference(dim);
  const BitVector tie = BitVector::random(dim, rng);
  for (std::size_t s = 0; s < adds; ++s) {
    const BitVector hv = BitVector::random(dim, rng);
    acc.add(hv);
    reference.add(hv);
  }
  ASSERT_EQ(acc.majority(tie), reference.sign(tie));
  ASSERT_EQ(acc.to_int_vector(), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitSliceSweep,
    ::testing::Combine(::testing::Values(1, 63, 64, 65, 500),
                       ::testing::Values(1, 2, 3, 16, 17, 128)));

}  // namespace
}  // namespace lehdc::hv
