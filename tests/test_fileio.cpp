#include "util/fileio.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/serial.hpp"

namespace lehdc::util {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, MatchesKnownVectors) {
  // Reference values of CRC-32/ISO-HDLC (the zlib polynomial).
  EXPECT_EQ(crc32("", 0), 0u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string text = "incremental checksum across chunks";
  const std::uint32_t whole = crc32(text);
  std::uint32_t running = 0;
  for (std::size_t i = 0; i < text.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, text.size() - i);
    running = crc32(text.data() + i, n, running);
  }
  EXPECT_EQ(running, whole);
}

TEST(Crc32, DetectsEverySingleBitFlip) {
  const std::string original = "payload under test";
  const std::uint32_t reference = crc32(original);
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = original;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      EXPECT_NE(crc32(corrupted), reference)
          << "flip at byte " << byte << " bit " << bit << " undetected";
    }
  }
}

// ------------------------------------------------------ atomic_write_file

TEST(AtomicWrite, WritesAndReadsBack) {
  const auto path = temp_path("atomic_basic.bin");
  const std::string payload("binary\0payload", 14);
  atomic_write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::remove(path.c_str());
}

TEST(AtomicWrite, ReplacesExistingFile) {
  const auto path = temp_path("atomic_replace.bin");
  atomic_write_file(path, "old content");
  atomic_write_file(path, "new");
  EXPECT_EQ(read_file(path), "new");
  std::remove(path.c_str());
}

TEST(AtomicWrite, LeavesNoTemporaryBehind) {
  const auto path = temp_path("atomic_clean.bin");
  atomic_write_file(path, "content");
  EXPECT_FALSE(file_exists(path + ".tmp.lehdc"));
  std::remove(path.c_str());
}

TEST(AtomicWrite, UnwritableDirectoryThrowsAndTargetAbsent) {
  const std::string path = "/nonexistent-dir/file.bin";
  EXPECT_THROW(atomic_write_file(path, "x"), std::runtime_error);
  EXPECT_FALSE(file_exists(path));
}

TEST(AtomicWrite, CrashMidSaveLeavesOldFileIntact) {
  // Simulate a crash during serialization: the writer callback throws
  // after emitting half the payload. The previously published file must
  // survive byte-for-byte and no temp file may linger.
  const auto path = temp_path("atomic_crash.bin");
  atomic_write_file(path, "the last good model");
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& out) {
                                   out << "half-writ";
                                   throw std::runtime_error("killed");
                                 }),
               std::runtime_error);
  EXPECT_EQ(read_file(path), "the last good model");
  EXPECT_FALSE(file_exists(path + ".tmp.lehdc"));
  std::remove(path.c_str());
}

TEST(AtomicWrite, WriterStreamFailureThrows) {
  const auto path = temp_path("atomic_badstream.bin");
  EXPECT_THROW(atomic_write_file(
                   path, [](std::ostream& out) { out.setstate(
                                                     std::ios::failbit); }),
               std::runtime_error);
  EXPECT_FALSE(file_exists(path));
}

// -------------------------------------------------------- framed payload

std::string frame(std::string_view payload) {
  std::ostringstream out;
  write_framed_payload(out, payload);
  return out.str();
}

TEST(FramedPayload, RoundTrips) {
  const std::string payload = "framed bytes \x01\x02\x03";
  std::istringstream in(frame(payload));
  EXPECT_EQ(read_framed_payload(in, 1 << 20, "test"), payload);
}

TEST(FramedPayload, EmptyPayloadRoundTrips) {
  std::istringstream in(frame(""));
  EXPECT_EQ(read_framed_payload(in, 1 << 20, "test"), "");
}

TEST(FramedPayload, SingleFlippedBitDetected) {
  const std::string framed = frame("all twenty-six letters of data");
  // Flip one bit inside the payload region (after the u64 size field).
  for (std::size_t byte : {sizeof(std::uint64_t), framed.size() - 5}) {
    std::string corrupted = framed;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x10);
    std::istringstream in(corrupted);
    try {
      (void)read_framed_payload(in, 1 << 20, "unit-test artifact");
      FAIL() << "bit flip at byte " << byte << " went undetected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("unit-test artifact"),
                std::string::npos)
          << "error should name the context: " << e.what();
    }
  }
}

TEST(FramedPayload, TruncationDetected) {
  const std::string framed = frame("some payload that will be cut short");
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{12},
                           framed.size() - 1}) {
    std::istringstream in(framed.substr(0, keep));
    EXPECT_THROW((void)read_framed_payload(in, 1 << 20, "test"),
                 std::runtime_error)
        << "truncation to " << keep << " bytes went undetected";
  }
}

TEST(FramedPayload, ImplausibleSizeRejectedWithoutAllocation) {
  // A corrupt size field claiming an exabyte payload must be rejected by
  // the max_size guard, not by attempting the allocation.
  std::string framed = frame("tiny");
  const std::uint64_t absurd = 1ULL << 60;
  std::memcpy(framed.data(), &absurd, sizeof(absurd));
  std::istringstream in(framed);
  EXPECT_THROW((void)read_framed_payload(in, 1 << 20, "test"),
               std::runtime_error);
}

// ------------------------------------------------ PayloadWriter / Reader

TEST(PayloadSerial, PodRoundTrip) {
  PayloadWriter writer;
  writer.pod<std::uint64_t>(0x1122334455667788ULL);
  writer.pod<float>(2.5F);
  writer.pod<std::uint8_t>(7);
  PayloadReader reader(writer.str(), "buffer");
  EXPECT_EQ(reader.pod<std::uint64_t>(), 0x1122334455667788ULL);
  EXPECT_EQ(reader.pod<float>(), 2.5F);
  EXPECT_EQ(reader.pod<std::uint8_t>(), 7);
  reader.expect_done();
}

TEST(PayloadSerial, ShortReadThrowsWithOffset) {
  PayloadWriter writer;
  writer.pod<std::uint32_t>(1);
  PayloadReader reader(writer.str(), "short.bin");
  (void)reader.pod<std::uint32_t>();
  try {
    (void)reader.pod<std::uint64_t>();
    FAIL() << "read past end did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("short.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 4"), std::string::npos) << what;
  }
}

TEST(PayloadSerial, TrailingBytesRejected) {
  PayloadWriter writer;
  writer.pod<std::uint32_t>(1);
  writer.pod<std::uint32_t>(2);
  PayloadReader reader(writer.str(), "buffer");
  (void)reader.pod<std::uint32_t>();
  EXPECT_THROW(reader.expect_done(), std::runtime_error);
}

}  // namespace
}  // namespace lehdc::util
