// Tests for the IDX (MNIST-format) and CSV dataset loaders, using files
// synthesized into the test temp directory.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "data/csv_loader.hpp"
#include "data/idx_loader.hpp"

namespace lehdc::data {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_be32(std::ostream& out, std::uint32_t value) {
  const unsigned char bytes[4] = {
      static_cast<unsigned char>(value >> 24),
      static_cast<unsigned char>(value >> 16),
      static_cast<unsigned char>(value >> 8),
      static_cast<unsigned char>(value)};
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

/// Writes a tiny IDX pair: `count` images of rows x cols whose pixel (i, p)
/// is (i * 16 + p) mod 256, labelled i mod 3.
void write_idx_pair(const std::string& image_path,
                    const std::string& label_path, std::uint32_t count,
                    std::uint32_t rows, std::uint32_t cols) {
  std::ofstream images(image_path, std::ios::binary);
  write_be32(images, 0x00000803);
  write_be32(images, count);
  write_be32(images, rows);
  write_be32(images, cols);
  for (std::uint32_t i = 0; i < count; ++i) {
    for (std::uint32_t p = 0; p < rows * cols; ++p) {
      const auto pixel = static_cast<unsigned char>((i * 16 + p) % 256);
      images.write(reinterpret_cast<const char*>(&pixel), 1);
    }
  }
  std::ofstream labels(label_path, std::ios::binary);
  write_be32(labels, 0x00000801);
  write_be32(labels, count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto label = static_cast<unsigned char>(i % 3);
    labels.write(reinterpret_cast<const char*>(&label), 1);
  }
}

TEST(IdxLoader, LoadsImagesAndLabels) {
  const auto images = temp_path("t10k.idx3");
  const auto labels = temp_path("t10k.idx1");
  write_idx_pair(images, labels, 6, 4, 4);
  const Dataset dataset = load_idx(images, labels, 3);
  EXPECT_EQ(dataset.size(), 6u);
  EXPECT_EQ(dataset.feature_count(), 16u);
  EXPECT_EQ(dataset.class_count(), 3u);
  EXPECT_EQ(dataset.label(4), 1);
  // Pixels normalize to [0, 1].
  EXPECT_NEAR(dataset.sample(0)[5], 5.0f / 255.0f, 1e-6f);
  EXPECT_NEAR(dataset.sample(1)[0], 16.0f / 255.0f, 1e-6f);
  std::remove(images.c_str());
  std::remove(labels.c_str());
}

TEST(IdxLoader, MissingFileThrows) {
  EXPECT_THROW((void)load_idx(temp_path("nope.idx3"), temp_path("nope.idx1")),
               std::runtime_error);
}

TEST(IdxLoader, BadMagicThrows) {
  const auto images = temp_path("bad.idx3");
  const auto labels = temp_path("bad.idx1");
  write_idx_pair(images, labels, 2, 2, 2);
  {
    std::ofstream broken(images, std::ios::binary);
    write_be32(broken, 0x12345678);
    write_be32(broken, 2);
    write_be32(broken, 2);
    write_be32(broken, 2);
  }
  EXPECT_THROW((void)load_idx(images, labels), std::runtime_error);
  std::remove(images.c_str());
  std::remove(labels.c_str());
}

TEST(IdxLoader, CountMismatchThrows) {
  const auto images = temp_path("mismatch.idx3");
  const auto labels = temp_path("mismatch.idx1");
  write_idx_pair(images, labels, 4, 2, 2);
  const auto other_labels = temp_path("mismatch5.idx1");
  {
    std::ofstream out(other_labels, std::ios::binary);
    write_be32(out, 0x00000801);
    write_be32(out, 5);
    for (int i = 0; i < 5; ++i) {
      const char z = 0;
      out.write(&z, 1);
    }
  }
  EXPECT_THROW((void)load_idx(images, other_labels), std::runtime_error);
  std::remove(images.c_str());
  std::remove(labels.c_str());
  std::remove(other_labels.c_str());
}

TEST(IdxLoader, HeaderFileSizeMismatchIsReportedWithPath) {
  // Image header claims more samples than the payload holds — must be
  // rejected up front (declared vs actual size), naming the file.
  const auto images = temp_path("oversold.idx3");
  const auto labels = temp_path("oversold.idx1");
  write_idx_pair(images, labels, 4, 3, 3);
  {
    std::fstream patch(images,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(4);
    write_be32(patch, 10);
  }
  try {
    (void)load_idx(images, labels);
    FAIL() << "oversold header accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(images), std::string::npos)
        << e.what();
  }
  std::remove(images.c_str());
  std::remove(labels.c_str());
}

TEST(IdxLoader, AbsurdDimensionsRejectedBeforeAllocation) {
  // A crafted header declaring ~2^63 pixels per image must fail the size
  // cross-check instead of attempting the allocation.
  const auto images = temp_path("absurd.idx3");
  const auto labels = temp_path("absurd.idx1");
  write_idx_pair(images, labels, 2, 2, 2);
  {
    std::ofstream out(images, std::ios::binary | std::ios::trunc);
    write_be32(out, 0x00000803);
    write_be32(out, 2);
    write_be32(out, 0xFFFFFFFF);  // rows
    write_be32(out, 0xFFFFFFFF);  // cols
    const char byte = 0;
    out.write(&byte, 1);
  }
  EXPECT_THROW((void)load_idx(images, labels), std::runtime_error);
  std::remove(images.c_str());
  std::remove(labels.c_str());
}

TEST(IdxLoader, LabelPayloadSizeMismatchThrows) {
  const auto images = temp_path("labelshort.idx3");
  const auto labels = temp_path("labelshort.idx1");
  write_idx_pair(images, labels, 4, 2, 2);
  {
    // Label file declares 4 labels but carries only 2 payload bytes.
    std::ofstream out(labels, std::ios::binary | std::ios::trunc);
    write_be32(out, 0x00000801);
    write_be32(out, 4);
    const char bytes[2] = {0, 1};
    out.write(bytes, 2);
  }
  EXPECT_THROW((void)load_idx(images, labels), std::runtime_error);
  std::remove(images.c_str());
  std::remove(labels.c_str());
}

TEST(IdxLoader, LabelAboveClassCountIsReportedWithSample) {
  const auto images = temp_path("bigclass.idx3");
  const auto labels = temp_path("bigclass.idx1");
  write_idx_pair(images, labels, 6, 2, 2);  // labels are i % 3
  try {
    (void)load_idx(images, labels, /*class_count=*/2);
    FAIL() << "out-of-range label accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sample 2"), std::string::npos)
        << e.what();
  }
  std::remove(images.c_str());
  std::remove(labels.c_str());
}

TEST(IdxLoader, TruncatedPayloadThrows) {
  const auto images = temp_path("short.idx3");
  const auto labels = temp_path("short.idx1");
  write_idx_pair(images, labels, 4, 3, 3);
  // Rewrite both files claiming 10 samples; the image payload only holds 4.
  {
    std::ifstream in(images, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(images, std::ios::binary | std::ios::trunc);
    write_be32(out, 0x00000803);
    write_be32(out, 10);
    out.write(contents.data() + 8,
              static_cast<std::streamsize>(contents.size() - 8));
  }
  {
    std::ofstream out(labels, std::ios::binary | std::ios::trunc);
    write_be32(out, 0x00000801);
    write_be32(out, 10);
    for (int i = 0; i < 10; ++i) {
      const char zero = 0;
      out.write(&zero, 1);
    }
  }
  EXPECT_THROW((void)load_idx(images, labels), std::runtime_error);
  std::remove(images.c_str());
  std::remove(labels.c_str());
}

void write_text(const std::string& path, const char* text) {
  std::ofstream out(path);
  out << text;
}

TEST(CsvLoader, ParsesLabelLastByDefault) {
  const auto path = temp_path("basic.csv");
  write_text(path,
             "1.0,2.0,0\n"
             "3.0,4.0,1\n"
             "5.0,6.0,2\n");
  const Dataset dataset = load_csv(path);
  EXPECT_EQ(dataset.size(), 3u);
  EXPECT_EQ(dataset.feature_count(), 2u);
  EXPECT_EQ(dataset.class_count(), 3u);
  EXPECT_EQ(dataset.sample(1)[1], 4.0f);
  EXPECT_EQ(dataset.label(2), 2);
  std::remove(path.c_str());
}

TEST(CsvLoader, SupportsLabelColumnAndBase) {
  const auto path = temp_path("labelfirst.csv");
  write_text(path,
             "1,0.5,0.6\n"
             "2,0.7,0.8\n");
  CsvOptions options;
  options.label_column = 0;
  options.label_base = 1;  // 1-based labels in the file
  const Dataset dataset = load_csv(path, options);
  EXPECT_EQ(dataset.feature_count(), 2u);
  EXPECT_EQ(dataset.label(0), 0);
  EXPECT_EQ(dataset.label(1), 1);
  EXPECT_EQ(dataset.sample(0)[0], 0.5f);
  std::remove(path.c_str());
}

TEST(CsvLoader, SkipsHeaderRows) {
  const auto path = temp_path("header.csv");
  write_text(path,
             "f1,f2,label\n"
             "1.0,2.0,0\n");
  CsvOptions options;
  options.skip_rows = 1;
  const Dataset dataset = load_csv(path, options);
  EXPECT_EQ(dataset.size(), 1u);
  std::remove(path.c_str());
}

TEST(CsvLoader, SupportsCustomDelimiter) {
  const auto path = temp_path("semicolon.csv");
  write_text(path, "1.0;2.0;1\n");
  CsvOptions options;
  options.delimiter = ';';
  const Dataset dataset = load_csv(path, options);
  EXPECT_EQ(dataset.feature_count(), 2u);
  std::remove(path.c_str());
}

TEST(CsvLoader, SkipsEmptyLines) {
  const auto path = temp_path("gaps.csv");
  write_text(path, "1.0,0\n\n2.0,1\n");
  const Dataset dataset = load_csv(path);
  EXPECT_EQ(dataset.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvLoader, RejectsInconsistentWidth) {
  const auto path = temp_path("ragged.csv");
  write_text(path, "1.0,2.0,0\n1.0,1\n");
  EXPECT_THROW((void)load_csv(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvLoader, RejectsNonNumericCells) {
  const auto path = temp_path("text.csv");
  write_text(path, "1.0,abc,0\n");
  EXPECT_THROW((void)load_csv(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvLoader, RejectsLabelBelowBase) {
  const auto path = temp_path("badlabel.csv");
  write_text(path, "1.0,0\n");
  CsvOptions options;
  options.label_base = 1;
  EXPECT_THROW((void)load_csv(path, options), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvLoader, MissingFileThrows) {
  EXPECT_THROW((void)load_csv(temp_path("missing.csv")),
               std::runtime_error);
}

TEST(CsvLoader, ErrorsNamePathLineAndColumn) {
  const auto path = temp_path("located.csv");
  write_text(path,
             "1.0,2.0,0\n"
             "3.0,oops,1\n");
  try {
    (void)load_csv(path);
    FAIL() << "non-numeric cell accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("column 2"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(CsvLoader, RejectsImplausiblyLargeLabel) {
  // A mis-configured label column reading a feature value as the label
  // must not make the loader build millions of phantom classes.
  const auto path = temp_path("hugelabel.csv");
  write_text(path, "1.0,2000000000\n");
  EXPECT_THROW((void)load_csv(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvLoader, EmptyFileThrows) {
  const auto path = temp_path("empty.csv");
  write_text(path, "");
  EXPECT_THROW((void)load_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lehdc::data
