#include "hdc/encoder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hdc/encoded_dataset.hpp"
#include "hv/similarity.hpp"
#include "util/rng.hpp"

namespace lehdc::hdc {
namespace {

RecordEncoderConfig small_config() {
  RecordEncoderConfig cfg;
  cfg.dim = 2048;
  cfg.feature_count = 32;
  cfg.levels = 16;
  cfg.seed = 7;
  return cfg;
}

std::vector<float> random_sample(std::size_t n, util::Rng& rng) {
  std::vector<float> out(n);
  for (auto& v : out) {
    v = rng.next_float();
  }
  return out;
}

TEST(RecordEncoder, ReportsShape) {
  const RecordEncoder encoder(small_config());
  EXPECT_EQ(encoder.dim(), 2048u);
  EXPECT_EQ(encoder.feature_count(), 32u);
}

TEST(RecordEncoder, EncodingIsDeterministic) {
  const RecordEncoder encoder(small_config());
  util::Rng rng(1);
  const auto sample = random_sample(32, rng);
  EXPECT_EQ(encoder.encode(sample), encoder.encode(sample));
}

TEST(RecordEncoder, SameSeedSameEncoder) {
  const RecordEncoder a(small_config());
  const RecordEncoder b(small_config());
  util::Rng rng(2);
  const auto sample = random_sample(32, rng);
  EXPECT_EQ(a.encode(sample), b.encode(sample));
}

TEST(RecordEncoder, DifferentSeedsGiveDifferentCodes) {
  auto cfg = small_config();
  const RecordEncoder a(cfg);
  cfg.seed = 8;
  const RecordEncoder b(cfg);
  util::Rng rng(3);
  const auto sample = random_sample(32, rng);
  EXPECT_NEAR(hv::normalized_hamming(a.encode(sample), b.encode(sample)),
              0.5, 0.05);
}

TEST(RecordEncoder, RejectsWrongFeatureWidth) {
  const RecordEncoder encoder(small_config());
  const std::vector<float> wrong(31, 0.5f);
  EXPECT_THROW((void)encoder.encode(wrong), std::invalid_argument);
}

TEST(RecordEncoder, SimilarInputsHaveSimilarCodes) {
  // Locality: perturbing a few features slightly must move the code far
  // less than replacing the sample entirely.
  const RecordEncoder encoder(small_config());
  util::Rng rng(4);
  auto sample = random_sample(32, rng);
  const auto code = encoder.encode(sample);

  auto nudged = sample;
  nudged[0] = std::min(1.0f, nudged[0] + 0.05f);
  const double near_distance =
      hv::normalized_hamming(code, encoder.encode(nudged));

  const auto other = random_sample(32, rng);
  const double far_distance =
      hv::normalized_hamming(code, encoder.encode(other));

  EXPECT_LT(near_distance, 0.15);
  EXPECT_GT(far_distance, near_distance);
}

TEST(RecordEncoder, DistanceGrowsWithPerturbedFeatureCount) {
  const RecordEncoder encoder(small_config());
  util::Rng rng(5);
  const auto sample = random_sample(32, rng);
  const auto code = encoder.encode(sample);
  double previous = 0.0;
  for (const std::size_t changed : {4u, 16u, 32u}) {
    auto perturbed = sample;
    for (std::size_t i = 0; i < changed; ++i) {
      perturbed[i] = 1.0f - perturbed[i];
    }
    const double distance =
        hv::normalized_hamming(code, encoder.encode(perturbed));
    EXPECT_GT(distance, previous);
    previous = distance;
  }
}

TEST(RecordEncoder, ValueRangeClampsGracefully) {
  const RecordEncoder encoder(small_config());
  const std::vector<float> below(32, -100.0f);
  const std::vector<float> above(32, +100.0f);
  // Out-of-range values clamp to the boundary levels: still valid codes.
  EXPECT_EQ(encoder.encode(below).dim(), 2048u);
  EXPECT_EQ(encoder.encode(above).dim(), 2048u);
}

TEST(NgramEncoder, EncodesAndIsDeterministic) {
  NgramEncoderConfig cfg;
  cfg.dim = 1024;
  cfg.feature_count = 16;
  cfg.ngram = 3;
  cfg.seed = 9;
  const NgramEncoder encoder(cfg);
  EXPECT_EQ(encoder.dim(), 1024u);
  util::Rng rng(6);
  const auto sample = random_sample(16, rng);
  EXPECT_EQ(encoder.encode(sample), encoder.encode(sample));
}

TEST(NgramEncoder, OrderSensitive) {
  // Unlike bag-of-values approaches, the permutation makes N-gram codes
  // sensitive to feature order.
  NgramEncoderConfig cfg;
  cfg.dim = 4096;
  cfg.feature_count = 8;
  cfg.ngram = 2;
  cfg.seed = 10;
  const NgramEncoder encoder(cfg);
  const std::vector<float> forward{0.1f, 0.9f, 0.2f, 0.8f,
                                   0.3f, 0.7f, 0.4f, 0.6f};
  std::vector<float> reversed(forward.rbegin(), forward.rend());
  // Reversal shares many symmetric windows, so the distance is modest but
  // must be clearly nonzero (a bag-of-values encoder would give 0).
  EXPECT_GT(
      hv::normalized_hamming(encoder.encode(forward),
                             encoder.encode(reversed)),
      0.05);
}

TEST(NgramEncoder, RejectsBadWindow) {
  NgramEncoderConfig cfg;
  cfg.dim = 256;
  cfg.feature_count = 4;
  cfg.ngram = 5;
  EXPECT_THROW(NgramEncoder{cfg}, std::invalid_argument);
}

TEST(EncodeDataset, PreservesLabelsAndOrder) {
  auto cfg = small_config();
  const RecordEncoder encoder(cfg);
  data::Dataset dataset(32, 3);
  util::Rng rng(11);
  for (int i = 0; i < 9; ++i) {
    const auto sample = random_sample(32, rng);
    dataset.add_sample(sample, i % 3);
  }
  const EncodedDataset encoded = encode_dataset(encoder, dataset);
  ASSERT_EQ(encoded.size(), 9u);
  EXPECT_EQ(encoded.dim(), 2048u);
  EXPECT_EQ(encoded.class_count(), 3u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(encoded.label(i), dataset.label(i));
    EXPECT_EQ(encoded.hypervector(i), encoder.encode(dataset.sample(i)));
  }
}

TEST(EncodeDataset, RejectsFeatureWidthMismatch) {
  const RecordEncoder encoder(small_config());
  const data::Dataset dataset(31, 2);
  EXPECT_THROW((void)encode_dataset(encoder, dataset),
               std::invalid_argument);
}

TEST(EncodedDataset, ValidatesAdds) {
  EncodedDataset dataset(64, 2);
  EXPECT_THROW(dataset.add(hv::BitVector(32), 0), std::invalid_argument);
  EXPECT_THROW(dataset.add(hv::BitVector(64), 2), std::invalid_argument);
  EXPECT_THROW(dataset.add(hv::BitVector(64), -1), std::invalid_argument);
  dataset.add(hv::BitVector(64), 1);
  EXPECT_EQ(dataset.size(), 1u);
  EXPECT_THROW((void)dataset.hypervector(1), std::invalid_argument);
}

}  // namespace
}  // namespace lehdc::hdc
